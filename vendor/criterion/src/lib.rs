//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `benches/` compiling and smoke-runnable with
//! no crates.io access. Each registered benchmark body is executed a
//! handful of times and its wall-clock time printed — enough to catch
//! regressions by eye and panics by CI, with none of criterion's
//! statistics. `cargo test` invokes bench binaries with `--test`; in
//! that mode `criterion_main!` exits immediately so test runs stay
//! fast.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

const SMOKE_ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F, I: fmt::Display>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), &mut wrapped);
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {};
    let start = Instant::now();
    for _ in 0..SMOKE_ITERS {
        f(&mut b);
    }
    let total = start.elapsed();
    println!(
        "bench {label}: {:.3} ms/iter (smoke, {SMOKE_ITERS} iters)",
        total.as_secs_f64() * 1e3 / SMOKE_ITERS as f64
    );
}

pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(f(input));
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; skip the
            // smoke run there so test suites stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn smoke_api_surface() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
