//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses —
//! [`rngs::SmallRng`], [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] — on top of xoshiro256++ (the same
//! family the real `SmallRng` uses on 64-bit targets), seeded through
//! SplitMix64 exactly as `rand_core` seeds from a `u64`. Statistical
//! quality therefore matches what the simulation's moment tests
//! expect.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds (subset of `rand_core`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by modulo rejection (unbiased).
#[inline]
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % n;
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u: f64 = f64::sample(rng);
                self.start + ((self.end - self.start) as f64 * u) as $t
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, high-quality; the same family the
    /// real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // An all-zero state would be a fixed point; SplitMix64
            // cannot produce four zeros from any seed, but guard anyway.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn mean_of_unit_is_half() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5u64..5);
    }
}
