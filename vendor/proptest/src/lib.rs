//! Offline stand-in for `proptest`.
//!
//! Re-implements the slice of proptest this workspace uses so property
//! tests run without crates.io access: the `proptest!` macro (with
//! optional `#![proptest_config(..)]`), `in`-style strategy bindings,
//! `name: Type` arbitrary bindings, integer/float range strategies,
//! tuples, `collection::vec`, `option::of`, `bool::ANY`, `Just`,
//! `Strategy::prop_map`, and the `prop_assert*` macros. Sampling is
//! purely random and deterministic per test name; there is no
//! shrinking — a failing case panics with the assertion message like a
//! plain `#[test]`.
//!
//! Two environment variables mirror real proptest's CI knobs:
//!
//! - `PROPTEST_CASES` overrides every block's case count (CI pins it
//!   so tier-1 runtimes stay stable; the scheduled job raises it).
//! - `PROPTEST_RNG_SEED` perturbs the per-test-name generator, letting
//!   scheduled runs sweep fresh cases while unset runs stay
//!   reproducible. The seed is printed-by-construction: a failure
//!   reproduces by re-running with the same two variables.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic generator driving every sampled case. Seeded from
    /// the test function's name so runs are reproducible and two tests
    /// never share a stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            Self::from_name_and_seed(name, env_u64("PROPTEST_RNG_SEED"))
        }

        /// The deterministic core of [`TestRng::from_name`]: FNV-1a
        /// over the name gives a stable, well-mixed state; an explicit
        /// seed (from `PROPTEST_RNG_SEED`) perturbs it so scheduled
        /// runs can sweep fresh cases.
        pub fn from_name_and_seed(name: &str, seed: Option<u64>) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Some(s) = seed {
                h ^= s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            // SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; unbiased via rejection. Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample from an empty range");
            let zone = u64::MAX - u64::MAX % n;
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % n;
                }
            }
        }
    }

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    pub(crate) fn env_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok().and_then(|v| v.parse().ok())
    }

    /// The case count a block actually runs: `PROPTEST_CASES`
    /// overrides the configured value when set and parseable.
    pub fn resolve_cases(configured: u32) -> u32 {
        env_u64("PROPTEST_CASES").map_or(configured, |n| n as u32)
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values. Unlike real proptest there is no
    /// value tree or shrinking: `sample` draws one concrete value.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values (`Strategy::prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = rng.next_f64();
                self.start + ((self.end - self.start) as f64 * u) as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a `Vec` of `size` samples of
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` half the time, otherwise
    /// `Some` of a sampled inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `proptest::bool::ANY`: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use super::test_runner::TestRng;

    /// Default generator for `name: Type` proptest arguments.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for core::primitive::bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.next_f64() as f32
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for _ in 0..$crate::test_runner::resolve_cases(__cfg.cases) {
                $crate::__proptest_args!(__rng; $body; $($args)*);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    ($rng:ident; $body:block;) => { $body };
    ($rng:ident; $body:block; mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_args!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; $name:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_args!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; mut $name:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let mut $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_args!($rng; $body; $($($rest)*)?)
    }};
    ($rng:ident; $body:block; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_args!($rng; $body; $($($rest)*)?)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            a in 3u32..17,
            b in 0u64..=5,
            c in -4i64..4,
            x in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 5);
            prop_assert!((-4..4).contains(&c));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_and_tuple_strategies(
            mut v in crate::collection::vec((0u32..10, 0u32..10), 0..50),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 50);
            v.push((0, 0));
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
            let _: core::primitive::bool = flag;
        }

        #[test]
        fn arbitrary_scalars(seed: u64, frac: f64) {
            let _ = seed;
            prop_assert!((0.0..1.0).contains(&frac));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Config with explicit case count still runs and binds args.
        #[test]
        fn configured_cases(n in 1usize..6) {
            prop_assert!((1..6).contains(&n));
        }
    }

    proptest! {
        #[test]
        fn option_and_map_strategies(
            v in crate::option::of(1u32..5),
            w in (0u64..10).prop_map(|n| n * 2),
        ) {
            if let Some(x) = v {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!(w % 2 == 0 && w < 20);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name_and_seed("alpha", None);
        let mut b = TestRng::from_name_and_seed("alpha", None);
        let mut c = TestRng::from_name_and_seed("beta", None);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn explicit_seed_perturbs_the_stream() {
        let mut unseeded = TestRng::from_name_and_seed("alpha", None);
        let mut seeded = TestRng::from_name_and_seed("alpha", Some(7));
        let mut seeded_again = TestRng::from_name_and_seed("alpha", Some(7));
        let first = seeded.next_u64();
        assert_ne!(unseeded.next_u64(), first);
        assert_eq!(first, seeded_again.next_u64());
    }

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(41u8).sample(&mut rng), 41);
    }
}
