//! No-op derive macros for the offline `serde` stand-in.
//!
//! The sibling `serde` stub blanket-implements `Serialize` and
//! `Deserialize` for every type, so the derives have nothing to emit —
//! they exist purely so `#[derive(Serialize, Deserialize)]` attributes
//! resolve.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
