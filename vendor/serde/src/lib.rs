//! Offline stand-in for `serde`.
//!
//! This workspace builds in environments with no crates.io access, so
//! the real `serde` cannot be downloaded. The codebase only relies on
//! `Serialize`/`Deserialize` as *derive targets and trait bounds*
//! (records are rendered through our own table/CSV writers, never
//! through a serde serializer), so marker traits with blanket impls
//! are sufficient and keep every `#[derive(Serialize, Deserialize)]`
//! and `T: Serialize + DeserializeOwned` bound compiling unchanged.
//!
//! If a future change needs real serialization, replace this stub by
//! vendoring the actual crate; no call sites need to change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// `serde::de` module surface used in bounds.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` module surface used in bounds.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_satisfy_bounds() {
        fn assert_serde<T: crate::Serialize + crate::DeserializeOwned>() {}
        assert_serde::<u64>();
        assert_serde::<Vec<String>>();
    }
}
