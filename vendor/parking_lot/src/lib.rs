//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: `lock()`/`read()`/`write()` returning guards
//! directly (no `Result`). Poisoning is deliberately ignored — a
//! panicking holder does not wedge other threads, matching
//! `parking_lot` semantics closely enough for this codebase.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
