//! Offline facade for the `crossbeam` umbrella crate: re-exports the
//! local `crossbeam-channel` stand-in under the usual `channel` path.

pub use crossbeam_channel as channel;
