//! Offline stand-in for `crossbeam-channel`.
//!
//! Provides the unbounded channel surface the threaded runtime uses:
//! cloneable `Sender`, a `Receiver` with `recv`, `recv_timeout`,
//! `recv_deadline`, `try_recv`, `is_empty`, and disconnect semantics
//! (recv fails once the queue is drained and every sender is gone).
//! Built on a `Mutex<VecDeque>` + `Condvar`; `std::sync::mpsc` is not
//! used because its `Receiver` lacks a stable `recv_deadline`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        cv: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if !st.receiver_alive {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.inner.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.inner.cv.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.cv.wait(st).unwrap();
        }
    }

    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self.inner.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.state.lock().unwrap().receiver_alive = false;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        tx.send(99u32).unwrap();
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn deadline_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let res = rx.recv_deadline(Instant::now() + Duration::from_millis(10));
        assert_eq!(res, Err(RecvTimeoutError::Timeout));
        drop(tx);
        let res = rx.recv_deadline(Instant::now() + Duration::from_millis(10));
        assert_eq!(res, Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn clone_keeps_channel_open() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
        drop(tx2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn is_empty_and_len() {
        let (tx, rx) = unbounded();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert!(!rx.is_empty());
    }
}
