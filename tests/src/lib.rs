//! Test-support crate: the actual integration tests live in the
//! sibling `tests/` directory of this package and span every crate in
//! the workspace.
