//! Focused lossy-link regressions that the broad `repro netfault`
//! sweep only covers incidentally:
//!
//! - duplicate-intake guards: at-least-once delivery replays `Idle`
//!   heartbeats and `Reject` answers, and the master must treat the
//!   replay as old news (no double idle-pool insert, no double
//!   re-offer advance);
//! - determinism: a sim run under a lossy plan must replay
//!   byte-identically from its `(run seed, net seed)` pair, because
//!   that pair is the replay recipe every failure report prints.

use crossbid_checker::{check_log, Scenario, ThreadedRun};
use crossbid_crossflow::{LinkFault, NetFaultPlan};

/// A plan that barely drops but duplicates aggressively in both
/// directions: the worst case for intake-side dedup (replayed `Idle`,
/// `Reject`, bids and `Done`) while keeping delivery near-certain so
/// every scenario still has to complete.
fn dup_heavy_plan(seed: u64) -> NetFaultPlan {
    let link = LinkFault {
        drop_prob: 0.05,
        dup_prob: 0.9,
        delay_min_secs: 0.0,
        delay_max_secs: 0.02,
    };
    NetFaultPlan {
        to_worker: link,
        to_master: link,
        seed,
        ..NetFaultPlan::none()
    }
}

fn counter(out: &crossbid_crossflow::RunOutput, name: &str) -> u64 {
    out.metrics
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Duplicated worker→master traffic (Idle beats, Reject answers,
/// Done reports) must leave every builtin scenario with exactly-once
/// effects on the sim engine. A double idle-pool insert or a double
/// re-offer advance surfaces as an oracle violation or a wrong
/// completion count.
#[test]
fn dup_heavy_links_keep_sim_exactly_once() {
    for sc in Scenario::builtins() {
        for seed in [11u64, 12, 13] {
            let out = sc.run_sim_with_net(seed, dup_heavy_plan(seed ^ 0xD0D0));
            assert_eq!(
                out.record.jobs_completed,
                sc.jobs.len() as u64,
                "{} seed {seed}: {}/{} jobs completed under dup-heavy links",
                sc.name,
                out.record.jobs_completed,
                sc.jobs.len()
            );
            let violations = check_log(&out.sched_log, sc.oracle_options(false));
            assert!(
                violations.is_empty(),
                "{} seed {seed}: {violations:?}",
                sc.name
            );
            assert!(
                counter(&out, "net/duplicated") > 0,
                "{} seed {seed}: the dup axis never fired, test proves nothing",
                sc.name
            );
        }
    }
}

/// Same property on the threaded runtime, where replays arrive over
/// real channels and the intake guards (not the sim's event order) do
/// the work.
#[test]
fn dup_heavy_links_keep_threaded_exactly_once() {
    for sc in Scenario::builtins() {
        let run_seed = 0x1D1E;
        let out = sc.run_threaded(&ThreadedRun {
            netfault: Some(dup_heavy_plan(run_seed ^ 0x4E37)),
            ..ThreadedRun::plain(run_seed)
        });
        assert_eq!(
            out.record.jobs_completed,
            sc.jobs.len() as u64,
            "{}: {}/{} jobs completed under dup-heavy links",
            sc.name,
            out.record.jobs_completed,
            sc.jobs.len()
        );
        let violations = check_log(&out.sched_log, sc.oracle_options(false));
        assert!(violations.is_empty(), "{}: {violations:?}", sc.name);
    }
}

/// Constant-delay links (no drops, no duplicates): every message
/// survives but sits in a delayed buffer first, so the run leans
/// entirely on the drain loops that release matured traffic.
/// Regression for an order-stability bug: those loops used
/// `swap_remove`, which let equally-due messages overtake each other
/// in the buffer — out-of-order offers and acks that made recorded
/// (run seed, net seed) pairs unreplayable. Every builtin scenario
/// must stay exactly-once and oracle-clean on both runtimes.
#[test]
fn constant_delay_links_stay_exactly_once() {
    let link = LinkFault {
        drop_prob: 0.0,
        dup_prob: 0.0,
        delay_min_secs: 0.01,
        delay_max_secs: 0.01,
    };
    let plan = || NetFaultPlan {
        to_worker: link,
        to_master: link,
        seed: 0xDE1A,
        ..NetFaultPlan::none()
    };
    for sc in Scenario::builtins() {
        let sim = sc.run_sim_with_net(9, plan());
        assert_eq!(
            sim.record.jobs_completed,
            sc.jobs.len() as u64,
            "{}: sim under constant-delay links",
            sc.name
        );
        let violations = check_log(&sim.sched_log, sc.oracle_options(false));
        assert!(violations.is_empty(), "{}: sim {violations:?}", sc.name);
        // And the replay contract holds: the identical run again.
        let again = sc.run_sim_with_net(9, plan());
        assert_eq!(
            format!("{:?}", sim.sched_log.events()),
            format!("{:?}", again.sched_log.events()),
            "{}: constant-delay sim run did not replay",
            sc.name
        );

        let thr = sc.run_threaded(&ThreadedRun {
            netfault: Some(plan()),
            ..ThreadedRun::plain(9)
        });
        assert_eq!(
            thr.record.jobs_completed,
            sc.jobs.len() as u64,
            "{}: threaded under constant-delay links",
            sc.name
        );
        let violations = check_log(&thr.sched_log, sc.oracle_options(false));
        assert!(
            violations.is_empty(),
            "{}: threaded {violations:?}",
            sc.name
        );
    }
}

/// A lossy sim run is part of the replay contract: same run seed +
/// same net plan must reproduce the identical control-plane log and
/// reliability counters, or the seeds printed in failure reports are
/// worthless.
#[test]
fn lossy_sim_runs_replay_byte_identically() {
    for sc in Scenario::builtins() {
        let plan = || {
            NetFaultPlan::lossy(0xACE, 0.3, 0.15).with_partition(
                None,
                crossbid_simcore::SimTime::from_secs(2),
                crossbid_simcore::SimTime::from_secs(4),
            )
        };
        let a = sc.run_sim_with_net(42, plan());
        let b = sc.run_sim_with_net(42, plan());
        assert_eq!(
            format!("{:?}", a.sched_log.events()),
            format!("{:?}", b.sched_log.events()),
            "{}: two identical lossy runs diverged",
            sc.name
        );
        assert_eq!(
            a.metrics.counters, b.metrics.counters,
            "{}: reliability counters diverged between identical runs",
            sc.name
        );
    }
}
