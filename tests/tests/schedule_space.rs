//! The checker's tier-1 suite: sweep message-delivery interleavings
//! of the threaded runtime through the protocol invariant oracle, and
//! prove the oracle actually catches bugs by reintroducing each PR 1
//! protocol fix (via `crossbid-crossflow`'s test-only
//! `protocol-mutation` feature) and asserting the explorer finds a
//! violation, shrinks it, and prints a replayable repro (seed +
//! delivery schedule).
//!
//! Seeds are fixed so CI runs are reproducible; the scheduled
//! extended-exploration workflow sweeps fresh seeds.

use crossbid_checker::{explore, explore_builtins, explore_federation, ExploreConfig, Protocol};
use crossbid_checker::{explore_dag, explore_dag_builtins, DagExploreConfig, DagScenario};
use crossbid_checker::{explore_replication, explore_replication_builtins};
use crossbid_checker::{Failure, FedExploreConfig, FedScenario, JobDef, Scenario, Violation};
use crossbid_checker::{ReplExploreConfig, ReplScenario};
use crossbid_crossflow::{FederationMutation, ProtocolMutation};

/// Chaos sweep over every built-in scenario. `CHECKER_ITERS` lets the
/// scheduled CI job deepen the exploration without a code change.
fn sweep_iters(default: u32) -> u32 {
    std::env::var("CHECKER_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn correct_protocol_survives_chaos_on_every_builtin_scenario() {
    let cfg = ExploreConfig::quick(sweep_iters(4), 0xC0FFEE);
    for report in explore_builtins(&cfg) {
        assert!(report.passed(), "{}", report.render());
    }
}

#[test]
fn correct_protocol_survives_lossy_links_on_every_builtin_scenario() {
    // Chaos *and* net faults together: messages are held, reordered,
    // corrupted, dropped, duplicated, delayed, and a 2-virtual-second
    // full partition cuts both directions mid-run. The reliability
    // layer (acks + seeded retries + leases + dedup) must still land
    // every scenario with exactly-once effects and sim parity.
    let cfg = ExploreConfig::netfault(sweep_iters(3), 0xFEED5EED);
    for report in explore_builtins(&cfg) {
        assert!(report.passed(), "{}", report.render());
    }
}

fn builtin(name: &str) -> Scenario {
    Scenario::builtins()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known scenario")
}

fn mutated(mutation: ProtocolMutation, iters: u32, seed: u64) -> ExploreConfig {
    ExploreConfig {
        iters,
        base_seed: seed,
        mutation,
        chaos: true,
        netfault: false,
        master_crash: false,
        strict_reoffer: false,
        parity: false,
        repro_attempts: 2,
    }
}

/// Like [`mutated`], but with lossy links + a partition window armed:
/// the environment whose countermeasure the mutation removes.
fn mutated_lossy(mutation: ProtocolMutation, iters: u32, seed: u64) -> ExploreConfig {
    ExploreConfig {
        netfault: true,
        // Chaos off: the net-fault layer supplies the adversity, and
        // keeping delivery otherwise faithful makes the causal chain
        // from lost/duplicated messages to the violation crisp.
        chaos: false,
        ..mutated(mutation, iters, seed)
    }
}

/// The failure report must be a complete repro recipe.
fn assert_replayable(report_text: &str, f: &Failure, expect_schedule: bool) {
    assert!(report_text.contains("VIOLATION"), "{report_text}");
    assert!(report_text.contains("minimal repro"), "{report_text}");
    assert!(
        report_text.contains(&format!("run seed {}", f.run_seed)),
        "{report_text}"
    );
    assert!(!f.kept_jobs.is_empty());
    if expect_schedule {
        assert!(
            !f.schedule.is_empty() && report_text.contains("delivery schedule"),
            "chaos failures must print the recorded interleaving: {report_text}"
        );
    }
}

#[test]
fn explorer_catches_reintroduced_nonfinite_bid_acceptance() {
    // PR 1 fix: the master drops NaN/∞ bid estimates at intake. The
    // chaos layer corrupts a seeded fraction of bids to NaN, so the
    // mutated master records them — a NonFiniteBid oracle violation.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated(ProtocolMutation::AcceptNonFiniteBids, 20, 11));
    let text = report.render();
    let f = report.failure.as_ref().unwrap_or_else(|| {
        panic!("mutated scheduler must be caught: {text}");
    });
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::NonFiniteBid { .. })),
        "{text}"
    );
    assert!(
        f.kept_jobs.len() < sc.jobs.len(),
        "shrinking must drop at least one job: {text}"
    );
    assert_replayable(&text, f, true);
}

#[test]
fn explorer_catches_reintroduced_duplicate_bid_acceptance() {
    // PR 1 fix: a second bid from the same worker is ignored. Chaos
    // duplicates messages, so the mutated master records the copy —
    // a DuplicateBid oracle violation.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated(ProtocolMutation::AcceptDuplicateBids, 40, 13));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateBid { .. })),
        "{text}"
    );
    assert_replayable(&text, f, true);
}

#[test]
fn explorer_catches_reintroduced_late_bid_acceptance() {
    // PR 1 fix: bids arriving after their contest closed are ignored.
    // The mutated master lets the late bidder steal the job — visible
    // to the oracle as a bid outside an open contest and/or a second
    // assignment without a contest close.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated(ProtocolMutation::AcceptLateBids, 40, 17));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations.iter().any(|v| matches!(
            v,
            Violation::BidAfterClose { .. }
                | Violation::AssignmentWithoutBid { .. }
                | Violation::AssignedWhilePlaced { .. }
        )),
        "{text}"
    );
    assert_replayable(&text, f, true);
}

/// One non-local job on a three-worker cluster: the correct Baseline
/// walks the offer through w0 → w1 → w2 and only then returns to w0
/// (reject-once), so a *direct* bounce back to the last rejector is
/// unambiguous — no chaos, no racing jobs.
fn lone_job_baseline() -> Scenario {
    Scenario {
        name: "lone_job_baseline",
        protocol: Protocol::Baseline,
        workers: 3,
        jobs: vec![JobDef {
            at_secs: 0.0,
            object: 1,
            bytes: 50_000_000,
        }],
        faults: Vec::new(),
        expect_all_complete: true,
    }
}

#[test]
fn explorer_catches_removed_done_dedup() {
    // Net-fault countermeasure: the master dedups `Done` by job id,
    // because a lost `AckDone` makes the worker retransmit and a lossy
    // link duplicates outright. With the dedup removed, the duplicate
    // delivery double-counts — a CompletedTwice oracle violation.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated_lossy(ProtocolMutation::DropDedup, 30, 23));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::CompletedTwice { .. })),
        "{text}"
    );
    assert!(
        text.contains(&format!("net seed {}", f.net_seed.expect("netfault run"))),
        "net-fault failures must print the replay triple: {text}"
    );
    assert_replayable(&text, f, false);
}

#[test]
fn explorer_catches_ignored_assign_acks() {
    // Net-fault countermeasure: an `AckAssign` cancels the placement's
    // retransmission and lease timers. With acks ignored, the lease on
    // a *confirmed* placement expires while the job executes — a
    // LeaseExpiredAfterAck oracle violation (and typically bounces the
    // job into a double execution the Done dedup then has to absorb).
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated_lossy(ProtocolMutation::IgnoreAcks, 10, 29));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::LeaseExpiredAfterAck { .. })),
        "{text}"
    );
    assert_replayable(&text, f, false);
}

#[test]
fn missing_leases_lose_jobs_behind_a_partition() {
    // Net-fault countermeasure: the placement lease. A partition that
    // outlives the retransmission budget swallows an assignment and
    // every retry of it; only the lease notices the silence and
    // bounces the job back to the scheduler. Remove the lease
    // (`NoLeases`) and the job is simply gone — a JobLost violation.
    //
    // Deterministic recipe, no random loss: both directions fully
    // partitioned for the run's first 30 virtual seconds, two jobs
    // arriving near t=0. Contest requests and the fallback
    // assignments vanish into the partition, as do all retries (the
    // budget is cut to 2 attempts, ~0.75 s, so even heavy wall-clock
    // scheduling slip — virtual time is wall-clock scaled — cannot
    // push a retransmission past the heal). With leases on, the
    // bounce/re-dispatch loop keeps the job alive until the partition
    // heals and the next dispatch lands it; with leases off, nothing
    // ever does.
    use crossbid_checker::{check_log, ThreadedRun};
    use crossbid_crossflow::{NetFaultPlan, RetryPolicy};
    use crossbid_simcore::SimTime;
    let sc = Scenario {
        name: "partitioned_assign_bidding",
        protocol: Protocol::Bidding,
        workers: 2,
        jobs: vec![
            JobDef {
                at_secs: 0.0,
                object: 1,
                bytes: 50_000_000,
            },
            JobDef {
                at_secs: 0.2,
                object: 1,
                bytes: 50_000_000,
            },
        ],
        faults: Vec::new(),
        expect_all_complete: true,
    };
    let plan = |seed| {
        NetFaultPlan::lossy(seed, 0.0, 0.0)
            .with_partition(None, SimTime::ZERO, SimTime::from_secs_f64(30.0))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            })
    };
    let run = |mutation, seed| {
        let out = sc.run_threaded(&ThreadedRun {
            netfault: Some(plan(seed)),
            mutation,
            ..ThreadedRun::plain(seed)
        });
        check_log(&out.sched_log, sc.oracle_options(false))
    };
    // Contrast: with leases armed the same partition is survivable.
    let clean = run(ProtocolMutation::None, 31);
    assert!(
        clean.is_empty(),
        "leases must ride out the partition: {clean:?}"
    );
    // The threaded runtime is nondeterministic; a lucky interleaving
    // could sneak a message around the partition edge, so probe a few
    // seeds and require the loss to show somewhere.
    let caught = (0..5).any(|i| {
        run(ProtocolMutation::NoLeases, 37 + i)
            .iter()
            .any(|v| matches!(v, Violation::JobLost { .. }))
    });
    assert!(caught, "removing leases must lose a partitioned job");
}

#[test]
fn explorer_catches_reintroduced_reoffer_to_rejector() {
    // PR 1 fix: a rejected job is re-offered to a *different* idle
    // worker. Strict mode is only sound without chaos, so this probe
    // runs deterministic delivery.
    let strict = |mutation| ExploreConfig {
        iters: 5,
        base_seed: 19,
        mutation,
        chaos: false,
        netfault: false,
        master_crash: false,
        strict_reoffer: true,
        parity: true,
        repro_attempts: 2,
    };
    let sc = lone_job_baseline();
    // Contrast: the correct protocol passes the same strict probe.
    let clean = explore(&sc, &strict(ProtocolMutation::None));
    assert!(clean.passed(), "{}", clean.render());
    let report = explore(&sc, &strict(ProtocolMutation::ReofferToRejector));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::ReofferToRejector { .. })),
        "{text}"
    );
    assert_replayable(&text, f, false);
}

// ---------------------------------------------------------------------------
// Federation self-validation: each canonical way to break the
// exactly-once cross-shard hand-off must be caught by the federated
// oracle, with the failing (run, chaos, net, membership) tuple printed
// as the repro.
// ---------------------------------------------------------------------------

fn fed_builtin(name: &str) -> FedScenario {
    FedScenario::builtins()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known federation scenario")
}

fn assert_fed_replay_tuple(text: &str) {
    assert!(
        text.contains("run seed") && text.contains("net seed") && text.contains("membership seed"),
        "failure must print the replay tuple: {text}"
    );
}

#[test]
fn oracle_catches_a_lost_spill() {
    let sc = fed_builtin("fed_2shard_spill");
    // Contrast: the correct hand-off passes the same sweep and spills.
    let clean = explore_federation(&sc, &FedExploreConfig::quick(2, 0xFED5EED));
    assert!(clean.passed(), "{}", clean.render());
    assert!(clean.spills_observed > 0, "{}", clean.render());

    let cfg = FedExploreConfig {
        mutation: FederationMutation::LostSpill,
        ..FedExploreConfig::quick(2, 0xFED5EED)
    };
    let report = explore_federation(&sc, &cfg);
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("a dropped hand-off must be caught: {text}"));
    assert!(
        f.merged_violations.iter().any(|v| matches!(
            v,
            Violation::SpillOutWithoutSpillIn { .. } | Violation::JobLost { .. }
        )),
        "{text}"
    );
    assert_fed_replay_tuple(&text);
}

#[test]
fn oracle_catches_a_double_spill() {
    let sc = fed_builtin("fed_2shard_spill");
    let cfg = FedExploreConfig {
        mutation: FederationMutation::DoubleSpill,
        ..FedExploreConfig::quick(2, 0xFED5EED)
    };
    let report = explore_federation(&sc, &cfg);
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("a duplicated hand-off must be caught: {text}"));
    assert!(
        f.merged_violations.iter().any(|v| matches!(
            v,
            Violation::CompletedTwice { .. } | Violation::CompletedAfterSpillOut { .. }
        )),
        "{text}"
    );
    assert_fed_replay_tuple(&text);
}

fn dag_builtin(name: &str) -> DagScenario {
    DagScenario::builtins()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known DAG scenario")
}

#[test]
fn correct_atomizer_survives_both_runtimes_on_every_dag_builtin() {
    for cfg in [
        DagExploreConfig::quick(sweep_iters(2), 0xDA61),
        DagExploreConfig::threaded(sweep_iters(2), 0xDA61),
    ] {
        for report in explore_dag_builtins(&cfg) {
            assert!(report.passed(), "{}", report.render());
        }
    }
}

#[test]
fn explorer_catches_reintroduced_dag_gate_removal() {
    // The skewed-reduce DAG has wide fan-in: with the release gate
    // removed every reducer is offered at registration, long before
    // its maps complete — an OfferBeforePredecessor violation on the
    // very first seed.
    let sc = dag_builtin("dag_skewed_reduce");
    let cfg = DagExploreConfig {
        mutation: ProtocolMutation::OfferBeforePredecessor,
        ..DagExploreConfig::threaded(4, 0xDA62)
    };
    let report = explore_dag(&sc, &cfg);
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("an ungated offer must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::OfferBeforePredecessor { .. })),
        "{text}"
    );
    assert!(text.contains("run seed"), "replay tuple missing: {text}");
}

#[test]
fn explorer_catches_reintroduced_double_speculation() {
    // With the launched-once guard bypassed, every straggler sweep
    // re-replicates the same slow task — the second committed
    // SpecLaunch is a DuplicateSpeculation violation.
    let sc = dag_builtin("dag_straggler");
    let cfg = DagExploreConfig {
        mutation: ProtocolMutation::DoubleSpeculate,
        ..DagExploreConfig::threaded(4, 0xDA63)
    };
    let report = explore_dag(&sc, &cfg);
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("a double speculation must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateSpeculation { .. })),
        "{text}"
    );
    assert!(text.contains("run seed"), "replay tuple missing: {text}");
}

// ---------------------------------------------------------------------------
// Replicated-data-plane self-validation: the canonical ways to break
// the self-healing promise (committing a repair and never copying;
// evicting a sole surviving replica) must be caught on both runtimes,
// with the failing (run, net) tuple printed as the repro.
// ---------------------------------------------------------------------------

fn repl_builtin(name: &str) -> ReplScenario {
    ReplScenario::builtins()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known replication scenario")
}

#[test]
fn correct_replication_survives_both_runtimes_on_every_repl_builtin() {
    for cfg in [
        ReplExploreConfig::quick(sweep_iters(2), 0x9E97),
        ReplExploreConfig::lossy(sweep_iters(2), 0x9E97),
        ReplExploreConfig::threaded(sweep_iters(2), 0x9E97),
    ] {
        for report in explore_replication_builtins(&cfg) {
            assert!(report.passed(), "{}", report.render());
        }
    }
}

#[test]
fn explorer_catches_reintroduced_skipped_repair() {
    // The crash scenario loses worker 0's replicas mid-run, so the
    // master must commit `repair_start` entries. With the copy step
    // sabotaged every committed repair dangles — the oracle's
    // end-of-log RepairNeverCompleted catcher.
    let sc = repl_builtin("repl_f2_crash");
    for cfg in [
        ReplExploreConfig {
            mutation: ProtocolMutation::SkipRepair,
            ..ReplExploreConfig::quick(2, 0x9E98)
        },
        ReplExploreConfig {
            mutation: ProtocolMutation::SkipRepair,
            ..ReplExploreConfig::threaded(2, 0x9E98)
        },
    ] {
        let report = explore_replication(&sc, &cfg);
        let text = report.render();
        let f = report.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: a skipped repair must be caught: {text}",
                report.runtime
            )
        });
        assert!(
            f.violations
                .iter()
                .any(|v| matches!(v, Violation::RepairNeverCompleted { .. })),
            "{text}"
        );
        assert!(
            text.contains("run seed") && text.contains("net seed"),
            "replay tuple missing: {text}"
        );
    }
}

#[test]
fn explorer_catches_reintroduced_last_copy_eviction() {
    // The eviction-pressure scenario's third insert must pass through
    // (both resident objects are pinned sole copies). With the pin
    // discipline sabotaged the store evicts a last copy instead — an
    // EvictedLastCopy violation at the drop event.
    let sc = repl_builtin("repl_f1_evict_pressure");
    for cfg in [
        ReplExploreConfig {
            mutation: ProtocolMutation::EvictLastCopy,
            ..ReplExploreConfig::quick(2, 0x9E99)
        },
        ReplExploreConfig {
            mutation: ProtocolMutation::EvictLastCopy,
            ..ReplExploreConfig::threaded(2, 0x9E99)
        },
    ] {
        let report = explore_replication(&sc, &cfg);
        let text = report.render();
        let f = report.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: a last-copy eviction must be caught: {text}",
                report.runtime
            )
        });
        assert!(
            f.violations
                .iter()
                .any(|v| matches!(v, Violation::EvictedLastCopy { .. })),
            "{text}"
        );
        assert!(text.contains("run seed"), "replay tuple missing: {text}");
    }
}
