//! The checker's tier-1 suite: sweep message-delivery interleavings
//! of the threaded runtime through the protocol invariant oracle, and
//! prove the oracle actually catches bugs by reintroducing each PR 1
//! protocol fix (via `crossbid-crossflow`'s test-only
//! `protocol-mutation` feature) and asserting the explorer finds a
//! violation, shrinks it, and prints a replayable repro (seed +
//! delivery schedule).
//!
//! Seeds are fixed so CI runs are reproducible; the scheduled
//! extended-exploration workflow sweeps fresh seeds.

use crossbid_checker::{explore, explore_builtins, ExploreConfig, Protocol};
use crossbid_checker::{Failure, JobDef, Scenario, Violation};
use crossbid_crossflow::ProtocolMutation;

/// Chaos sweep over every built-in scenario. `CHECKER_ITERS` lets the
/// scheduled CI job deepen the exploration without a code change.
fn sweep_iters(default: u32) -> u32 {
    std::env::var("CHECKER_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn correct_protocol_survives_chaos_on_every_builtin_scenario() {
    let cfg = ExploreConfig::quick(sweep_iters(4), 0xC0FFEE);
    for report in explore_builtins(&cfg) {
        assert!(report.passed(), "{}", report.render());
    }
}

fn builtin(name: &str) -> Scenario {
    Scenario::builtins()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known scenario")
}

fn mutated(mutation: ProtocolMutation, iters: u32, seed: u64) -> ExploreConfig {
    ExploreConfig {
        iters,
        base_seed: seed,
        mutation,
        chaos: true,
        strict_reoffer: false,
        parity: false,
        repro_attempts: 2,
    }
}

/// The failure report must be a complete repro recipe.
fn assert_replayable(report_text: &str, f: &Failure, expect_schedule: bool) {
    assert!(report_text.contains("VIOLATION"), "{report_text}");
    assert!(report_text.contains("minimal repro"), "{report_text}");
    assert!(
        report_text.contains(&format!("run seed {}", f.run_seed)),
        "{report_text}"
    );
    assert!(!f.kept_jobs.is_empty());
    if expect_schedule {
        assert!(
            !f.schedule.is_empty() && report_text.contains("delivery schedule"),
            "chaos failures must print the recorded interleaving: {report_text}"
        );
    }
}

#[test]
fn explorer_catches_reintroduced_nonfinite_bid_acceptance() {
    // PR 1 fix: the master drops NaN/∞ bid estimates at intake. The
    // chaos layer corrupts a seeded fraction of bids to NaN, so the
    // mutated master records them — a NonFiniteBid oracle violation.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated(ProtocolMutation::AcceptNonFiniteBids, 20, 11));
    let text = report.render();
    let f = report.failure.as_ref().unwrap_or_else(|| {
        panic!("mutated scheduler must be caught: {text}");
    });
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::NonFiniteBid { .. })),
        "{text}"
    );
    assert!(
        f.kept_jobs.len() < sc.jobs.len(),
        "shrinking must drop at least one job: {text}"
    );
    assert_replayable(&text, f, true);
}

#[test]
fn explorer_catches_reintroduced_duplicate_bid_acceptance() {
    // PR 1 fix: a second bid from the same worker is ignored. Chaos
    // duplicates messages, so the mutated master records the copy —
    // a DuplicateBid oracle violation.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated(ProtocolMutation::AcceptDuplicateBids, 40, 13));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateBid { .. })),
        "{text}"
    );
    assert_replayable(&text, f, true);
}

#[test]
fn explorer_catches_reintroduced_late_bid_acceptance() {
    // PR 1 fix: bids arriving after their contest closed are ignored.
    // The mutated master lets the late bidder steal the job — visible
    // to the oracle as a bid outside an open contest and/or a second
    // assignment without a contest close.
    let sc = builtin("hot_repo_bidding");
    let report = explore(&sc, &mutated(ProtocolMutation::AcceptLateBids, 40, 17));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations.iter().any(|v| matches!(
            v,
            Violation::BidAfterClose { .. }
                | Violation::AssignmentWithoutBid { .. }
                | Violation::AssignedWhilePlaced { .. }
        )),
        "{text}"
    );
    assert_replayable(&text, f, true);
}

/// One non-local job on a three-worker cluster: the correct Baseline
/// walks the offer through w0 → w1 → w2 and only then returns to w0
/// (reject-once), so a *direct* bounce back to the last rejector is
/// unambiguous — no chaos, no racing jobs.
fn lone_job_baseline() -> Scenario {
    Scenario {
        name: "lone_job_baseline",
        protocol: Protocol::Baseline,
        workers: 3,
        jobs: vec![JobDef {
            at_secs: 0.0,
            object: 1,
            bytes: 50_000_000,
        }],
        faults: Vec::new(),
        expect_all_complete: true,
    }
}

#[test]
fn explorer_catches_reintroduced_reoffer_to_rejector() {
    // PR 1 fix: a rejected job is re-offered to a *different* idle
    // worker. Strict mode is only sound without chaos, so this probe
    // runs deterministic delivery.
    let strict = |mutation| ExploreConfig {
        iters: 5,
        base_seed: 19,
        mutation,
        chaos: false,
        strict_reoffer: true,
        parity: true,
        repro_attempts: 2,
    };
    let sc = lone_job_baseline();
    // Contrast: the correct protocol passes the same strict probe.
    let clean = explore(&sc, &strict(ProtocolMutation::None));
    assert!(clean.passed(), "{}", clean.render());
    let report = explore(&sc, &strict(ProtocolMutation::ReofferToRejector));
    let text = report.render();
    let f = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("mutated scheduler must be caught: {text}"));
    assert!(
        f.violations
            .iter()
            .any(|v| matches!(v, Violation::ReofferToRejector { .. })),
        "{text}"
    );
    assert_replayable(&text, f, false);
}
