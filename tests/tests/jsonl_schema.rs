//! JSONL export schema tests: every line kind survives a
//! write→parse→write round trip byte-identically, and both runtimes
//! emit the same event vocabulary (pinned by a golden file, so a
//! renamed or dropped event kind is a reviewed schema change, not an
//! accident).

use std::collections::BTreeSet;

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    parse_run_stream, run_federation, sched_kind_name, Allocator, Arrival, AtomizeConfig,
    BaselineAllocator, EngineConfig, FaultPlan, Faults, FedArrival, FedRuntimeKind, FederationSpec,
    JobSpec, MasterFaultPlan, MembershipPlan, NetFaultPlan, Payload, ReplicationConfig,
    ResourceRef, RunOutput, RunSpec, RunStreamLine, Runtime, ShardId, ShardSpec, TaskDag, TaskNode,
    TraceKind, WorkerId, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

const GOLDEN_VOCABULARY: &str = include_str!("../golden/event_vocabulary.txt");

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

/// Twelve jobs chasing one repo arrive within 5.5 virtual seconds —
/// far faster than the ~10 s fetch — so by the crash at t=6 worker 0
/// (winner of the all-equal first-contest tie on lowest id) holds
/// unfinished work to strand. The recovery at t=12 exercises the
/// remaining fault event kinds, and the master crash at log append 20
/// forces an election so both runtimes emit `sched/leader_elected`
/// and `sched/failover_replayed`.
fn faulted_spec() -> RunSpec {
    RunSpec::builder()
        .workers(specs(3))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .faults(
            Faults::new()
                .workers(
                    FaultPlan::new()
                        .crash_at(SimTime::from_secs(6), WorkerId(0))
                        .recover_at(SimTime::from_secs(12), WorkerId(0)),
                )
                .master(MasterFaultPlan::new().crash_at(20)),
        )
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build()
}

/// A partition-only net-fault plan: all probabilities and delays stay
/// zero (no rng draws, so the sim run is exactly as deterministic as
/// a fault-free one), but the [1 s, 10 s) full partition swallows the
/// mid-run assignments — forcing retransmissions (`sched/resent`),
/// lease bounces (`sched/lease_expired`) and, once healed, placement
/// acknowledgements (`sched/assign_acked`) on both runtimes.
fn netfault_spec() -> RunSpec {
    RunSpec::builder()
        .workers(specs(3))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .faults(NetFaultPlan::none().with_partition(
            None,
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        ))
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build()
}

/// Two workers — one 400× slower on cpu — and six independent
/// one-second tasks in a single atomized job. The Baseline's blind
/// round-robin strands half the tasks on the slow worker; with the
/// aggressive speculation knobs the fast worker's completions
/// establish the duration median, the sweep replicates the stragglers
/// and the replicas' wins cancel the primaries — so a Baseline run of
/// this spec covers `sched/spec_launch` and `sched/spec_cancel` on
/// top of the task-lifecycle kinds. Under bidding the slow worker
/// prices itself out (no speculation), but every offer draws
/// `sched/task_bid`.
fn atomized_spec() -> RunSpec {
    let workers = vec![
        WorkerSpec::builder("fast")
            .net_mbps(10.0)
            .rw_mbps(100.0)
            .storage_gb(10.0)
            .build(),
        WorkerSpec::builder("slow")
            .net_mbps(10.0)
            .rw_mbps(100.0)
            .storage_gb(10.0)
            .cpu_factor(400.0)
            .build(),
    ];
    RunSpec::builder()
        .workers(workers)
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            atomize: AtomizeConfig {
                spec_factor: 2.0,
                spec_check_secs: 1.0,
                min_completed_for_spec: 3,
                ..AtomizeConfig::default()
            },
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build()
}

/// Replicated data plane under a holder crash (same workload shape as
/// `tests/replication.rs`): the first fetch of each artifact draws
/// `sched/replica_add` and the factor-2 top-up draws
/// `sched/repair_start` / `sched/repair_done`; queue pressure pushes
/// later jobs onto data-less workers whose transfers come from peers
/// (`sched/fetch_req` / `sched/fetch_ok`); and the mid-run crash of
/// worker 0 drops its copies (`sched/replica_drop`) and re-replicates
/// them.
fn replicated_spec() -> RunSpec {
    RunSpec::builder()
        .workers(specs(4))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .replication(ReplicationConfig::with_factor(2))
        .faults(
            Faults::new().workers(
                FaultPlan::new()
                    .crash_at(SimTime::from_secs(21), WorkerId(0))
                    .recover_at(SimTime::from_secs(40), WorkerId(0)),
            ),
        )
        .trace(true)
        .seed(3)
        .time_scale(1e-3)
        .build()
}

/// Total data-plane loss: every peer transfer attempt times out, so a
/// data-less worker's fetch burns its attempt budget (`sched/
/// fetch_fail`) before degrading to the master path.
fn replicated_lossy_spec() -> RunSpec {
    RunSpec::builder()
        .workers(specs(3))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .replication(ReplicationConfig {
            peer_drop_prob: 1.0,
            fetch_timeout_secs: 0.5,
            ..ReplicationConfig::with_factor(2)
        })
        .trace(true)
        .seed(11)
        .time_scale(1e-3)
        .build()
}

fn straggler_dag() -> TaskDag {
    let tasks = (0..6u64)
        .map(|i| TaskNode {
            preds: 0,
            input: None,
            output: ResourceRef {
                id: ObjectId(200 + i),
                bytes: 1_000_000,
            },
            work_bytes: 0,
            cpu_secs: 1.0,
        })
        .collect();
    TaskDag::new(tasks).unwrap()
}

fn hot_repo_arrivals(task: crossbid_crossflow::TaskId) -> Vec<Arrival> {
    (0..12)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * 0.5),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect()
}

fn trace_kind_label(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::Queued => "trace/queued",
        TraceKind::Started => "trace/started",
        TraceKind::Fetched => "trace/fetched",
        TraceKind::Finished => "trace/finished",
    }
}

/// Serialise one run's stream and collect its event vocabulary.
fn stream_and_vocab(runtime: &str, scheduler: &str, out: &RunOutput) -> (String, BTreeSet<String>) {
    let meta = crossbid_crossflow::RunStreamMeta {
        runtime: runtime.to_string(),
        scheduler: scheduler.to_string(),
        worker_config: "custom".to_string(),
        job_config: "custom".to_string(),
        iteration: 0,
        seed: 7,
    };
    let mut buf = Vec::new();
    crossbid_crossflow::write_run_stream(&mut buf, &meta, out).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut vocab = BTreeSet::new();
    for line in parse_run_stream(&text).unwrap() {
        match line {
            RunStreamLine::Trace(ev) => {
                vocab.insert(trace_kind_label(ev.kind).to_string());
            }
            RunStreamLine::Sched(ev) => {
                vocab.insert(format!("sched/{}", sched_kind_name(&ev.kind)));
            }
            _ => {}
        }
    }
    (text, vocab)
}

/// Stream one run under `alloc` and return `(raw JSONL, vocabulary)`.
fn stream_vocabulary(rt: &mut dyn Runtime, alloc: &dyn Allocator) -> (String, BTreeSet<String>) {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let out = rt.run_iteration(&mut wf, alloc, hot_repo_arrivals(task));
    assert_eq!(out.record.jobs_completed, 12, "{}", rt.name());
    stream_and_vocab(rt.name(), alloc.kind().name(), &out)
}

/// Stream one [`replicated_spec`] run: twelve jobs alternating over
/// two hot artifacts, so the v7 data-plane kinds (peer fetches,
/// replica bookkeeping, crash-triggered repair) all appear.
fn repl_stream_vocabulary(rt: &mut dyn Runtime) -> (String, BTreeSet<String>) {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals = (0..12)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * 2.0),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1 + (i % 2)),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect();
    let out = rt.run_iteration(&mut wf, &BiddingAllocator::new(), arrivals);
    assert_eq!(out.record.jobs_completed, 12, "{}", rt.name());
    stream_and_vocab(rt.name(), "bidding", &out)
}

/// Stream one [`replicated_lossy_spec`] run: a seeding job establishes
/// the artifact and its factor-2 copies, then a burst forces a
/// placement onto the data-less third worker, whose peer attempts all
/// drop (`sched/fetch_fail`) before the degraded master fetch.
fn repl_lossy_stream_vocabulary(rt: &mut dyn Runtime) -> (String, BTreeSet<String>) {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let mk = |i: u64, at: f64| Arrival {
        at: SimTime::from_secs_f64(at),
        spec: JobSpec::scanning(
            task,
            ResourceRef {
                id: ObjectId(1),
                bytes: 100_000_000,
            },
            Payload::Index(i),
        ),
    };
    let mut arrivals = vec![mk(0, 0.0)];
    arrivals.extend((1..10).map(|i| mk(i, 30.0 + i as f64 * 0.25)));
    let out = rt.run_iteration(&mut wf, &BiddingAllocator::new(), arrivals);
    assert_eq!(out.record.jobs_completed, 10, "{}", rt.name());
    stream_and_vocab(rt.name(), "bidding", &out)
}

/// Stream one atomized run of [`straggler_dag`] under `alloc`. Each
/// of the six tasks is a schedulable job of its own, so the stream
/// carries the v6 task-lifecycle kinds.
fn dag_stream_vocabulary(
    rt: &mut dyn Runtime,
    alloc: &dyn Allocator,
) -> (String, BTreeSet<String>) {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::atomized(task, straggler_dag()),
    }];
    let out = rt.run_iteration(&mut wf, alloc, arrivals);
    // `jobs_completed` also counts won speculative replicas, so the
    // exactly-once guarantee lives in the task-done count.
    assert_eq!(out.sched_log.task_dones(), 6, "{}", rt.name());
    stream_and_vocab(rt.name(), alloc.kind().name(), &out)
}

/// A tiny federation whose shard streams cover the v5 vocabulary: a
/// shard-0 hot-repo burst against one worker's worth of capacity (its
/// other two churn away mid-run) forces hand-offs, so shard 0 emits
/// `sched/spill_out` plus all three membership events and shard 1
/// emits `sched/spill_in`. Returns each shard's JSONL stream and the
/// union vocabulary.
fn federation_streams(runtime: FedRuntimeKind) -> (Vec<String>, BTreeSet<String>) {
    let mut spec = FederationSpec::new(vec![
        ShardSpec::new(specs(3)).faults(
            Faults::new().membership(
                MembershipPlan::new()
                    .join_at(SimTime::from_secs(2), WorkerId(2))
                    .drain_at(SimTime::from_secs(4), WorkerId(0))
                    .remove_at(SimTime::from_secs(6), WorkerId(1)),
            ),
        ),
        ShardSpec::new(specs(2)),
    ]);
    spec.spill_threshold_secs = 10.0;
    spec.gossip_period_secs = 1.0;
    spec.seed = 7;
    spec.net_seed = 7;
    spec.runtime = runtime;
    spec.time_scale = 1e-3;
    spec.engine = EngineConfig {
        control: ControlPlane::instant(),
        data_latency: SimDuration::ZERO,
        noise: NoiseModel::None,
        ..EngineConfig::default()
    };
    let arrivals = (0..12)
        .map(|i| FedArrival {
            at: SimTime::from_secs_f64(i as f64 * 0.5),
            home: ShardId(0),
            spec: JobSpec::scanning(
                crossbid_crossflow::TaskId(0),
                ResourceRef {
                    id: ObjectId(1),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect();
    let out = run_federation(&spec, arrivals, &BiddingAllocator::new(), |_| {
        let mut wf = Workflow::new();
        wf.add_sink("scan");
        wf
    });
    assert!(!out.spills.is_empty(), "the burst must spill");

    let mut texts = Vec::new();
    let mut vocab = BTreeSet::new();
    for (s, shard) in out.shards.iter().enumerate() {
        let meta = crossbid_crossflow::RunStreamMeta {
            runtime: format!("fed-shard{s}"),
            scheduler: "bidding".to_string(),
            worker_config: "custom".to_string(),
            job_config: "custom".to_string(),
            iteration: 0,
            seed: 7,
        };
        let mut buf = Vec::new();
        crossbid_crossflow::write_run_stream(&mut buf, &meta, shard).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in parse_run_stream(&text).unwrap() {
            if let RunStreamLine::Sched(ev) = line {
                vocab.insert(format!("sched/{}", sched_kind_name(&ev.kind)));
            }
        }
        texts.push(text);
    }
    assert!(
        vocab.contains("sched/spill_out")
            && vocab.contains("sched/spill_in")
            && vocab.contains("sched/worker_joined")
            && vocab.contains("sched/worker_draining")
            && vocab.contains("sched/worker_removed"),
        "federation streams must cover the v5 event kinds, got {vocab:?}"
    );
    (texts, vocab)
}

#[test]
fn run_streams_round_trip_byte_identically() {
    // parse(write(run)) re-rendered must be byte-identical to the
    // original stream: no field is lost, reordered, or reformatted.
    let spec = faulted_spec();
    let lossy = netfault_spec();
    let runtimes: [Box<dyn Runtime>; 4] = [
        Box::new(spec.sim()),
        Box::new(spec.threaded()),
        Box::new(lossy.sim()),
        Box::new(lossy.threaded()),
    ];
    for mut rt in runtimes {
        let (text, _) = stream_vocabulary(rt.as_mut(), &BiddingAllocator::new());
        let rewritten: String = parse_run_stream(&text)
            .unwrap()
            .iter()
            .map(|l| l.to_json().render() + "\n")
            .collect();
        assert_eq!(text, rewritten, "{}: lossy round trip", rt.name());
    }
    // The replicated streams carry the v7 data-plane kinds (with
    // their object/from/attempt/evicted fields) — they must round
    // trip too.
    let replicated = replicated_spec();
    let repl_lossy = replicated_lossy_spec();
    let repl_runtimes: [(Box<dyn Runtime>, bool); 4] = [
        (Box::new(replicated.sim()), false),
        (Box::new(replicated.threaded()), false),
        (Box::new(repl_lossy.sim()), true),
        (Box::new(repl_lossy.threaded()), true),
    ];
    for (mut rt, lossy_plane) in repl_runtimes {
        let (text, _) = if lossy_plane {
            repl_lossy_stream_vocabulary(rt.as_mut())
        } else {
            repl_stream_vocabulary(rt.as_mut())
        };
        let rewritten: String = parse_run_stream(&text)
            .unwrap()
            .iter()
            .map(|l| l.to_json().render() + "\n")
            .collect();
        assert_eq!(
            text,
            rewritten,
            "{}: lossy replicated round trip",
            rt.name()
        );
    }
    // The atomized streams carry the v6 task/speculation kinds (with
    // their root/task/preds fields) — they must round trip too. The
    // Baseline run is the one that speculates (see `atomized_spec`),
    // so the stream is guaranteed to include the race events.
    let atomized = atomized_spec();
    let dag_runtimes: [Box<dyn Runtime>; 2] =
        [Box::new(atomized.sim()), Box::new(atomized.threaded())];
    for mut rt in dag_runtimes {
        let (text, vocab) = dag_stream_vocabulary(rt.as_mut(), &BaselineAllocator);
        assert!(
            vocab.contains("sched/spec_launch") && vocab.contains("sched/spec_cancel"),
            "{}: atomized stream must carry the speculation kinds, got {vocab:?}",
            rt.name()
        );
        let rewritten: String = parse_run_stream(&text)
            .unwrap()
            .iter()
            .map(|l| l.to_json().render() + "\n")
            .collect();
        assert_eq!(text, rewritten, "{}: lossy atomized round trip", rt.name());
    }
    // The federation shard streams carry the v5 spill/membership kinds
    // (with their shard fields) — they must round trip too.
    for runtime in [FedRuntimeKind::Sim, FedRuntimeKind::Threaded] {
        let (texts, _) = federation_streams(runtime);
        for text in texts {
            let rewritten: String = parse_run_stream(&text)
                .unwrap()
                .iter()
                .map(|l| l.to_json().render() + "\n")
                .collect();
            assert_eq!(text, rewritten, "{runtime:?}: lossy federation round trip");
        }
    }
}

#[test]
fn both_runtimes_emit_the_golden_event_vocabulary() {
    let golden: BTreeSet<String> = GOLDEN_VOCABULARY
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(String::from)
        .collect();
    assert_eq!(golden.len(), 38, "golden file lists every event kind");
    // The bidding protocol never offers (it assigns contest winners)
    // and the Baseline never opens contests, so the full vocabulary is
    // the union of one faulted bidding run (worker crash/recovery plus
    // a master crash for the election events), one fault-free Baseline
    // run (whose first offer of each job is declined: reject-once),
    // one partitioned bidding run exercising the reliability layer's
    // resend/lease/ack events, one churned federation run for the v5
    // spill and membership kinds, two atomized straggler runs for
    // the v6 task kinds — Baseline for the speculation race (under
    // bidding the slow worker prices itself out), bidding for
    // `sched/task_bid` — and two replicated runs for the v7
    // data-plane kinds (a holder crash for the repair cycle, total
    // peer loss for `sched/fetch_fail`).
    let faulted = faulted_spec();
    let lossy = netfault_spec();
    let atomized = atomized_spec();
    let plain = RunSpec::builder()
        .workers(specs(3))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build();
    struct VocabRuntimes {
        bidding: Box<dyn Runtime>,
        baseline: Box<dyn Runtime>,
        lossy: Box<dyn Runtime>,
        dag_baseline: Box<dyn Runtime>,
        dag_bidding: Box<dyn Runtime>,
        replicated: Box<dyn Runtime>,
        repl_lossy: Box<dyn Runtime>,
        fed: FedRuntimeKind,
    }
    let replicated = replicated_spec();
    let repl_lossy = replicated_lossy_spec();
    let runtimes: [VocabRuntimes; 2] = [
        VocabRuntimes {
            bidding: Box::new(faulted.sim()),
            baseline: Box::new(plain.sim()),
            lossy: Box::new(lossy.sim()),
            dag_baseline: Box::new(atomized.sim()),
            dag_bidding: Box::new(atomized.sim()),
            replicated: Box::new(replicated.sim()),
            repl_lossy: Box::new(repl_lossy.sim()),
            fed: FedRuntimeKind::Sim,
        },
        VocabRuntimes {
            bidding: Box::new(faulted.threaded()),
            baseline: Box::new(plain.threaded()),
            lossy: Box::new(lossy.threaded()),
            dag_baseline: Box::new(atomized.threaded()),
            dag_bidding: Box::new(atomized.threaded()),
            replicated: Box::new(replicated.threaded()),
            repl_lossy: Box::new(repl_lossy.threaded()),
            fed: FedRuntimeKind::Threaded,
        },
    ];
    for mut rt in runtimes {
        let (_, mut vocab) = stream_vocabulary(rt.bidding.as_mut(), &BiddingAllocator::new());
        let (_, baseline_vocab) = stream_vocabulary(rt.baseline.as_mut(), &BaselineAllocator);
        let (_, lossy_vocab) = stream_vocabulary(rt.lossy.as_mut(), &BiddingAllocator::new());
        let (_, dag_spec_vocab) =
            dag_stream_vocabulary(rt.dag_baseline.as_mut(), &BaselineAllocator);
        let (_, dag_bid_vocab) =
            dag_stream_vocabulary(rt.dag_bidding.as_mut(), &BiddingAllocator::new());
        assert!(
            baseline_vocab.contains("sched/offered") && baseline_vocab.contains("sched/rejected"),
            "{}: baseline run must exercise offer/reject",
            rt.baseline.name()
        );
        assert!(
            lossy_vocab.contains("sched/resent")
                && lossy_vocab.contains("sched/lease_expired")
                && lossy_vocab.contains("sched/assign_acked"),
            "{}: partitioned run must exercise the reliability events",
            rt.lossy.name()
        );
        assert!(
            dag_spec_vocab.contains("sched/spec_launch")
                && dag_spec_vocab.contains("sched/spec_cancel"),
            "{}: atomized baseline run must race a speculative replica",
            rt.dag_baseline.name()
        );
        assert!(
            dag_bid_vocab.contains("sched/task_bid"),
            "{}: atomized bidding run must draw per-task bids",
            rt.dag_bidding.name()
        );
        let (_, repl_vocab) = repl_stream_vocabulary(rt.replicated.as_mut());
        let (_, repl_lossy_vocab) = repl_lossy_stream_vocabulary(rt.repl_lossy.as_mut());
        for kind in [
            "sched/fetch_req",
            "sched/fetch_ok",
            "sched/replica_add",
            "sched/replica_drop",
            "sched/repair_start",
            "sched/repair_done",
        ] {
            assert!(
                repl_vocab.contains(kind),
                "{}: replicated run must emit {kind}, got {repl_vocab:?}",
                rt.replicated.name()
            );
        }
        assert!(
            repl_lossy_vocab.contains("sched/fetch_fail"),
            "{}: total-loss run must fail a peer attempt, got {repl_lossy_vocab:?}",
            rt.repl_lossy.name()
        );
        vocab.extend(baseline_vocab);
        vocab.extend(lossy_vocab);
        vocab.extend(dag_spec_vocab);
        vocab.extend(dag_bid_vocab);
        vocab.extend(repl_vocab);
        vocab.extend(repl_lossy_vocab);
        let (_, fed_vocab) = federation_streams(rt.fed);
        vocab.extend(fed_vocab);
        assert_eq!(
            vocab,
            golden,
            "{}: emitted vocabulary diverged from tests/golden/event_vocabulary.txt",
            rt.bidding.name()
        );
    }
}
