//! Property-based tests of the whole engine: for arbitrary workloads,
//! cluster shapes and schedulers, the structural invariants must hold.

use crossbid_baselines::{
    DelayAllocator, MatchmakingAllocator, RandomAllocator, SparkLocalityAllocator,
    SparkStaticAllocator,
};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Allocator, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec, Payload,
    ResourceRef, RunMeta, TaskId, WorkerSpec, Workflow,
};
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;
use proptest::prelude::*;

fn allocator(idx: usize) -> Box<dyn Allocator> {
    match idx {
        0 => Box::new(BiddingAllocator::new()),
        1 => Box::new(BaselineAllocator),
        2 => Box::new(SparkStaticAllocator::default()),
        3 => Box::new(SparkStaticAllocator::with_stage_barrier()),
        4 => Box::new(SparkLocalityAllocator::default()),
        5 => Box::new(MatchmakingAllocator::default()),
        6 => Box::new(DelayAllocator::default()),
        7 => Box::new(BiddingAllocator::with_bid_learning()),
        _ => Box::new(RandomAllocator),
    }
}

/// (repo id, size MB, arrival offset ms, is cpu-only)
type JobTuple = (u64, u64, u64, bool);

fn arb_jobs() -> impl Strategy<Value = Vec<JobTuple>> {
    proptest::collection::vec(
        (0u64..12, 1u64..400, 0u64..60_000, proptest::bool::ANY),
        1..30,
    )
}

fn build_arrivals(task: TaskId, jobs: &[JobTuple]) -> Vec<Arrival> {
    let mut arrivals: Vec<Arrival> = jobs
        .iter()
        .map(|&(rid, mb, at_ms, cpu_only)| Arrival {
            at: SimTime::from_millis(at_ms),
            spec: if cpu_only {
                JobSpec::compute(task, 0.5, Payload::Index(rid))
            } else {
                JobSpec::scanning(
                    task,
                    ResourceRef {
                        id: ObjectId(rid),
                        bytes: mb * 1_000_000,
                    },
                    Payload::Index(rid),
                )
            },
        })
        .collect();
    arrivals.sort_by_key(|a| a.at);
    arrivals
}

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0 + 10.0 * (i % 3) as f64)
                .rw_mbps(80.0 + 40.0 * (i % 2) as f64)
                .storage_gb(2.0)
                .build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and metric sanity for every scheduler on random
    /// workloads: every job completes exactly once, hits + misses
    /// account for exactly the resource-bearing jobs, busy fractions
    /// and makespan are well-formed.
    #[test]
    fn engine_invariants(
        jobs in arb_jobs(),
        sched_idx in 0usize..9,
        n_workers in 1usize..6,
        seed: u64,
    ) {
        let alloc = allocator(sched_idx);
        let cfg = EngineConfig::default();
        let mut cluster = Cluster::new(&specs(n_workers), &cfg);
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = build_arrivals(task, &jobs);
        let meta = RunMeta { seed, ..RunMeta::default() };
        let out = run_workflow(&mut cluster, &mut wf, alloc.as_ref(), arrivals, &cfg, &meta);
        let r = &out.record;

        prop_assert_eq!(r.jobs_completed, jobs.len() as u64, "conservation");
        let with_resource = jobs.iter().filter(|j| !j.3).count() as u64;
        prop_assert_eq!(r.cache_hits + r.cache_misses, with_resource, "lookup accounting");
        prop_assert!(r.makespan_secs >= 0.0);
        prop_assert!(r.data_load_mb >= 0.0);
        prop_assert_eq!(r.worker_busy_frac.len(), n_workers);
        for b in &r.worker_busy_frac {
            prop_assert!((0.0..=1.0 + 1e-9).contains(b), "busy {b}");
        }
        // Every placement named a real worker, and every job was
        // placed at least once.
        prop_assert!(out.assignments.len() as u64 >= r.jobs_completed);
        for (_, w) in &out.assignments {
            prop_assert!((w.0 as usize) < n_workers);
        }
    }

    /// Warm second iterations never lose jobs and never do worse than
    /// fetching everything again.
    #[test]
    fn warm_iteration_bounds(
        jobs in arb_jobs(),
        sched_idx in 0usize..2,
        seed: u64,
    ) {
        let alloc = allocator(sched_idx);
        let cfg = EngineConfig::default();
        let mut cluster = Cluster::new(&specs(3), &cfg);
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals = build_arrivals(task, &jobs);
        let meta = RunMeta { seed, ..RunMeta::default() };
        let a = run_workflow(&mut cluster, &mut wf, alloc.as_ref(), arrivals.clone(), &cfg, &meta).record;
        let b = run_workflow(&mut cluster, &mut wf, alloc.as_ref(), arrivals, &cfg, &meta).record;
        prop_assert_eq!(a.jobs_completed, b.jobs_completed);
        let with_resource = jobs.iter().filter(|j| !j.3).count() as u64;
        prop_assert!(b.cache_misses <= with_resource);
    }

    /// Determinism holds for every scheduler, workload and seed.
    #[test]
    fn determinism(
        jobs in arb_jobs(),
        sched_idx in 0usize..9,
        seed: u64,
    ) {
        let run = || {
            let alloc = allocator(sched_idx);
            let cfg = EngineConfig::default();
            let mut cluster = Cluster::new(&specs(3), &cfg);
            let mut wf = Workflow::new();
            let task = wf.add_sink("scan");
            let arrivals = build_arrivals(task, &jobs);
            let meta = RunMeta { seed, ..RunMeta::default() };
            run_workflow(&mut cluster, &mut wf, alloc.as_ref(), arrivals, &cfg, &meta).record
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        prop_assert_eq!(a.cache_misses, b.cache_misses);
        prop_assert_eq!(a.data_load_mb.to_bits(), b.data_load_mb.to_bits());
        prop_assert_eq!(a.control_messages, b.control_messages);
    }
}

/// Arbitrary well-formed [`FaultPlan`]s for an `n_workers` cluster:
/// each worker except the last independently gets an optional crash
/// and an optional later recovery, and the plan's detection delay
/// varies too. The last worker is never faulted, so some worker is
/// always alive to finish the workload — permanent crashes of the
/// rest are fair game (redistribution must still conserve jobs).
fn arb_fault_plan(n_workers: u32) -> impl Strategy<Value = crossbid_crossflow::FaultPlan> {
    use crossbid_crossflow::{FaultPlan, WorkerId};
    use crossbid_simcore::SimDuration;
    let per_worker = proptest::option::of((1u64..60, proptest::option::of(1u64..40)));
    (
        proptest::collection::vec(per_worker, (n_workers.saturating_sub(1)) as usize),
        1u64..8,
    )
        .prop_map(|(faults, detect_secs)| {
            let mut plan = FaultPlan::new();
            for (w, f) in faults.into_iter().enumerate() {
                if let Some((crash_at, recover_after)) = f {
                    plan = plan.crash_at(SimTime::from_secs(crash_at), WorkerId(w as u32));
                    if let Some(dt) = recover_after {
                        plan =
                            plan.recover_at(SimTime::from_secs(crash_at + dt), WorkerId(w as u32));
                    }
                }
            }
            plan.with_detection_delay(SimDuration::from_secs(detect_secs))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fault injection never loses jobs: for arbitrary crash/recovery
    /// schedules (with at least one worker alive throughout), every
    /// job completes exactly once and all metrics stay sane — whether
    /// the crashed workers come back or stay dead.
    #[test]
    fn faults_never_lose_jobs(
        jobs in proptest::collection::vec((0u64..8, 1u64..200, 0u64..30_000), 1..20),
        plan in arb_fault_plan(3),
        sched_idx in 0usize..2,
        seed: u64,
    ) {
        let n_workers = 3usize;
        let cfg = EngineConfig {
            faults: plan,
            ..EngineConfig::default()
        };
        let alloc = allocator(sched_idx);
        let mut cluster = Cluster::new(&specs(n_workers), &cfg);
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let arrivals: Vec<Arrival> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(rid, mb, at_ms))| Arrival {
                at: SimTime::from_millis(at_ms),
                spec: JobSpec::scanning(
                    task,
                    ResourceRef {
                        id: ObjectId(rid),
                        bytes: mb * 1_000_000,
                    },
                    Payload::Index(i as u64),
                ),
            })
            .collect();
        let meta = RunMeta { seed, ..RunMeta::default() };
        let out = run_workflow(&mut cluster, &mut wf, alloc.as_ref(), arrivals, &cfg, &meta);
        prop_assert_eq!(out.record.jobs_completed, jobs.len() as u64);
        prop_assert!(out.record.makespan_secs >= 0.0);
        // Lookups can exceed the job count (redistributed jobs look up
        // again) but can never be fewer.
        prop_assert!(out.record.cache_hits + out.record.cache_misses >= jobs.len() as u64);
    }
}
