//! Integration tests asserting the *paper's qualitative claims* hold
//! on scaled-down versions of the evaluation grid. These are the
//! reproduction's guardrails: if a refactor breaks one of these, the
//! repository no longer reproduces the paper.

use crossbid_experiments::fig3::rows_from_records;
use crossbid_experiments::runner::{full_grid, run_grid};
use crossbid_experiments::summary::compute;
use crossbid_experiments::{Cell, ExperimentConfig};
use crossbid_metrics::SchedulerKind;
use crossbid_workload::{JobConfig, WorkerConfig};

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig {
        n_jobs: 40,
        iterations: 2,
        seed: 0xC0FFEE,
        ..ExperimentConfig::default()
    }
}

/// §6.3.2 conclusion 1/2: across the grid the Bidding Scheduler is
/// faster on average, with fewer cache misses and less data load.
#[test]
fn bidding_beats_baseline_in_aggregate() {
    let cfg = small_cfg();
    let records: Vec<_> = run_grid(&cfg, &full_grid()).into_iter().flatten().collect();
    let s = compute(&records);
    assert!(
        s.mean_speedup_pct > 5.0,
        "expected a clear aggregate speedup, got {:.1}%",
        s.mean_speedup_pct
    );
    assert!(
        s.miss_reduction_pct > 10.0,
        "expected a clear miss reduction, got {:.1}%",
        s.miss_reduction_pct
    );
    assert!(
        s.data_reduction_pct > 10.0,
        "expected a clear data reduction, got {:.1}%",
        s.data_reduction_pct
    );
    assert!(s.max_speedup > 1.3, "max speedup {:.2}", s.max_speedup);
    assert_eq!(s.cells, 20);
}

/// §6.3.2 conclusion 3 + Figure 4: the advantage concentrates on
/// large-resource workloads and slow/heterogeneous clusters; the
/// small-resource workloads benefit least.
#[test]
fn advantage_concentrates_on_large_resources() {
    let cfg = small_cfg();
    let records: Vec<_> = run_grid(&cfg, &full_grid()).into_iter().flatten().collect();
    let rows = rows_from_records(&records);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.workload == name)
            .unwrap_or_else(|| panic!("row {name}"))
    };
    let large = get("all_diff_large");
    let small = get("all_diff_small");
    assert!(
        large.speedup_pct() > small.speedup_pct(),
        "large should benefit more: large {:.1}% vs small {:.1}%",
        large.speedup_pct(),
        small.speedup_pct()
    );
}

/// Figure 2's direction: Spark's centralized up-front allocation is
/// slower than the Crossflow Baseline, most dramatically on the
/// heterogeneous cluster with large repositories.
#[test]
fn spark_loses_to_crossflow_baseline() {
    let cfg = ExperimentConfig {
        n_jobs: 30,
        iterations: 1,
        ..ExperimentConfig::default()
    };
    let cells: Vec<Cell> = [SchedulerKind::Baseline, SchedulerKind::SparkStatic]
        .into_iter()
        .map(|s| Cell {
            worker_config: WorkerConfig::FastSlow,
            job_config: JobConfig::AllDiffLarge,
            scheduler: s,
        })
        .collect();
    let results = run_grid(&cfg, &cells);
    let crossflow = results[0][0].makespan_secs;
    let spark = results[1][0].makespan_secs;
    assert!(
        spark > crossflow * 1.5,
        "spark {spark:.0}s should be well above crossflow {crossflow:.0}s"
    );
}

/// The reproduction is bit-stable: the same config and seed produce
/// identical grids run-to-run (and in parallel).
#[test]
fn grid_is_bit_reproducible() {
    let cfg = ExperimentConfig {
        n_jobs: 15,
        iterations: 1,
        ..ExperimentConfig::default()
    };
    let cells = full_grid();
    let a: Vec<_> = run_grid(&cfg, &cells).into_iter().flatten().collect();
    let b: Vec<_> = run_grid(&cfg, &cells).into_iter().flatten().collect();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.makespan_secs.to_bits(), y.makespan_secs.to_bits());
        assert_eq!(x.cache_misses, y.cache_misses);
        assert_eq!(x.data_load_mb.to_bits(), y.data_load_mb.to_bits());
        assert_eq!(x.control_messages, y.control_messages);
    }
}

/// Changing only the seed changes the runs (no accidental constant
/// workloads).
#[test]
fn seeds_matter() {
    let mk = |seed| ExperimentConfig {
        n_jobs: 15,
        iterations: 1,
        seed,
        ..ExperimentConfig::default()
    };
    let cell = Cell {
        worker_config: WorkerConfig::AllEqual,
        job_config: JobConfig::AllDiffEqual,
        scheduler: SchedulerKind::Bidding,
    };
    let a = crossbid_experiments::run_cell(&mk(1), cell);
    let b = crossbid_experiments::run_cell(&mk(2), cell);
    assert_ne!(a[0].makespan_secs.to_bits(), b[0].makespan_secs.to_bits());
}
