//! Full-stack integration tests: workload generation → MSR pipeline →
//! engine → metrics → experiment aggregation, across every scheduler.

use std::sync::Arc;

use crossbid_baselines::{
    DelayAllocator, MatchmakingAllocator, RandomAllocator, SparkLocalityAllocator,
    SparkStaticAllocator,
};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Allocator, BaselineAllocator, Cluster, EngineConfig, RunMeta, RunSpec, Workflow,
};
use crossbid_metrics::{Aggregator, SchedulerKind};
use crossbid_msr::github::GitHubParams;
use crossbid_msr::{build_pipeline, library_arrivals, SyntheticGitHub};
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

fn all_allocators() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(BiddingAllocator::new()),
        Box::new(BaselineAllocator),
        Box::new(SparkStaticAllocator::default()),
        Box::new(SparkStaticAllocator::with_stage_barrier()),
        Box::new(SparkLocalityAllocator::default()),
        Box::new(MatchmakingAllocator::default()),
        Box::new(DelayAllocator::default()),
        Box::new(RandomAllocator),
    ]
}

/// Every scheduler must complete every paper workload on every
/// cluster shape — conservation across the whole matrix.
#[test]
fn every_scheduler_completes_every_workload() {
    let cfg = EngineConfig::default();
    for alloc in all_allocators() {
        for wc in [WorkerConfig::AllEqual, WorkerConfig::FastSlow] {
            for jc in [JobConfig::AllDiffEqual, JobConfig::Pct80Small] {
                let mut wf = Workflow::new();
                let task = wf.add_sink("scan");
                let stream = jc.generate(
                    7,
                    15,
                    task,
                    &ArrivalProcess::Poisson {
                        mean_interval_secs: 2.0,
                    },
                );
                let mut cluster = Cluster::new(&wc.specs(3), &cfg);
                let meta = RunMeta {
                    worker_config: wc.name().into(),
                    job_config: jc.name().into(),
                    seed: 7,
                    ..RunMeta::default()
                };
                let out = run_workflow(
                    &mut cluster,
                    &mut wf,
                    alloc.as_ref(),
                    stream.arrivals.clone(),
                    &cfg,
                    &meta,
                );
                assert_eq!(
                    out.record.jobs_completed,
                    15,
                    "{} lost jobs on {}/{}",
                    alloc.kind(),
                    wc.name(),
                    jc.name()
                );
                assert_eq!(out.record.scheduler, alloc.kind());
                assert!(out.record.makespan_secs > 0.0);
            }
        }
    }
}

/// The MSR pipeline yields the same analysis output (co-occurrence
/// CSV) under every scheduler — allocation must never change *what*
/// is computed, only *where*.
#[test]
fn msr_analysis_is_allocation_invariant() {
    let gh = Arc::new(SyntheticGitHub::generate(
        31,
        &GitHubParams {
            n_repos: 8,
            n_libraries: 12,
            mean_deps: 4.0,
            popularity_skew: 0.8,
        },
    ));
    let mut csvs = Vec::new();
    for alloc in all_allocators() {
        let mut wf = Workflow::new();
        let pipe = build_pipeline(&mut wf, Arc::clone(&gh), 5, 0.0);
        let arrivals = library_arrivals(&pipe, 12, 1.0);
        let cfg = EngineConfig::default();
        let mut cluster = Cluster::new(&WorkerConfig::AllEqual.specs(3), &cfg);
        run_workflow(
            &mut cluster,
            &mut wf,
            alloc.as_ref(),
            arrivals,
            &cfg,
            &RunMeta::default(),
        );
        csvs.push(pipe.matrix(&mut wf).to_csv());
    }
    for w in csvs.windows(2) {
        assert_eq!(w[0], w[1], "schedulers disagreed on the analysis result");
    }
}

/// Warm-cache sessions improve (or at least never regress) locality
/// metrics for the locality-aware schedulers.
#[test]
fn sessions_warm_up_locality_for_locality_aware_schedulers() {
    for alloc in [
        &BiddingAllocator::new() as &dyn Allocator,
        &BaselineAllocator,
        &MatchmakingAllocator::default(),
        &DelayAllocator::default(),
    ] {
        let wc = WorkerConfig::AllEqual;
        let jc = JobConfig::Pct80Small;
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let stream = jc.generate(13, 20, task, &ArrivalProcess::evaluation_default());
        let mut session = RunSpec::builder()
            .workers(wc.specs(3))
            .names(wc.name(), jc.name())
            .seed(13)
            .build()
            .sim();
        let records = session.run_iterations(&mut wf, alloc, 3, |_| stream.arrivals.clone());
        assert_eq!(records.len(), 3);
        let cold = records[0].cache_misses;
        let warm = records[2].cache_misses;
        assert!(
            warm <= cold,
            "{}: warm iteration regressed ({} -> {})",
            alloc.kind(),
            cold,
            warm
        );
    }
}

/// End-to-end through the metrics layer: aggregating engine records by
/// job config produces per-scheduler groups with the right counts.
#[test]
fn records_flow_into_aggregation() {
    let cfg = EngineConfig::default();
    let mut records = Vec::new();
    for alloc in [
        &BiddingAllocator::new() as &dyn Allocator,
        &BaselineAllocator,
    ] {
        for jc in [JobConfig::AllDiffSmall, JobConfig::Pct80Small] {
            let mut wf = Workflow::new();
            let task = wf.add_sink("scan");
            let stream = jc.generate(3, 10, task, &ArrivalProcess::Batch);
            let mut cluster = Cluster::new(&WorkerConfig::AllEqual.specs(2), &cfg);
            let meta = RunMeta {
                job_config: jc.name().into(),
                seed: 3,
                ..RunMeta::default()
            };
            records.push(
                run_workflow(
                    &mut cluster,
                    &mut wf,
                    alloc,
                    stream.arrivals.clone(),
                    &cfg,
                    &meta,
                )
                .record,
            );
        }
    }
    let mut agg = Aggregator::new();
    agg.push_all_by_job_config(&records);
    assert_eq!(agg.keys().len(), 2);
    for kind in [SchedulerKind::Bidding, SchedulerKind::Baseline] {
        for key in agg.keys() {
            let a = agg.get(kind, &key).expect("group exists");
            assert_eq!(a.runs, 1);
            assert!(a.makespan.mean() > 0.0);
        }
    }
}

/// Fault-injection: clearing a worker's cache mid-session (a "disk
/// wipe") must not break completion, only cost extra downloads.
#[test]
fn cache_wipe_between_iterations_is_survivable() {
    let wc = WorkerConfig::AllEqual;
    let jc = JobConfig::Pct80Small;
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let stream = jc.generate(17, 20, task, &ArrivalProcess::evaluation_default());
    let mut session = RunSpec::builder()
        .workers(wc.specs(3))
        .names(wc.name(), jc.name())
        .seed(17)
        .build()
        .sim();
    let alloc = BiddingAllocator::new();
    let warm = session
        .run_iteration(&mut wf, &alloc, stream.arrivals.clone())
        .record;
    session.cluster_mut().clear_caches();
    let wiped = session
        .run_iteration(&mut wf, &alloc, stream.arrivals.clone())
        .record;
    assert_eq!(warm.jobs_completed, 20);
    assert_eq!(wiped.jobs_completed, 20);
    assert!(
        wiped.cache_misses >= warm.cache_misses,
        "wipe must not make locality better"
    );
}
