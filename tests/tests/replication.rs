//! Self-healing replicated data plane: peer fetch, pinning, and
//! crash-triggered re-replication.
//!
//! Pinned regressions exercise each protocol leg deterministically
//! (peer serving, loss → retry → degraded master fallback, crash →
//! committed repair); the property tests then drive arbitrary
//! crash/partition plans and assert the two load-bearing invariants:
//!
//! * **Liveness** — every artifact the run touched retains at least
//!   one live replica at end of run (the pin discipline means eviction
//!   can never discard the last copy, and repairs re-establish the
//!   factor after crashes), provided every crashed worker recovers.
//! * **Replayability** — folding the committed `replica_add` /
//!   `replica_drop` entries through [`SchedState::replay`] reconstructs
//!   exactly the live [`ReplicaMap`] the engine ended with: the log is
//!   a faithful journal of the data plane, which is what failover
//!   repair resumption rides on.

use crossbid_checker::{check_log, OracleOptions};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    Arrival, EngineConfig, FaultPlan, Faults, JobSpec, NetFaultPlan, Payload, ReplicationConfig,
    ResourceRef, RunOutput, RunSpec, SchedState, WorkerId, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;
use proptest::prelude::*;

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

/// Jobs alternating over `objects` distinct artifacts. 2-second
/// spacing lets crashes land between completions; the loss test
/// overrides it downward to force contention (queue pressure is what
/// spreads a hot artifact onto data-less workers).
fn arrivals_spaced(
    task: crossbid_crossflow::TaskId,
    jobs: usize,
    objects: u64,
    spacing: f64,
) -> Vec<Arrival> {
    (0..jobs)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * spacing),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1 + (i as u64 % objects)),
                    bytes: 100_000_000,
                },
                Payload::Index(i as u64),
            ),
        })
        .collect()
}

fn run_replicated(
    workers: usize,
    repl: ReplicationConfig,
    faults: Faults,
    seed: u64,
    jobs: usize,
    objects: u64,
) -> RunOutput {
    let spec = RunSpec::builder()
        .workers(specs(workers))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .replication(repl)
        .faults(faults)
        .trace(true)
        .seed(seed)
        .time_scale(1e-3)
        .build();
    let mut session = spec.sim();
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arr = arrivals_spaced(task, jobs, objects, 2.0);
    session.run_iteration(&mut wf, &BiddingAllocator::new(), arr)
}

fn oracle_options(workers: usize) -> OracleOptions {
    OracleOptions {
        expect_all_complete: true,
        strict_reoffer: false,
        workers: Some(workers as u32),
        ..OracleOptions::default()
    }
}

/// The committed log's replica journal, folded through the shared
/// state machine, must equal the engine's live map — same objects,
/// same holder sets.
fn assert_replay_matches(out: &RunOutput) {
    let live = out
        .replicas
        .as_ref()
        .expect("replication armed but RunOutput.replicas missing");
    let replayed = SchedState::replay(out.sched_log.events().iter());
    let live_sets: Vec<(u64, Vec<u32>)> = live
        .objects()
        .map(|obj| (obj.0, live.replicas(obj).collect()))
        .filter(|(_, holders): &(u64, Vec<u32>)| !holders.is_empty())
        .collect();
    let replay_sets: Vec<(u64, Vec<u32>)> = replayed
        .replicas
        .iter()
        .map(|(obj, holders)| (*obj, holders.iter().map(|w| w.0).collect()))
        .collect();
    assert_eq!(
        live_sets, replay_sets,
        "log replay diverged from the live replica map"
    );
}

/// Factor 2, no faults: the second worker to need a hot artifact is
/// served by a peer (fetch_req/fetch_ok), the proactive top-up
/// replicates each artifact to the factor, and every job completes
/// with zero oracle violations.
#[test]
fn peer_fetch_serves_hot_artifacts_from_replicas() {
    let out = run_replicated(
        4,
        ReplicationConfig::with_factor(2),
        Faults::new(),
        7,
        12,
        2,
    );
    assert_eq!(out.record.jobs_completed, 12);
    let log = &out.sched_log;
    assert!(log.fetch_reqs() >= 1, "no peer fetch was ever attempted");
    assert_eq!(
        log.fetch_oks(),
        log.fetch_reqs() - log.fetch_fails(),
        "every fetch_req must resolve to exactly one ok or fail"
    );
    assert!(log.replica_adds() >= 2, "top-up never replicated anything");
    let violations = check_log(log, oracle_options(4));
    assert!(violations.is_empty(), "{violations:?}");
    let live = out.replicas.as_ref().unwrap();
    for obj in [ObjectId(1), ObjectId(2)] {
        assert!(
            live.count(obj) >= 2,
            "object {} ended under-replicated: {} < 2",
            obj.0,
            live.count(obj)
        );
    }
    assert_replay_matches(&out);
}

/// Total data-plane loss (`peer_drop_prob = 1`): every peer attempt
/// times out, the retry loop burns its budget (observable as
/// `fetch_fail` entries — the acceptance criterion's "≥ 1 retry"),
/// and the degraded master path still completes every job.
#[test]
fn peer_loss_retries_then_degrades_to_master_fetch() {
    let repl = ReplicationConfig {
        peer_drop_prob: 1.0,
        fetch_timeout_secs: 0.5,
        ..ReplicationConfig::with_factor(2)
    };
    let spec = RunSpec::builder()
        .workers(specs(3))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .replication(repl)
        .trace(true)
        .seed(11)
        .time_scale(1e-3)
        .build();
    let mut session = spec.sim();
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    // Two phases: one seeding job establishes the artifact (master
    // fetch + top-up to the factor), then a burst arrives once the
    // copies exist — queue pressure forces placements onto the
    // data-less third worker, whose only peer path is the lossy one.
    let mk = |i: u64, at: f64| Arrival {
        at: SimTime::from_secs_f64(at),
        spec: JobSpec::scanning(
            task,
            ResourceRef {
                id: ObjectId(1),
                bytes: 100_000_000,
            },
            Payload::Index(i),
        ),
    };
    let mut arr = vec![mk(0, 0.0)];
    arr.extend((1..10).map(|i| mk(i, 30.0 + i as f64 * 0.25)));
    let out = session.run_iteration(&mut wf, &BiddingAllocator::new(), arr);
    assert_eq!(out.record.jobs_completed, 10);
    let log = &out.sched_log;
    assert!(
        log.fetch_fails() >= 1,
        "total loss must surface at least one failed attempt"
    );
    assert_eq!(
        log.fetch_oks(),
        0,
        "no peer transfer can survive peer_drop_prob = 1"
    );
    let violations = check_log(log, oracle_options(3));
    assert!(violations.is_empty(), "{violations:?}");
    assert_replay_matches(&out);
}

/// A crash of a replica holder triggers a committed re-replication:
/// `replica_drop` (evicted = false) for the dead worker's copies, then
/// `repair_start` → `repair_done` restoring the factor — and the run
/// does not end until the repair lands.
#[test]
fn crash_triggers_committed_re_replication() {
    let faults = Faults::new().workers(
        FaultPlan::new()
            .crash_at(SimTime::from_secs_f64(21.0), WorkerId(0))
            .recover_at(SimTime::from_secs_f64(40.0), WorkerId(0)),
    );
    let out = run_replicated(4, ReplicationConfig::with_factor(2), faults, 3, 12, 2);
    assert_eq!(out.record.jobs_completed, 12);
    let log = &out.sched_log;
    assert!(
        log.replica_drops() >= 1,
        "the crash dropped no replicas — it missed every holder"
    );
    assert!(log.repair_starts() >= 1, "no repair was ever committed");
    assert_eq!(
        log.repair_starts(),
        log.repair_dones(),
        "every committed repair must complete"
    );
    let violations = check_log(log, oracle_options(4));
    assert!(violations.is_empty(), "{violations:?}");
    assert_replay_matches(&out);
}

/// The same data plane on real threads: replica-discounted bids, peer
/// transfers, committed repairs. The run is nondeterministic, so the
/// assertions are the protocol invariants, not exact counts.
fn run_replicated_threaded(
    workers: usize,
    repl: ReplicationConfig,
    faults: Faults,
    seed: u64,
    jobs: usize,
    objects: u64,
) -> RunOutput {
    let spec = RunSpec::builder()
        .workers(specs(workers))
        .engine(EngineConfig {
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .replication(repl)
        .faults(faults)
        .trace(true)
        .seed(seed)
        .time_scale(1e-3)
        .build();
    let mut session = spec.threaded();
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arr = arrivals_spaced(task, jobs, objects, 2.0);
    session.run_iteration(&mut wf, &BiddingAllocator::new(), arr)
}

/// Threaded runtime, factor 2, no faults: peer fetches resolve to
/// exactly one ok/fail each, the top-up restores the factor, the
/// committed log replays to the live map, zero oracle violations.
#[test]
fn threaded_peer_fetch_and_topup() {
    let out = run_replicated_threaded(
        4,
        ReplicationConfig::with_factor(2),
        Faults::new(),
        7,
        12,
        2,
    );
    assert_eq!(out.record.jobs_completed, 12);
    let log = &out.sched_log;
    assert_eq!(
        log.fetch_oks(),
        log.fetch_reqs() - log.fetch_fails(),
        "every fetch_req must resolve to exactly one ok or fail"
    );
    assert!(log.replica_adds() >= 2, "top-up never replicated anything");
    let violations = check_log(log, oracle_options(4));
    assert!(violations.is_empty(), "{violations:?}");
    let live = out.replicas.as_ref().unwrap();
    for obj in [ObjectId(1), ObjectId(2)] {
        assert!(
            live.count(obj) >= 2,
            "object {} ended under-replicated: {} < 2",
            obj.0,
            live.count(obj)
        );
    }
    assert_replay_matches(&out);
}

/// Threaded runtime: a crashed replica holder triggers a committed
/// re-replication, every committed repair completes before the run
/// ends, and the log replays to the live map.
#[test]
fn threaded_crash_triggers_committed_re_replication() {
    let faults = Faults::new().workers(
        FaultPlan::new()
            .crash_at(SimTime::from_secs_f64(21.0), WorkerId(0))
            .recover_at(SimTime::from_secs_f64(40.0), WorkerId(0)),
    );
    let out = run_replicated_threaded(4, ReplicationConfig::with_factor(2), faults, 3, 12, 2);
    assert_eq!(out.record.jobs_completed, 12);
    let log = &out.sched_log;
    assert!(log.repair_starts() >= 1, "no repair was ever committed");
    assert_eq!(
        log.repair_starts(),
        log.repair_dones(),
        "every committed repair must complete"
    );
    let violations = check_log(log, oracle_options(4));
    assert!(violations.is_empty(), "{violations:?}");
    assert_replay_matches(&out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Liveness under arbitrary single-crash plans (the crashed worker
    /// always recovers) with an optional partition window: zero oracle
    /// violations, every job exactly once, and every artifact the run
    /// touched ends with at least one live replica.
    #[test]
    fn every_touched_artifact_retains_a_live_replica(
        seed in 0u64..1000,
        victim in 0u32..4,
        crash_at in 5.0f64..30.0,
        partition in proptest::option::of((0u32..4, 0.0f64..20.0, 1.0f64..8.0)),
    ) {
        let mut faults = Faults::new().workers(
            FaultPlan::new()
                .crash_at(SimTime::from_secs_f64(crash_at), WorkerId(victim))
                .recover_at(SimTime::from_secs_f64(crash_at + 12.0), WorkerId(victim)),
        );
        if let Some((cut, from, len)) = partition {
            faults = faults.net(NetFaultPlan::none().with_partition(
                Some(WorkerId(cut)),
                SimTime::from_secs_f64(from),
                SimTime::from_secs_f64(from + len),
            ));
        }
        let out = run_replicated(4, ReplicationConfig::with_factor(2), faults, seed, 12, 3);
        prop_assert_eq!(out.record.jobs_completed, 12);
        let violations = check_log(&out.sched_log, oracle_options(4));
        prop_assert!(violations.is_empty(), "{:?}", violations);
        let live = out.replicas.as_ref().expect("replicas missing");
        for obj in 1..=3u64 {
            prop_assert!(
                live.count(ObjectId(obj)) >= 1,
                "object {} lost its last live replica (seed {}, victim {}, crash_at {})",
                obj, seed, victim, crash_at
            );
        }
    }

    /// Replay equality as a property: across seeds, factors and crash
    /// points, apply ∘ replay of the committed log's replica events
    /// equals the engine's final map exactly.
    #[test]
    fn log_replay_reconstructs_the_replica_map(
        seed in 0u64..1000,
        factor in 1u32..4,
        crash in proptest::option::of((0u32..4, 5.0f64..25.0)),
    ) {
        let faults = match crash {
            Some((victim, at)) => Faults::new().workers(
                FaultPlan::new()
                    .crash_at(SimTime::from_secs_f64(at), WorkerId(victim))
                    .recover_at(SimTime::from_secs_f64(at + 10.0), WorkerId(victim)),
            ),
            None => Faults::new(),
        };
        let out = run_replicated(4, ReplicationConfig::with_factor(factor), faults, seed, 10, 2);
        prop_assert_eq!(out.record.jobs_completed, 10);
        assert_replay_matches(&out);
    }
}
