//! Fault-injection tests — the failure scenarios §5 defers to future
//! work: "a worker dying after winning a bid" and "redistributing the
//! remaining jobs if a worker becomes unavailable".

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_threaded_output, run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig,
    FaultPlan, JobSpec, Payload, ResourceRef, RunMeta, ThreadedConfig, ThreadedScheduler, WorkerId,
    WorkerSpec, Workflow,
};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn arrivals(jobs: usize, spacing_secs: u64, mb: u64) -> Vec<Arrival> {
    (0..jobs)
        .map(|i| Arrival {
            at: SimTime::from_secs(i as u64 * spacing_secs),
            spec: JobSpec::scanning(
                crossbid_crossflow::TaskId(0),
                res(i as u64, mb),
                Payload::Index(i as u64),
            ),
        })
        .collect()
}

fn cfg_with(faults: FaultPlan) -> EngineConfig {
    EngineConfig {
        faults,
        ..EngineConfig::ideal()
    }
}

#[test]
fn worker_dying_after_winning_bids_loses_no_jobs() {
    // Worker crashes at t=30s with work queued; everything still
    // completes via redistribution.
    let faults = FaultPlan::new().crash_at(SimTime::from_secs(30), WorkerId(0));
    let cfg = cfg_with(faults);
    let mut cluster = Cluster::new(&specs(3), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(12, 5, 100),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 12, "no job may be lost");
    // Jobs that ran after the crash never ran on worker 0 again.
    // (Assignments before the crash may name it.)
    assert!(out.assignments.iter().any(|(_, w)| *w != WorkerId(0)));
}

#[test]
fn baseline_survives_crash_too() {
    let faults = FaultPlan::new().crash_at(SimTime::from_secs(25), WorkerId(1));
    let cfg = cfg_with(faults);
    let mut cluster = Cluster::new(&specs(3), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals(12, 5, 100),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 12);
}

#[test]
fn crash_loses_the_cache() {
    // The dead worker's clones are gone; after recovery its store is
    // cold, so a repeated resource must be re-downloaded somewhere.
    let faults = FaultPlan::new()
        .crash_at(SimTime::from_secs(40), WorkerId(0))
        .recover_at(SimTime::from_secs(41), WorkerId(0));
    let cfg = cfg_with(faults);
    let mut cluster = Cluster::new(&specs(1), &cfg); // single worker: crashes and recovers
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    // Same repo before and after the crash window.
    let jobs: Vec<Arrival> = [0u64, 10, 60, 70]
        .iter()
        .map(|&t| Arrival {
            at: SimTime::from_secs(t),
            spec: JobSpec::scanning(
                crossbid_crossflow::TaskId(0),
                res(1, 100),
                Payload::Index(1),
            ),
        })
        .collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        jobs,
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 4);
    assert_eq!(
        out.record.cache_misses, 2,
        "one cold fetch before the crash, one after"
    );
    assert!(!cluster.node(WorkerId(0)).store.is_empty());
}

#[test]
fn all_workers_down_waits_for_recovery() {
    // Both workers die, then one recovers: stranded jobs wait and then
    // complete.
    let faults = FaultPlan::new()
        .with_detection_delay(SimDuration::from_secs(1))
        .crash_at(SimTime::from_secs(2), WorkerId(0))
        .crash_at(SimTime::from_secs(2), WorkerId(1))
        .recover_at(SimTime::from_secs(50), WorkerId(0));
    let cfg = cfg_with(faults);
    let mut cluster = Cluster::new(&specs(2), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(4, 1, 50),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 4);
    assert!(
        out.record.makespan_secs >= 50.0,
        "work can only finish after the recovery at t=50 (got {})",
        out.record.makespan_secs
    );
}

#[test]
fn contests_mask_mid_contest_failures_via_window() {
    // A worker dies while contests are open: its bids never arrive and
    // the remaining workers' full set (or the window) decides.
    let faults = FaultPlan::new().crash_at(SimTime::from_millis(1), WorkerId(2));
    let mut cfg = cfg_with(faults);
    // Non-zero latency so the crash lands between broadcast and bids.
    cfg.control = crossbid_net::ControlPlane::new(SimDuration::from_millis(50), SimDuration::ZERO);
    let mut cluster = Cluster::new(&specs(3), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(5, 1, 50),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 5);
    // Nothing was ever placed on the dead worker after the crash: the
    // first contest may time out, later ones see a 2-worker roster.
    for (_, w) in &out.assignments {
        assert_ne!(*w, WorkerId(2), "assignment to a dead worker leaked");
    }
}

#[test]
fn sim_records_fault_metrics_and_log() {
    // The sim engine's scheduler log and the new RunRecord fault
    // fields must agree with each other and with the plan.
    let faults = FaultPlan::new()
        .crash_at(SimTime::from_secs(20), WorkerId(0))
        .recover_at(SimTime::from_secs(60), WorkerId(0));
    let mut cfg = cfg_with(faults);
    cfg.trace = true;
    let mut cluster = Cluster::new(&specs(3), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(12, 5, 100),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 12);
    assert_eq!(out.record.worker_crashes, 1);
    assert_eq!(out.sched_log.crashes(), 1);
    assert_eq!(out.sched_log.recoveries(), 1);
    assert_eq!(
        out.sched_log.redistributions() as u64,
        out.record.jobs_redistributed
    );
    // Down from t=20 to t=60: forty virtual seconds of downtime.
    assert!(
        (out.record.recovery_secs - 40.0).abs() < 1e-6,
        "downtime should be 40 s, got {}",
        out.record.recovery_secs
    );
    assert!(out
        .sched_log
        .no_assignments_to_detected_dead(cfg.faults.detection_delay.as_secs_f64()));
}

#[test]
fn both_runtimes_mask_the_same_crash() {
    // The headline parity claim of the fault work: inject the same
    // crash into the simulated and the threaded runtime and both must
    // uphold the same invariants — nothing lost, the crash observed,
    // stranded work redistributed, no post-detection assignment to
    // the corpse.
    // Early enough that every worker still holds unfinished work (the
    // run spans ~20 virtual seconds), late enough that the first
    // contests have resolved.
    let crash_at = SimTime::from_secs(8);
    // Hot repo: queues concentrate, so the dead worker has work to
    // strand in both runtimes.
    let hot: Vec<Arrival> = (0..10)
        .map(|i| Arrival {
            at: SimTime::from_secs(i),
            spec: JobSpec::scanning(
                crossbid_crossflow::TaskId(0),
                res(1, 100),
                Payload::Index(i),
            ),
        })
        .collect();

    let sim_cfg = EngineConfig {
        trace: true,
        faults: FaultPlan::new().crash_at(crash_at, WorkerId(0)),
        ..EngineConfig::ideal()
    };
    let mut cluster = Cluster::new(&specs(3), &sim_cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let sim = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        hot.clone(),
        &sim_cfg,
        &RunMeta::default(),
    );

    let thr_cfg = ThreadedConfig {
        time_scale: 1e-3,
        noise: crossbid_net::NoiseModel::None,
        scheduler: ThreadedScheduler::Bidding { window_secs: 1.0 },
        seed: 5,
        faults: FaultPlan::new().crash_at(crash_at, WorkerId(0)),
        ..ThreadedConfig::default()
    };
    let mut wf2 = Workflow::new();
    wf2.add_sink("scan");
    let thr = run_threaded_output(&specs(3), &thr_cfg, &mut wf2, hot, &RunMeta::default());

    for (label, rec, log) in [
        ("sim", &sim.record, &sim.sched_log),
        ("threaded", &thr.record, &thr.sched_log),
    ] {
        assert_eq!(rec.jobs_completed, 10, "{label}: no job may be lost");
        assert_eq!(rec.worker_crashes, 1, "{label}");
        assert_eq!(log.crashes(), 1, "{label}");
        assert_eq!(
            log.redistributions() as u64,
            rec.jobs_redistributed,
            "{label}"
        );
        assert!(log.no_assignments_to_detected_dead(2.0), "{label}");
        assert!(rec.recovery_secs > 0.0, "{label}: downtime to end of run");
    }
}

#[test]
fn crash_of_unknown_worker_is_idempotent() {
    // Crashing an already-dead worker (duplicate fault event) is a
    // no-op rather than a panic.
    let faults = FaultPlan::new()
        .crash_at(SimTime::from_secs(1), WorkerId(0))
        .crash_at(SimTime::from_secs(2), WorkerId(0));
    let cfg = cfg_with(faults);
    let mut cluster = Cluster::new(&specs(2), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(6, 2, 50),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 6);
}
