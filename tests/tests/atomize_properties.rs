//! Property-based tests of the atomizer: for arbitrary task DAGs —
//! including shapes that provoke speculative duplicates — replaying
//! the scheduler log must show per-task conservation (one effective
//! completion per offered task), gate discipline, and the
//! launched-once speculation guard.
//!
//! Seeds are pinned by proptest's deterministic RNG; `PROPTEST_CASES`
//! deepens the sweep in scheduled CI without a code change.

use std::collections::HashMap;

use crossbid_checker::{check_log, OracleOptions};
use crossbid_crossflow::{
    run_workflow, Arrival, AtomizeConfig, BaselineAllocator, Cluster, EngineConfig, JobSpec,
    ResourceRef, RunMeta, SchedEventKind, SchedLog, TaskDag, TaskNode, WorkerSpec, Workflow,
};
use crossbid_net::ControlPlane;
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;
use proptest::prelude::*;

/// (cpu deciseconds, pred mask bits) per task; masks are truncated to
/// the valid range at build time so every generated DAG validates.
type TaskTuple = (u64, u64);

fn arb_dag() -> impl Strategy<Value = Vec<TaskTuple>> {
    proptest::collection::vec((1u64..40, 0u64..u64::MAX), 1..14)
}

fn build_dag(tuples: &[TaskTuple], base: u64) -> TaskDag {
    let tasks: Vec<TaskNode> = tuples
        .iter()
        .enumerate()
        .map(|(i, &(deci, mask))| {
            // Only bits below the task's own index are legal preds.
            let preds = if i == 0 { 0 } else { mask & ((1u64 << i) - 1) };
            TaskNode {
                preds,
                input: Some(ResourceRef {
                    id: ObjectId(base + i as u64),
                    bytes: 2_000_000,
                }),
                output: ResourceRef {
                    id: ObjectId(base + 64 + i as u64),
                    bytes: 1_000_000,
                },
                work_bytes: 2_000_000,
                cpu_secs: deci as f64 / 10.0,
            }
        })
        .collect();
    TaskDag::new(tasks).expect("masked preds always validate")
}

/// Replay the log: collect per-(root, task) offer/done/launch counts
/// and check gate discipline along the way.
fn replay(log: &SchedLog) -> Replay {
    let mut r = Replay {
        offers: HashMap::new(),
        dones: HashMap::new(),
        launches: HashMap::new(),
        cancels: 0,
        gate_ok: true,
    };
    let mut done_masks: HashMap<u64, u64> = HashMap::new();
    for e in log.events() {
        match e.kind {
            SchedEventKind::TaskOffer {
                root, task, preds, ..
            } => {
                *r.offers.entry((root.0, task)).or_insert(0) += 1;
                let done = done_masks.entry(root.0).or_insert(0);
                r.gate_ok &= preds & !*done == 0;
            }
            SchedEventKind::TaskDone { root, task } => {
                *r.dones.entry((root.0, task)).or_insert(0) += 1;
                *done_masks.entry(root.0).or_insert(0) |= 1u64 << task;
            }
            SchedEventKind::SpecLaunch { root, task } => {
                *r.launches.entry((root.0, task)).or_insert(0) += 1;
            }
            SchedEventKind::SpecCancel { .. } => {
                r.cancels += 1;
            }
            _ => {}
        }
    }
    r
}

struct Replay {
    offers: HashMap<(u64, u32), u32>,
    dones: HashMap<(u64, u32), u32>,
    launches: HashMap<(u64, u32), u32>,
    cancels: u32,
    gate_ok: bool,
}

fn run(
    dags: &[Vec<TaskTuple>],
    workers: usize,
    slow_factor: f64,
    atomize: AtomizeConfig,
) -> crossbid_crossflow::RunOutput {
    let specs: Vec<WorkerSpec> = (0..workers)
        .map(|i| {
            let mut b = WorkerSpec::builder(format!("w{i}"))
                .net_mbps(50.0)
                .rw_mbps(100.0)
                .storage_gb(10.0);
            if i == workers - 1 {
                b = b.cpu_factor(slow_factor);
            }
            b.build()
        })
        .collect();
    let cfg = EngineConfig {
        control: ControlPlane::instant(),
        data_latency: SimDuration::ZERO,
        trace: true,
        atomize,
        ..EngineConfig::ideal()
    };
    let mut cluster = Cluster::new(&specs, &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals: Vec<Arrival> = dags
        .iter()
        .enumerate()
        .map(|(k, tuples)| Arrival {
            at: SimTime::from_secs_f64(k as f64 * 2.0),
            spec: JobSpec::atomized(task, build_dag(tuples, 1000 + 128 * k as u64)),
        })
        .collect();
    run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary DAG batches on an honest cluster: every offered
    /// task completes effectively exactly once, gating never breaks,
    /// and the oracle agrees.
    #[test]
    fn replayed_log_conserves_tasks(
        dags in proptest::collection::vec(arb_dag(), 1..4),
        workers in 2usize..5,
    ) {
        let out = run(&dags, workers, 1.0, AtomizeConfig::default());
        let total: usize = dags.iter().map(Vec::len).sum();
        let r = replay(&out.sched_log);
        prop_assert!(r.gate_ok, "a task was offered before its predecessors");
        prop_assert_eq!(r.offers.len(), total, "every task offered");
        prop_assert_eq!(r.dones.len(), total, "every task effectively done");
        for (key, n) in &r.dones {
            prop_assert_eq!(*n, 1, "task {:?} completed {} times", key, n);
        }
        let v = check_log(&out.sched_log, OracleOptions {
            expect_all_complete: true,
            workers: Some(workers as u32),
            ..OracleOptions::default()
        });
        prop_assert!(v.is_empty(), "oracle violations: {:?}", v);
    }

    /// Same conservation with an aggressive speculation config and a
    /// deliberately slow worker, so racing duplicate attempts are part
    /// of most runs: the loser's completion must never double-count,
    /// and no task is speculatively launched twice.
    #[test]
    fn speculative_duplicates_stay_exactly_once(
        dags in proptest::collection::vec(arb_dag(), 1..3),
        slow_deci in 50u64..400,
    ) {
        let atomize = AtomizeConfig {
            spec_factor: 1.2,
            spec_check_secs: 0.5,
            min_completed_for_spec: 1,
            ..AtomizeConfig::default()
        };
        let out = run(&dags, 3, slow_deci as f64 / 10.0, atomize);
        let total: usize = dags.iter().map(Vec::len).sum();
        let r = replay(&out.sched_log);
        prop_assert!(r.gate_ok, "a task was offered before its predecessors");
        prop_assert_eq!(r.dones.len(), total, "every task effectively done");
        for (key, n) in &r.dones {
            prop_assert_eq!(*n, 1, "task {:?} completed {} times", key, n);
        }
        for (key, n) in &r.launches {
            prop_assert_eq!(*n, 1, "task {:?} speculated {} times", key, n);
        }
        // Every decided race cancelled exactly one loser.
        prop_assert_eq!(r.cancels as usize, r.launches.len());
        let v = check_log(&out.sched_log, OracleOptions {
            expect_all_complete: true,
            workers: Some(3),
            ..OracleOptions::default()
        });
        prop_assert!(v.is_empty(), "oracle violations: {:?}", v);
    }
}
