//! Master-failover correctness: the pure state machine's split-replay
//! property on real run logs, and a pinned regression for the
//! harshest takeover — a leader dying with an unacked `Assign` in
//! flight behind a partition.

use crossbid_checker::{check_log, OracleOptions};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    Arrival, EngineConfig, Faults, JobSpec, MasterFaultPlan, NetFaultPlan, Payload, ResourceRef,
    RunOutput, RunSpec, SchedEventKind, SchedState, WorkerId, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;
use proptest::prelude::*;

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn hot_repo_arrivals(task: crossbid_crossflow::TaskId, n: usize) -> Vec<Arrival> {
    (0..n)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * 0.5),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1),
                    bytes: 100_000_000,
                },
                Payload::Index(i as u64),
            ),
        })
        .collect()
}

/// One deterministic sim run of the hot-repo workload under the given
/// fault aggregate.
fn run_sim(workers: usize, faults: Faults) -> RunOutput {
    let spec = RunSpec::builder()
        .workers(specs(workers))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .faults(faults)
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build();
    let mut session = spec.sim();
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals = hot_repo_arrivals(task, 12);
    session.run_iteration(&mut wf, &BiddingAllocator::new(), arrivals)
}

fn oracle_options(workers: usize) -> OracleOptions {
    OracleOptions {
        expect_all_complete: true,
        strict_reoffer: false,
        workers: Some(workers as u32),
        ..OracleOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `SchedState::replay` is a pure fold: for a *real* run log that
    /// includes a master crash and failover at an arbitrary append
    /// index, replaying any prefix and then applying the suffix must
    /// equal replaying the whole log. This is the property the
    /// standby's takeover rides on — "state at the crash point" is
    /// well-defined no matter where the leader died.
    #[test]
    fn split_replay_matches_whole_replay_on_real_logs(
        workers in 2usize..6,
        crash_index in 1u64..60,
        split_frac in 0.0f64..1.0,
    ) {
        let out = run_sim(
            workers,
            Faults::new().master(MasterFaultPlan::new().crash_at(crash_index)),
        );
        // The crash schedule must actually have fired (the hot-repo
        // log has well over 60 appends), or the run proves nothing.
        prop_assert_eq!(out.sched_log.failovers(), 1);
        prop_assert_eq!(out.record.jobs_completed, 12);
        prop_assert!(
            check_log(&out.sched_log, oracle_options(workers)).is_empty(),
            "oracle violations at crash index {}",
            crash_index
        );
        let events = out.sched_log.events();
        let whole = SchedState::replay(events.iter());
        let split = ((events.len() as f64) * split_frac) as usize;
        let split = split.min(events.len());
        let mut st = SchedState::replay(events[..split].iter());
        for ev in &events[split..] {
            st.apply(ev);
        }
        prop_assert_eq!(st, whole, "split at {} diverged", split);
    }
}

/// Pinned regression: the leader dies *just after* committing an
/// `Assign` whose message a partition has swallowed — the successor
/// inherits an open placement it never sent, must keep honouring its
/// lease and retries rather than double-issue it, and every job must
/// still complete exactly once.
#[test]
fn failover_with_unacked_assign_in_flight() {
    // A full partition over [1 s, 4 s): assignments decided inside the
    // window are committed and sent but never delivered, so the
    // reliability layer (acks, seeded retries, leases) carries them.
    let partition = || {
        NetFaultPlan::none().with_partition(
            None::<WorkerId>,
            SimTime::from_secs(1),
            SimTime::from_secs(4),
        )
    };
    // Reference run (no master faults): find the first Assigned entry
    // committed inside the partition window. Without crashes every
    // append commits, so the entry's 1-based log position is its
    // append index; crashing one append later kills the leader with
    // that Assign still unacked.
    let reference = run_sim(3, Faults::new().net(partition()));
    let first_unacked = reference
        .sched_log
        .events()
        .iter()
        .position(|ev| {
            matches!(ev.kind, SchedEventKind::Assigned) && ev.at >= SimTime::from_secs(1)
        })
        .expect("an assignment decided inside the partition window");
    let crash_index = first_unacked as u64 + 2;

    let out = run_sim(
        3,
        Faults::new()
            .net(partition())
            .master(MasterFaultPlan::new().crash_at(crash_index)),
    );
    assert_eq!(out.record.jobs_completed, 12, "every job completes");
    assert_eq!(out.sched_log.failovers(), 1, "exactly one takeover");
    let elections: Vec<u32> = out
        .sched_log
        .events()
        .iter()
        .filter_map(|ev| match ev.kind {
            SchedEventKind::LeaderElected { term } => Some(term),
            _ => None,
        })
        .collect();
    assert_eq!(elections, vec![2], "a single election to term 2");
    let violations = check_log(&out.sched_log, oracle_options(3));
    assert!(
        violations.is_empty(),
        "violations at crash index {crash_index}: {violations:?}"
    );
    assert_eq!(
        out.sched_log.completions(),
        12,
        "exactly-once effects across the takeover"
    );
}

/// The threaded runtime survives the same pinned crash index: a
/// standby takes over mid-run and every job still completes exactly
/// once with zero violations.
#[test]
fn threaded_failover_completes_exactly_once() {
    let spec = RunSpec::builder()
        .workers(specs(3))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .faults(Faults::new().master(MasterFaultPlan::new().crash_at(25)))
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build();
    let mut session = spec.threaded();
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals = hot_repo_arrivals(task, 12);
    let out = session.run_iteration(&mut wf, &BiddingAllocator::new(), arrivals);
    assert_eq!(out.record.jobs_completed, 12, "every job completes");
    assert_eq!(out.sched_log.failovers(), 1, "the crash fired");
    let violations = check_log(&out.sched_log, oracle_options(3));
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(out.sched_log.completions(), 12);
}
