//! Cross-shard invariants of the sharded multi-master federation:
//! replaying the union of the shard logs equals replaying the merged
//! federation log, every job completes exactly once in exactly one
//! shard (its home, or the recorded spill target), and the elastic
//! membership protocol survives its harshest timings — a drain
//! mid-contest, a removal with an unacked assignment behind a
//! partition, and a join during a partition — on both runtimes with
//! pinned seeds.

use std::collections::BTreeMap;

use crossbid_checker::{check_log, FedScenario, FedSeeds, OracleOptions, Protocol};
use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    Arrival, EngineConfig, Faults, FedRuntimeKind, FederationMutation, JobSpec, MembershipPlan,
    NetFaultPlan, Payload, ResourceRef, RunOutput, RunSpec, Runtime, SchedEventKind, SchedState,
    ShardId, WorkerId, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;
use proptest::prelude::*;

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

/// A scenario shaped like the checker built-ins but with every axis a
/// proptest variable.
fn prop_scenario(shards: usize, jobs: usize, threshold: f64, churn: bool) -> FedScenario {
    FedScenario {
        name: "prop_fed",
        protocol: Protocol::Bidding,
        shards,
        workers_per_shard: 2,
        spill_threshold_secs: threshold,
        gossip_loss: 0.0,
        jobs,
        churn,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The federation's conservation law as a pure fold: replaying the
    /// merged (worker-qualified, time-ordered) log must equal the sum
    /// of replaying each shard's own augmented log — same submissions,
    /// completions and hand-off counters — and every submitted job
    /// must complete exactly once, in its home shard unless a recorded
    /// spill moved it.
    #[test]
    fn union_replay_conserves_and_completes_exactly_once(
        shards in 2usize..5,
        jobs in 4usize..20,
        threshold in 4.0f64..16.0,
        churn in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let sc = prop_scenario(shards, jobs, threshold, churn);
        let out = sc.run(FedRuntimeKind::Sim, FedSeeds::plain(seed), FederationMutation::None);

        prop_assert!(
            check_log(&out.merged, sc.merged_oracle_options()).is_empty(),
            "merged-log violations at seed {seed}"
        );
        for (s, shard) in out.shards.iter().enumerate() {
            prop_assert!(
                check_log(&shard.sched_log, sc.shard_oracle_options()).is_empty(),
                "shard {s} violations at seed {seed}"
            );
        }

        // Union of shard replays == merged replay, counter for counter.
        let merged = SchedState::replay(out.merged.events().iter());
        let union: Vec<SchedState> = out
            .shards
            .iter()
            .map(|o| SchedState::replay(o.sched_log.events().iter()))
            .collect();
        let sum = |f: fn(&SchedState) -> u64| union.iter().map(f).sum::<u64>();
        prop_assert_eq!(merged.submissions, sum(|s| s.submissions));
        prop_assert_eq!(merged.completions, sum(|s| s.completions));
        prop_assert_eq!(merged.spill_outs, sum(|s| s.spill_outs));
        prop_assert_eq!(merged.spill_ins, sum(|s| s.spill_ins));
        prop_assert_eq!(merged.completions, sc.total_jobs());
        prop_assert_eq!(merged.spill_outs, out.spills.len() as u64);
        prop_assert_eq!(merged.spill_ins, out.spills.len() as u64);

        // Exactly once, in exactly one shard: the spill target's if a
        // hand-off was recorded, the home shard's otherwise.
        let spilled_to: BTreeMap<_, _> = out.spills.iter().map(|s| (s.job, s.to)).collect();
        let mut completions: BTreeMap<_, Vec<ShardId>> = BTreeMap::new();
        for ev in out.merged.events() {
            if matches!(ev.kind, SchedEventKind::Completed) {
                let job = ev.job.expect("completions carry a job id");
                let worker = ev.worker.expect("completions carry a worker id");
                completions.entry(job).or_default().push(worker.shard());
            }
        }
        prop_assert_eq!(completions.len() as u64, sc.total_jobs());
        for (job, shards_seen) in completions {
            prop_assert_eq!(
                shards_seen.len(),
                1,
                "job {:?} completed {} times",
                job,
                shards_seen.len()
            );
            let expected = spilled_to.get(&job).copied().unwrap_or_else(|| job.shard());
            prop_assert_eq!(shards_seen[0], expected, "job {:?} completed off-shard", job);
        }
    }
}

// ---------------------------------------------------------------------------
// Membership-churn regressions, pinned seeds, both runtimes.
// ---------------------------------------------------------------------------

fn hot_repo_arrivals(task: crossbid_crossflow::TaskId, n: usize) -> Vec<Arrival> {
    (0..n)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * 0.5),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1),
                    bytes: 100_000_000,
                },
                Payload::Index(i as u64),
            ),
        })
        .collect()
}

/// Run the 12-job hot-repo burst under `faults` on one runtime.
fn run_churned(threaded: bool, workers: usize, faults: Faults) -> RunOutput {
    let spec = RunSpec::builder()
        .workers(specs(workers))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .faults(faults)
        .trace(true)
        .seed(7)
        .time_scale(1e-3)
        .build();
    let mut rt: Box<dyn Runtime> = if threaded {
        Box::new(spec.threaded())
    } else {
        Box::new(spec.sim())
    };
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    rt.run_iteration(
        &mut wf,
        &BiddingAllocator::new(),
        hot_repo_arrivals(task, 12),
    )
}

fn oracle_options(workers: usize) -> OracleOptions {
    OracleOptions {
        expect_all_complete: true,
        strict_reoffer: false,
        workers: Some(workers as u32),
        ..OracleOptions::default()
    }
}

/// Worker 0 is told to drain at t=2 s — contests are still being
/// opened for the burst (arrivals run to t=5.5 s) and the worker holds
/// a ~10 s fetch. It must finish what it has, take nothing new after
/// the drain notice, and every job must still complete exactly once.
#[test]
fn drain_mid_contest_completes_exactly_once_and_stops_new_placements() {
    for threaded in [false, true] {
        let out = run_churned(
            threaded,
            3,
            Faults::new()
                .membership(MembershipPlan::new().drain_at(SimTime::from_secs(2), WorkerId(0))),
        );
        let label = if threaded { "threaded" } else { "sim" };
        assert_eq!(
            out.record.jobs_completed, 12,
            "{label}: every job completes"
        );
        assert_eq!(out.sched_log.worker_drains(), 1, "{label}: drain recorded");
        let violations = check_log(&out.sched_log, oracle_options(3));
        assert!(violations.is_empty(), "{label}: {violations:?}");
        let drain_pos = out
            .sched_log
            .events()
            .iter()
            .position(|ev| matches!(ev.kind, SchedEventKind::WorkerDraining))
            .expect("drain event in the log");
        let late_placements = out.sched_log.events()[drain_pos..]
            .iter()
            .filter(|ev| {
                ev.worker == Some(WorkerId(0))
                    && matches!(ev.kind, SchedEventKind::Assigned | SchedEventKind::Offered)
            })
            .count();
        assert_eq!(
            late_placements, 0,
            "{label}: draining worker received new placements"
        );
    }
}

/// Worker 0 is removed at t=2 s while a full partition ([1 s, 4 s))
/// has swallowed the acks of anything assigned to it — the master must
/// reclaim the unacked work and land all of it elsewhere, exactly
/// once.
#[test]
fn remove_with_unacked_assignment_reassigns_exactly_once() {
    for threaded in [false, true] {
        let out = run_churned(
            threaded,
            3,
            Faults::new()
                .net(NetFaultPlan::none().with_partition(
                    None::<WorkerId>,
                    SimTime::from_secs(1),
                    SimTime::from_secs(4),
                ))
                .membership(MembershipPlan::new().remove_at(SimTime::from_secs(2), WorkerId(0))),
        );
        let label = if threaded { "threaded" } else { "sim" };
        assert_eq!(
            out.record.jobs_completed, 12,
            "{label}: every job completes"
        );
        assert_eq!(
            out.sched_log.worker_removals(),
            1,
            "{label}: removal recorded"
        );
        let violations = check_log(&out.sched_log, oracle_options(3));
        assert!(violations.is_empty(), "{label}: {violations:?}");
        let removal_pos = out
            .sched_log
            .events()
            .iter()
            .position(|ev| matches!(ev.kind, SchedEventKind::WorkerRemoved))
            .expect("removal event in the log");
        assert!(
            out.sched_log.events()[removal_pos..]
                .iter()
                .all(|ev| !(ev.worker == Some(WorkerId(0))
                    && matches!(ev.kind, SchedEventKind::Completed))),
            "{label}: a removed worker completed work"
        );
    }
}

/// Worker 2 joins at t=2 s *inside* a full partition ([1 s, 6 s)): the
/// join must survive the outage, and once healed the newcomer must
/// shoulder part of the backlog — with exactly-once effects throughout.
#[test]
fn join_during_partition_lands_work_on_the_newcomer() {
    for threaded in [false, true] {
        let out = run_churned(
            threaded,
            3,
            Faults::new()
                .net(NetFaultPlan::none().with_partition(
                    None::<WorkerId>,
                    SimTime::from_secs(1),
                    SimTime::from_secs(6),
                ))
                .membership(MembershipPlan::new().join_at(SimTime::from_secs(2), WorkerId(2))),
        );
        let label = if threaded { "threaded" } else { "sim" };
        assert_eq!(
            out.record.jobs_completed, 12,
            "{label}: every job completes"
        );
        assert_eq!(out.sched_log.worker_joins(), 1, "{label}: join recorded");
        let violations = check_log(&out.sched_log, oracle_options(3));
        assert!(violations.is_empty(), "{label}: {violations:?}");
        let newcomer_completions = out
            .sched_log
            .events()
            .iter()
            .filter(|ev| {
                ev.worker == Some(WorkerId(2)) && matches!(ev.kind, SchedEventKind::Completed)
            })
            .count();
        assert!(
            newcomer_completions > 0,
            "{label}: the joined worker never completed anything"
        );
    }
}
