//! Golden-file test pinning the `repro trace` phase-breakdown table.
//!
//! The table is the artifact humans read to see where job latency
//! goes (queue wait / transfer / processing), so its *shape* — title,
//! column set, row count per iteration — is a contract. Digits are
//! normalized to `#` before comparison: the sim run is deterministic,
//! but pinning magnitudes rather than exact values lets engine tuning
//! move numbers within an order of magnitude without churning the
//! golden file.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p crossbid-integration --test phase_table_golden
//! ```

use crossbid_experiments::trace_run::{self, RuntimeChoice, TraceRunConfig};
use crossbid_metrics::SchedulerKind;
use crossbid_workload::{JobConfig, WorkerConfig};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/phase_table.txt");
const GOLDEN: &str = include_str!("../golden/phase_table.txt");

/// Every ASCII digit becomes `#`, so only layout and magnitude are
/// pinned.
fn normalize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_digit() { '#' } else { c })
        .collect()
}

#[test]
fn phase_table_matches_golden() {
    let cfg = TraceRunConfig {
        runtime: RuntimeChoice::Sim,
        scheduler: SchedulerKind::Bidding,
        worker_config: WorkerConfig::AllEqual,
        job_config: JobConfig::Pct80Large,
        n_jobs: 12,
        iterations: 2,
        seed: 0xC0FFEE,
    };
    let runs = trace_run::run(&cfg).expect("sim trace run");
    let table = trace_run::render_phase_table(&runs);
    let actual = normalize(&table);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("bless golden file");
        return;
    }
    assert_eq!(
        actual, GOLDEN,
        "phase table diverged from tests/golden/phase_table.txt;\n\
         re-bless with BLESS_GOLDEN=1 if the change is intentional.\n\
         rendered table:\n{table}"
    );
}
