//! Cross-validation of the two runtimes: the simulated engine and the
//! real-threaded runtime execute the same protocol, so on the same
//! noise-free workload their *structural* metrics (completions, cache
//! behaviour, data load) should agree closely, and their makespans
//! should be in the same ballpark (the threaded runtime adds real
//! thread jitter).
//!
//! Written once against the [`Runtime`] trait: every scenario builds
//! one [`RunSpec`] and executes it on both runtimes.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    Allocator, Arrival, BaselineAllocator, EngineConfig, JobSpec, Payload, ResourceRef, RunOutput,
    RunSpec, Runtime, TaskId, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn parity_spec(n_workers: usize) -> RunSpec {
    RunSpec::builder()
        .workers(specs(n_workers))
        .engine(EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            ..EngineConfig::default()
        })
        .speed_learning(false)
        .trace(true)
        .seed(5)
        .time_scale(1e-4)
        .build()
}

/// Both runtimes over the same spec, labelled.
fn both_runtimes(spec: &RunSpec) -> Vec<Box<dyn Runtime>> {
    vec![Box::new(spec.sim()), Box::new(spec.threaded())]
}

fn arrivals(task: TaskId) -> Vec<Arrival> {
    // Sparse arrivals: queueing effects are minimal, so both runtimes
    // should route nearly identically.
    (0..12)
        .map(|i| Arrival {
            at: SimTime::from_secs(i * 30),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(i % 4),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect()
}

fn run_once(rt: &mut dyn Runtime, allocator: &dyn Allocator) -> RunOutput {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let jobs = arrivals(task);
    rt.run_iteration(&mut wf, allocator, jobs)
}

#[test]
fn runtimes_agree_on_structural_metrics() {
    for bidding in [true, false] {
        let allocator: Box<dyn Allocator> = if bidding {
            Box::new(BiddingAllocator::new())
        } else {
            Box::new(BaselineAllocator)
        };
        let spec = parity_spec(3);
        let sim = run_once(&mut spec.sim(), allocator.as_ref()).record;
        let thr = run_once(&mut spec.threaded(), allocator.as_ref()).record;
        let label = if bidding { "bidding" } else { "baseline" };
        assert_eq!(sim.jobs_completed, thr.jobs_completed, "{label}");
        assert_eq!(
            sim.cache_hits + sim.cache_misses,
            thr.cache_hits + thr.cache_misses,
            "{label}: lookup totals"
        );
        // Misses may differ by a few due to real-time races, but the
        // locality picture must be the same order: 4 distinct repos,
        // at most a dozen fetches.
        assert!(
            (sim.cache_misses as i64 - thr.cache_misses as i64).abs() <= 4,
            "{label}: sim {} vs threaded {} misses",
            sim.cache_misses,
            thr.cache_misses
        );
        // Makespans in the same ballpark (arrival-dominated ≈ 340 s).
        let ratio = thr.makespan_secs / sim.makespan_secs;
        assert!(
            (0.6..1.7).contains(&ratio),
            "{label}: sim {:.1}s vs threaded {:.1}s",
            sim.makespan_secs,
            thr.makespan_secs
        );
    }
}

#[test]
fn sched_logs_share_invariants_across_runtimes() {
    // Both runtimes emit the same SchedLog shape; on the same fault-
    // free bidding workload the control-plane invariants must match.
    let spec = parity_spec(3);
    for mut rt in both_runtimes(&spec) {
        let out = run_once(rt.as_mut(), &BiddingAllocator::new());
        let label = rt.name();
        assert_eq!(out.record.jobs_completed, 12, "{label}");
        let log = &out.sched_log;
        // Every job runs exactly one contest and lands exactly once.
        assert_eq!(log.contests_opened(), 12, "{label}: contests");
        assert_eq!(log.assignments(), 12, "{label}: assignments");
        // No faults were injected.
        assert_eq!(log.crashes(), 0, "{label}");
        assert_eq!(log.recoveries(), 0, "{label}");
        assert_eq!(log.redistributions(), 0, "{label}");
        assert!(log.no_assignments_to_detected_dead(2.0), "{label}");
    }
}

#[test]
fn registries_agree_on_protocol_counters() {
    // The typed metrics layer must tell the same structural story on
    // both runtimes: same contest count, same assignment count, no
    // redistributions, and instrument cardinalities consistent with
    // the record.
    let spec = parity_spec(3);
    let mut snaps = Vec::new();
    for mut rt in both_runtimes(&spec) {
        let out = run_once(rt.as_mut(), &BiddingAllocator::new());
        let snap = out.metrics;
        let label = rt.name();
        assert_eq!(snap.counter("jobs/completed"), 12, "{label}");
        assert_eq!(
            snap.counter("cache/misses"),
            out.record.cache_misses,
            "{label}: registry and record disagree on misses"
        );
        // Phase histograms: every completed job waited and processed;
        // every miss fetched.
        let wait = snap.histogram("job/queue_wait_secs").expect(label);
        assert_eq!(wait.count, 12, "{label}: queue_wait count");
        let proc = snap.histogram("job/proc_secs").expect(label);
        assert_eq!(proc.count, 12, "{label}: proc count");
        let fetch = snap.histogram("job/fetch_secs").expect(label);
        assert_eq!(
            fetch.count, out.record.cache_misses,
            "{label}: one fetch sample per miss"
        );
        snaps.push((label, snap));
    }
    let (_, sim) = &snaps[0];
    let (_, thr) = &snaps[1];
    for key in ["contests/opened", "assignments", "jobs/redistributed"] {
        assert_eq!(
            sim.counter(key),
            thr.counter(key),
            "runtimes disagree on {key}"
        );
    }
}

#[test]
fn baseline_reoffer_prefers_a_different_idle_worker() {
    // Regression: a rejected job used to bounce straight back to the
    // rejector (who must accept the second time under reject-once),
    // so a cold worker could slurp a job whose data another idle
    // worker already held. With the fix, the re-offer goes to the
    // other idle worker first, and repeat jobs on a hot repo always
    // land on the warm worker: exactly one fetch, ever.
    //
    // Both runtimes now draw from one shared `IdlePool`, so the
    // re-offer tie-break (prefer another worker; skipped rejector
    // keeps its seniority) must hold identically on each — the two
    // masters used to duplicate this logic with subtly different pick
    // rules, and drifted apart under duplicated Idle messages.
    let spec = parity_spec(2);
    for mut rt in both_runtimes(&spec) {
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        // Same repo throughout, spaced wider than fetch + scan so both
        // workers are idle when each job arrives.
        let jobs: Vec<Arrival> = (0..6)
            .map(|i| Arrival {
                at: SimTime::from_secs(i * 40),
                spec: JobSpec::scanning(
                    task,
                    ResourceRef {
                        id: ObjectId(1),
                        bytes: 100_000_000,
                    },
                    Payload::Index(i),
                ),
            })
            .collect();
        let r = rt.run_iteration(&mut wf, &BaselineAllocator, jobs).record;
        let label = rt.name();
        assert_eq!(r.jobs_completed, 6, "{label}");
        assert_eq!(
            r.cache_misses, 1,
            "{label}: after the first fetch every re-offer must find the warm worker"
        );
        assert_eq!(r.cache_hits, 5, "{label}");
    }
}

#[test]
fn threaded_session_keeps_caches_warm_across_iterations() {
    // The ThreadedSession mirrors the sim Session's §6.3.1 semantics:
    // stores persist, so a second identical iteration re-fetches
    // nothing it already holds.
    let spec = parity_spec(3);
    for mut rt in both_runtimes(&spec) {
        let alloc = BiddingAllocator::new();
        let cold = run_once(rt.as_mut(), &alloc).record;
        let warm = run_once(rt.as_mut(), &alloc).record;
        assert_eq!(rt.iterations_run(), 2, "{}", rt.name());
        assert_eq!(warm.iteration, 1, "{}", rt.name());
        assert!(
            warm.cache_misses <= cold.cache_misses,
            "{}: warm iteration regressed ({} -> {})",
            rt.name(),
            cold.cache_misses,
            warm.cache_misses
        );
        assert!(
            warm.cache_misses <= 1,
            "{}: nearly everything should be cached on iteration 2, got {} misses",
            rt.name(),
            warm.cache_misses
        );
    }
}
