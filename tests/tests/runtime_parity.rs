//! Cross-validation of the two runtimes: the simulated engine and the
//! real-threaded runtime execute the same protocol, so on the same
//! noise-free workload their *structural* metrics (completions, cache
//! behaviour, data load) should agree closely, and their makespans
//! should be in the same ballpark (the threaded runtime adds real
//! thread jitter).

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_threaded, run_threaded_traced, run_workflow, Arrival, BaselineAllocator, Cluster,
    EngineConfig, JobSpec, Payload, ResourceRef, RunMeta, TaskId, ThreadedConfig,
    ThreadedScheduler, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

fn specs() -> Vec<WorkerSpec> {
    (0..3)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn arrivals(task: TaskId) -> Vec<Arrival> {
    // Sparse arrivals: queueing effects are minimal, so both runtimes
    // should route nearly identically.
    (0..12)
        .map(|i| Arrival {
            at: SimTime::from_secs(i * 30),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(i % 4),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect()
}

fn sim_record(bidding: bool) -> crossbid_metrics::RunRecord {
    let cfg = EngineConfig {
        control: ControlPlane::instant(),
        data_latency: SimDuration::ZERO,
        noise: NoiseModel::None,
        ..EngineConfig::default()
    };
    let mut cluster = Cluster::new(&specs(), &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let meta = RunMeta {
        seed: 5,
        ..RunMeta::default()
    };
    if bidding {
        run_workflow(
            &mut cluster,
            &mut wf,
            &BiddingAllocator::new(),
            arrivals(task),
            &cfg,
            &meta,
        )
        .record
    } else {
        run_workflow(
            &mut cluster,
            &mut wf,
            &BaselineAllocator,
            arrivals(task),
            &cfg,
            &meta,
        )
        .record
    }
}

fn threaded_record(bidding: bool) -> crossbid_metrics::RunRecord {
    let cfg = ThreadedConfig {
        time_scale: 1e-4,
        noise: NoiseModel::None,
        speed_learning: false,
        scheduler: if bidding {
            ThreadedScheduler::Bidding { window_secs: 1.0 }
        } else {
            ThreadedScheduler::Baseline
        },
        seed: 5,
        ..ThreadedConfig::default()
    };
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let meta = RunMeta {
        seed: 5,
        ..RunMeta::default()
    };
    run_threaded(&specs(), &cfg, &mut wf, arrivals(task), &meta)
}

#[test]
fn runtimes_agree_on_structural_metrics() {
    for bidding in [true, false] {
        let sim = sim_record(bidding);
        let thr = threaded_record(bidding);
        let label = if bidding { "bidding" } else { "baseline" };
        assert_eq!(sim.jobs_completed, thr.jobs_completed, "{label}");
        assert_eq!(
            sim.cache_hits + sim.cache_misses,
            thr.cache_hits + thr.cache_misses,
            "{label}: lookup totals"
        );
        // Misses may differ by a few due to real-time races, but the
        // locality picture must be the same order: 4 distinct repos,
        // at most a dozen fetches.
        assert!(
            (sim.cache_misses as i64 - thr.cache_misses as i64).abs() <= 4,
            "{label}: sim {} vs threaded {} misses",
            sim.cache_misses,
            thr.cache_misses
        );
        // Makespans in the same ballpark (arrival-dominated ≈ 340 s).
        let ratio = thr.makespan_secs / sim.makespan_secs;
        assert!(
            (0.6..1.7).contains(&ratio),
            "{label}: sim {:.1}s vs threaded {:.1}s",
            sim.makespan_secs,
            thr.makespan_secs
        );
    }
}

#[test]
fn sched_logs_share_invariants_across_runtimes() {
    // Both runtimes emit the same SchedLog shape; on the same fault-
    // free bidding workload the control-plane invariants must match.
    let cfg = EngineConfig {
        control: ControlPlane::instant(),
        data_latency: SimDuration::ZERO,
        noise: NoiseModel::None,
        trace: true,
        ..EngineConfig::default()
    };
    let mut cluster = Cluster::new(&specs(), &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let sim = run_workflow(
        &mut cluster,
        &mut wf,
        &BiddingAllocator::new(),
        arrivals(task),
        &cfg,
        &RunMeta::default(),
    );

    let tcfg = ThreadedConfig {
        time_scale: 1e-4,
        noise: NoiseModel::None,
        speed_learning: false,
        scheduler: ThreadedScheduler::Bidding { window_secs: 1.0 },
        seed: 5,
        ..ThreadedConfig::default()
    };
    let mut wf2 = Workflow::new();
    let task2 = wf2.add_sink("scan");
    let (thr, tlog) = run_threaded_traced(
        &specs(),
        &tcfg,
        &mut wf2,
        arrivals(task2),
        &RunMeta::default(),
    );

    for (label, log, completed) in [
        ("sim", &sim.sched_log, sim.record.jobs_completed),
        ("threaded", &tlog, thr.jobs_completed),
    ] {
        assert_eq!(completed, 12, "{label}");
        // Every job runs exactly one contest and lands exactly once.
        assert_eq!(log.contests_opened(), 12, "{label}: contests");
        assert_eq!(log.assignments(), 12, "{label}: assignments");
        // No faults were injected.
        assert_eq!(log.crashes(), 0, "{label}");
        assert_eq!(log.recoveries(), 0, "{label}");
        assert_eq!(log.redistributions(), 0, "{label}");
        assert!(log.no_assignments_to_detected_dead(2.0), "{label}");
    }
}

#[test]
fn baseline_reoffer_prefers_a_different_idle_worker() {
    // Regression: a rejected job used to bounce straight back to the
    // rejector (who must accept the second time under reject-once),
    // so a cold worker could slurp a job whose data another idle
    // worker already held. With the fix, the re-offer goes to the
    // other idle worker first, and repeat jobs on a hot repo always
    // land on the warm worker: exactly one fetch, ever.
    let cfg = ThreadedConfig {
        time_scale: 1e-4,
        noise: NoiseModel::None,
        speed_learning: false,
        scheduler: ThreadedScheduler::Baseline,
        seed: 5,
        ..ThreadedConfig::default()
    };
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    // Same repo throughout, spaced wider than fetch + scan so both
    // workers are idle when each job arrives.
    let jobs: Vec<Arrival> = (0..6)
        .map(|i| Arrival {
            at: SimTime::from_secs(i * 40),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(1),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect();
    let r = run_threaded(&specs()[..2], &cfg, &mut wf, jobs, &RunMeta::default());
    assert_eq!(r.jobs_completed, 6);
    assert_eq!(
        r.cache_misses, 1,
        "after the first fetch every re-offer must find the warm worker"
    );
    assert_eq!(r.cache_hits, 5);
}
