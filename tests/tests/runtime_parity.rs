//! Cross-validation of the two runtimes: the simulated engine and the
//! real-threaded runtime execute the same protocol, so on the same
//! noise-free workload their *structural* metrics (completions, cache
//! behaviour, data load) should agree closely, and their makespans
//! should be in the same ballpark (the threaded runtime adds real
//! thread jitter).

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_threaded, run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec,
    Payload, ResourceRef, RunMeta, TaskId, ThreadedConfig, ThreadedScheduler, WorkerSpec, Workflow,
};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

fn specs() -> Vec<WorkerSpec> {
    (0..3)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn arrivals(task: TaskId) -> Vec<Arrival> {
    // Sparse arrivals: queueing effects are minimal, so both runtimes
    // should route nearly identically.
    (0..12)
        .map(|i| Arrival {
            at: SimTime::from_secs(i * 30),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(i % 4),
                    bytes: 100_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect()
}

fn sim_record(bidding: bool) -> crossbid_metrics::RunRecord {
    let cfg = EngineConfig {
        control: ControlPlane::instant(),
        data_latency: SimDuration::ZERO,
        noise: NoiseModel::None,
        ..EngineConfig::default()
    };
    let mut cluster = Cluster::new(&specs(), &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let meta = RunMeta {
        seed: 5,
        ..RunMeta::default()
    };
    if bidding {
        run_workflow(
            &mut cluster,
            &mut wf,
            &BiddingAllocator::new(),
            arrivals(task),
            &cfg,
            &meta,
        )
        .record
    } else {
        run_workflow(
            &mut cluster,
            &mut wf,
            &BaselineAllocator,
            arrivals(task),
            &cfg,
            &meta,
        )
        .record
    }
}

fn threaded_record(bidding: bool) -> crossbid_metrics::RunRecord {
    let cfg = ThreadedConfig {
        time_scale: 1e-4,
        noise: NoiseModel::None,
        speed_learning: false,
        scheduler: if bidding {
            ThreadedScheduler::Bidding { window_secs: 1.0 }
        } else {
            ThreadedScheduler::Baseline
        },
        seed: 5,
        ..ThreadedConfig::default()
    };
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let meta = RunMeta {
        seed: 5,
        ..RunMeta::default()
    };
    run_threaded(&specs(), &cfg, &mut wf, arrivals(task), &meta)
}

#[test]
fn runtimes_agree_on_structural_metrics() {
    for bidding in [true, false] {
        let sim = sim_record(bidding);
        let thr = threaded_record(bidding);
        let label = if bidding { "bidding" } else { "baseline" };
        assert_eq!(sim.jobs_completed, thr.jobs_completed, "{label}");
        assert_eq!(
            sim.cache_hits + sim.cache_misses,
            thr.cache_hits + thr.cache_misses,
            "{label}: lookup totals"
        );
        // Misses may differ by a few due to real-time races, but the
        // locality picture must be the same order: 4 distinct repos,
        // at most a dozen fetches.
        assert!(
            (sim.cache_misses as i64 - thr.cache_misses as i64).abs() <= 4,
            "{label}: sim {} vs threaded {} misses",
            sim.cache_misses,
            thr.cache_misses
        );
        // Makespans in the same ballpark (arrival-dominated ≈ 340 s).
        let ratio = thr.makespan_secs / sim.makespan_secs;
        assert!(
            (0.6..1.7).contains(&ratio),
            "{label}: sim {:.1}s vs threaded {:.1}s",
            sim.makespan_secs,
            thr.makespan_secs
        );
    }
}
