//! Example applications for the `crossbid` workspace.
//!
//! Each binary in `src/bin` is a self-contained walk-through of one
//! aspect of the system:
//!
//! * `quickstart` — build a tiny workflow, run it under the Bidding
//!   Scheduler, read the metrics.
//! * `msr_cooccurrence` — the paper's motivating application: mine a
//!   synthetic GitHub for NPM-library co-occurrences (Figure 1's
//!   pipeline) and print the top pairs as CSV.
//! * `scheduler_shootout` — run all seven schedulers on the same
//!   workload and compare the §6.1 metrics.
//! * `heterogeneous_cluster` — show how the Bidding Scheduler routes
//!   around a slow worker while the Baseline drowns it.
//! * `threaded_runtime` — the real-threads runtime end to end, with
//!   §6.4 speed learning.
//!
//! Run any of them with `cargo run -p crossbid-examples --bin <name>`.

/// One-line metric rendering shared by the example binaries.
pub fn metric_line(label: &str, r: &crossbid_metrics::RunRecord) -> String {
    format!(
        "{label:<16} time={:8.1}s  misses={:4}  hits={:4}  data={:9.1} MB  msgs={:5}",
        r.makespan_secs, r.cache_misses, r.cache_hits, r.data_load_mb, r.control_messages
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn metric_line_formats() {
        let r = crossbid_metrics::RunRecord {
            scheduler: crossbid_metrics::SchedulerKind::Bidding,
            worker_config: "x".into(),
            job_config: "y".into(),
            iteration: 0,
            seed: 0,
            makespan_secs: 12.5,
            data_load_mb: 100.0,
            cache_misses: 3,
            cache_hits: 7,
            evictions: 0,
            jobs_completed: 10,
            control_messages: 42,
            contests_timed_out: 0,
            contests_fallback: 0,
            mean_queue_wait_secs: 0.0,
            worker_busy_frac: vec![],
            jobs_redistributed: 0,
            worker_crashes: 0,
            recovery_secs: 0.0,
        };
        let s = super::metric_line("demo", &r);
        assert!(s.contains("demo"));
        assert!(s.contains("misses="));
    }
}
