//! The paper's motivating application (§2, Figure 1): mine a
//! synthetic GitHub for co-occurrences of popular NPM libraries in
//! favoured large-scale repositories, and print the top pairs.

use std::sync::Arc;

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{run_workflow, Cluster, EngineConfig, RunMeta, Workflow};
use crossbid_examples::metric_line;
use crossbid_msr::github::GitHubParams;
use crossbid_msr::{build_pipeline, library_arrivals, SyntheticGitHub};
use crossbid_workload::WorkerConfig;

fn main() {
    // A universe of 20 large repositories and 40 popular libraries.
    let params = GitHubParams {
        n_repos: 20,
        n_libraries: 40,
        mean_deps: 8.0,
        popularity_skew: 0.9,
    };
    let github = Arc::new(SyntheticGitHub::generate(2024, &params));
    println!(
        "synthetic GitHub: {} repos ({} GB total), {} libraries",
        github.len(),
        github.repos().iter().map(|r| r.repo.bytes).sum::<u64>() as f64 / 1e9,
        github.library_count()
    );

    // Build the Figure 1 pipeline: search → clone+scan → count.
    let mut workflow = Workflow::new();
    let pipeline = build_pipeline(&mut workflow, Arc::clone(&github), 7, 0.1);
    let arrivals = library_arrivals(&pipeline, params.n_libraries, 4.0);

    // Run it on the paper's 5-worker cluster under the Bidding
    // Scheduler.
    let cfg = EngineConfig::default();
    let mut cluster = Cluster::new(&WorkerConfig::AllEqual.paper_specs(), &cfg);
    let meta = RunMeta {
        worker_config: "all-equal".into(),
        job_config: "msr".into(),
        seed: 7,
        ..RunMeta::default()
    };
    let out = run_workflow(
        &mut cluster,
        &mut workflow,
        &BiddingAllocator::new(),
        arrivals,
        &cfg,
        &meta,
    );
    println!("{}\n", metric_line("msr/bidding", &out.record));

    // Step 4 of the protocol: "Calculate the number of times libraries
    // appear together and store the results in a CSV file."
    let matrix = pipeline.matrix(&mut workflow);
    println!(
        "confirmed (library, repo) pairs: {}",
        pipeline.confirmed(&mut workflow)
    );
    println!("top 10 co-occurring library pairs:");
    println!("lib_a,lib_b,count");
    for ((a, b), c) in matrix.top(10) {
        println!("{},{},{}", a.0, b.0, c);
    }
}
