//! Run every implemented scheduler — the paper's two plus the related
//! work of §3 — on the identical workload and compare the §6.1
//! metrics. The workload is the paper's `80pct_large` (repetitive,
//! mostly large repositories) on the `one-slow` cluster: the setting
//! where allocation quality matters most.

use crossbid_crossflow::{RunSpec, Workflow};
use crossbid_examples::metric_line;
use crossbid_experiments_shim::*;

/// Tiny local shim so the example only depends on public crates.
mod crossbid_experiments_shim {
    pub use crossbid_baselines::{
        BarAllocator, DelayAllocator, MatchmakingAllocator, RandomAllocator,
        SparkLocalityAllocator, SparkStaticAllocator,
    };
    pub use crossbid_core::BiddingAllocator;
    pub use crossbid_crossflow::{Allocator, BaselineAllocator};
    pub use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};
}

fn main() {
    let worker_cfg = WorkerConfig::OneSlow;
    let job_cfg = JobConfig::Pct80Large;
    let seed = 99;
    println!(
        "workload: {job_cfg} on {worker_cfg} ({} workers, {} jobs, 2 iterations)\n",
        WorkerConfig::PAPER_WORKER_COUNT,
        60
    );

    let allocators: Vec<(&str, Box<dyn Allocator>)> = vec![
        ("bidding", Box::new(BiddingAllocator::new())),
        ("baseline", Box::new(BaselineAllocator)),
        ("spark-static", Box::new(SparkStaticAllocator::default())),
        (
            "spark-locality",
            Box::new(SparkLocalityAllocator::default()),
        ),
        ("matchmaking", Box::new(MatchmakingAllocator::default())),
        ("delay", Box::new(DelayAllocator::default())),
        ("bar", Box::new(BarAllocator::default())),
        ("random", Box::new(RandomAllocator)),
    ];

    for (label, alloc) in &allocators {
        // Fresh cluster per scheduler; identical workload seed.
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let stream = job_cfg.generate(seed, 60, task, &ArrivalProcess::evaluation_default());
        let mut session = RunSpec::builder()
            .workers(worker_cfg.paper_specs())
            .names(worker_cfg.name(), job_cfg.name())
            .seed(seed)
            .build()
            .sim();
        // Two iterations: the second shows warm-cache behaviour.
        let records =
            session.run_iterations(&mut wf, alloc.as_ref(), 2, |_| stream.arrivals.clone());
        let last = records.last().expect("two iterations");
        println!("{}", metric_line(label, last));
    }
    println!("\n(Second-iteration metrics shown: caches are warm, so the gap\n is allocation quality, not cold-start downloads.)");
}
