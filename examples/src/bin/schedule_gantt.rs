//! Visualize the schedules the two allocators produce on the same
//! workload, as text Gantt charts (`~` = downloading, `#` =
//! processing, `.` = idle).
//!
//! On the `one-slow` cluster you can watch the Baseline hand the slow
//! worker (bottom row) long fetch bars while bidding keeps it idle.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, BaselineAllocator, Cluster, EngineConfig, RunMeta, Workflow,
};
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

fn main() {
    let wc = WorkerConfig::OneSlow;
    let jc = JobConfig::AllDiffLarge;
    let seed = 31;
    for (label, alloc) in [
        (
            "bidding",
            &BiddingAllocator::new() as &dyn crossbid_crossflow::Allocator,
        ),
        ("baseline", &BaselineAllocator),
    ] {
        let cfg = EngineConfig {
            trace: true,
            ..EngineConfig::default()
        };
        let mut cluster = Cluster::new(&wc.paper_specs(), &cfg);
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let stream = jc.generate(seed, 25, task, &ArrivalProcess::evaluation_default());
        let meta = RunMeta {
            worker_config: wc.name().into(),
            job_config: jc.name().into(),
            seed,
            ..RunMeta::default()
        };
        let out = run_workflow(&mut cluster, &mut wf, alloc, stream.arrivals, &cfg, &meta);
        let (wait, fetch, proc) = out.trace.phase_stats();
        println!(
            "== {label}: makespan {:.0}s | mean wait {:.1}s, fetch {:.1}s, proc {:.1}s ==",
            out.record.makespan_secs,
            wait.mean(),
            fetch.mean(),
            proc.mean()
        );
        print!("{}", out.trace.gantt(5, 100));
        println!("(w4 is the slow worker)\n");
    }
}
