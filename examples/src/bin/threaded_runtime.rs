//! The real-threaded runtime end to end (the paper's §6.4
//! "non-simulated" configuration): one OS thread pair per worker,
//! crossbeam channels as the messaging fabric, scaled virtual time,
//! and workers learning their speeds from observed transfers.

use std::sync::Arc;

use crossbid_crossflow::{
    run_threaded_output, RunMeta, ThreadedConfig, ThreadedScheduler, Workflow,
};
use crossbid_examples::metric_line;
use crossbid_msr::github::GitHubParams;
use crossbid_msr::{build_pipeline, library_arrivals, SyntheticGitHub};
use crossbid_workload::WorkerConfig;

fn main() {
    let params = GitHubParams {
        n_repos: 15,
        n_libraries: 30,
        mean_deps: 6.0,
        popularity_skew: 0.9,
    };
    let github = Arc::new(SyntheticGitHub::generate(11, &params));

    for (label, scheduler) in [
        ("bidding", ThreadedScheduler::Bidding { window_secs: 1.0 }),
        ("baseline", ThreadedScheduler::Baseline),
    ] {
        let mut wf = Workflow::new();
        let pipe = build_pipeline(&mut wf, Arc::clone(&github), 11, 0.1);
        let arrivals = library_arrivals(&pipe, params.n_libraries, 10.0);
        let cfg = ThreadedConfig {
            // 1 virtual second = 0.1 ms real: a ~2500 s run finishes in
            // ~0.3 s of wall-clock time.
            time_scale: 1e-4,
            speed_learning: true,
            scheduler,
            seed: 3,
            ..ThreadedConfig::default()
        };
        let specs = WorkerConfig::AllEqual.paper_specs();
        let meta = RunMeta {
            worker_config: "all-equal".into(),
            job_config: "msr-threaded".into(),
            seed: 3,
            ..RunMeta::default()
        };
        let t0 = std::time::Instant::now();
        let record = run_threaded_output(&specs, &cfg, &mut wf, arrivals, &meta).record;
        println!(
            "{}   (virtual; {:.2}s real, {} jobs)",
            metric_line(label, &record),
            t0.elapsed().as_secs_f64(),
            record.jobs_completed
        );
    }
    println!("\n(Real threads, real races: repeated runs will differ slightly —\n that nondeterminism is the point of the non-simulated experiment.)");
}
