//! Heterogeneity demo: what happens to a severely slow worker under
//! each scheduler.
//!
//! The paper (§5): the Bidding Scheduler "enables the master to
//! prioritize workers based on their capabilities, avoiding the
//! prolongation of execution due to slower nodes carrying excessive
//! workloads". This example prints each worker's busy fraction and
//! cached-object count so you can watch the slow node being avoided.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{run_workflow, Cluster, EngineConfig, RunMeta, WorkerId, Workflow};
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

fn main() {
    let worker_cfg = WorkerConfig::FastSlow; // w0 fast, w4 slow
    let job_cfg = JobConfig::AllDiffLarge;
    let seed = 5;

    for (label, alloc) in [
        (
            "bidding",
            &BiddingAllocator::new() as &dyn crossbid_crossflow::Allocator,
        ),
        ("baseline", &crossbid_crossflow::BaselineAllocator),
        (
            "spark-static",
            &crossbid_baselines::SparkStaticAllocator::default(),
        ),
    ] {
        let cfg = EngineConfig::default();
        let specs = worker_cfg.paper_specs();
        let mut cluster = Cluster::new(&specs, &cfg);
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let stream = job_cfg.generate(seed, 50, task, &ArrivalProcess::evaluation_default());
        let meta = RunMeta {
            worker_config: worker_cfg.name().into(),
            job_config: job_cfg.name().into(),
            seed,
            ..RunMeta::default()
        };
        let out = run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            stream.arrivals.clone(),
            &cfg,
            &meta,
        );
        let r = &out.record;
        println!(
            "\n== {label}: makespan {:.0}s, {} misses, {:.0} MB ==",
            r.makespan_secs, r.cache_misses, r.data_load_mb
        );
        for (i, spec) in specs.iter().enumerate() {
            let node = cluster.node(WorkerId(i as u32));
            println!(
                "  {:>14}  net {:>6.1} MB/s   busy {:>5.1}%   cached {:>2} repos",
                spec.name,
                spec.net.as_mb_per_sec(),
                r.worker_busy_frac[i] * 100.0,
                node.cached_objects(),
            );
        }
    }
    println!(
        "\n(Under bidding the slow node stays near-idle; under spark-static\n it gets an equal share of large clones and drags the makespan.)"
    );
}
