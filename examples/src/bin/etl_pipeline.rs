//! A second application on the framework: a three-stage ETL pipeline
//! over warehouse datasets — showing that the Bidding Scheduler is "a
//! general solution that could be integrated with other data
//! processing engines" (§5), not just the MSR miner.
//!
//! ```text
//! extract (pull a dataset partition: the data dependency)
//!   └▶ transform (re-scan the same partition: locality pays twice)
//!        └▶ load (cheap CPU append to the warehouse sink)
//! ```
//!
//! Because `transform` re-reads the partition `extract` just pulled,
//! a locality-aware allocator that sends both stages to the same
//! worker skips the second download entirely.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::task::FnTask;
use crossbid_crossflow::{
    run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, Job, JobSpec, Payload,
    ResourceRef, RunMeta, SinkTask, TaskCtx, TaskId, WorkerSpec, Workflow,
};
use crossbid_examples::metric_line;
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

const N_PARTITIONS: u64 = 24;
const PARTITION_MB: u64 = 250;

fn build_workflow() -> (Workflow, TaskId, TaskId) {
    // Sequential ids: extract=0, transform=1, load=2.
    let transform_id = TaskId(1);
    let load_id = TaskId(2);
    let mut wf = Workflow::new();
    let extract = wf.add_task(
        "extract",
        Box::new(FnTask(
            move |job: &Job, _ctx: &TaskCtx, out: &mut Vec<JobSpec>| {
                // The transform stage re-scans the partition just
                // extracted.
                if let Some(r) = job.resource {
                    out.push(JobSpec::scanning(transform_id, r, job.payload.clone()));
                }
            },
        )),
    );
    let transform = wf.add_task(
        "transform",
        Box::new(FnTask(
            move |job: &Job, _ctx: &TaskCtx, out: &mut Vec<JobSpec>| {
                out.push(JobSpec::compute(load_id, 0.2, job.payload.clone()));
            },
        )),
    );
    let load = wf.add_task("load", Box::new(SinkTask::new()));
    assert_eq!((transform, load), (transform_id, load_id));
    wf.connect(extract, transform);
    wf.connect(transform, load);
    (wf, extract, load)
}

fn main() {
    let specs: Vec<WorkerSpec> = (0..4)
        .map(|i| {
            WorkerSpec::builder(format!("etl-w{i}"))
                .net_mbps(20.0)
                .rw_mbps(100.0)
                .storage_gb(3.0)
                .build()
        })
        .collect();

    for (label, alloc) in [
        (
            "bidding",
            &BiddingAllocator::new() as &dyn crossbid_crossflow::Allocator,
        ),
        ("baseline", &BaselineAllocator),
    ] {
        let (mut wf, extract, load) = build_workflow();
        let arrivals: Vec<Arrival> = (0..N_PARTITIONS)
            .map(|p| Arrival {
                at: SimTime::from_secs(p * 4),
                spec: JobSpec::scanning(
                    extract,
                    ResourceRef {
                        id: ObjectId(p),
                        bytes: PARTITION_MB * 1_000_000,
                    },
                    Payload::Index(p),
                ),
            })
            .collect();
        let cfg = EngineConfig::default();
        let mut cluster = Cluster::new(&specs, &cfg);
        let meta = RunMeta {
            worker_config: "etl-4".into(),
            job_config: "etl-partitions".into(),
            seed: 2,
            ..RunMeta::default()
        };
        let out = run_workflow(&mut cluster, &mut wf, alloc, arrivals, &cfg, &meta);
        let loaded = wf.logic_as::<SinkTask>(load).expect("load sink").len();
        println!(
            "{}   loaded {loaded}/{N_PARTITIONS} partitions",
            metric_line(label, &out.record)
        );
    }
    println!(
        "\n(The transform stage re-reads the partition extract just pulled;\n\
         bidding sends both stages to the same worker, so ~half the\n\
         potential downloads never happen.)"
    );
}
