//! Quickstart: the smallest end-to-end use of the public API.
//!
//! Builds a one-task workflow ("scan a repository"), streams six jobs
//! at a three-worker cluster, runs it once under the Bidding Scheduler
//! and once under the Crossflow Baseline, and prints the §6.1 metrics.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec, Payload, ResourceRef,
    RunMeta, WorkerSpec, Workflow,
};
use crossbid_examples::metric_line;
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

fn main() {
    // 1. Describe the cluster: three equal workers, 10 MB/s network,
    //    100 MB/s disk, 10 GB local stores.
    let specs: Vec<WorkerSpec> = (0..3)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect();

    // 2. Describe the workflow: a single sink task that consumes
    //    repository-scan jobs.
    let mut workflow = Workflow::new();
    let scan = workflow.add_sink("scan");

    // 3. Describe the job stream: six jobs over three repositories, so
    //    locality matters from job #4 on.
    let repos = [(1u64, 200u64), (2, 100), (3, 50)];
    let arrivals: Vec<Arrival> = (0..6)
        .map(|i| {
            let (rid, mb) = repos[i % repos.len()];
            Arrival {
                at: SimTime::from_secs(i as u64 * 5),
                spec: JobSpec::scanning(
                    scan,
                    ResourceRef {
                        id: ObjectId(rid),
                        bytes: mb * 1_000_000,
                    },
                    Payload::Index(rid),
                ),
            }
        })
        .collect();

    // 4. Run under both allocators and compare.
    let cfg = EngineConfig::default();
    for (label, alloc) in [
        (
            "bidding",
            &BiddingAllocator::new() as &dyn crossbid_crossflow::Allocator,
        ),
        ("baseline", &BaselineAllocator),
    ] {
        let mut cluster = Cluster::new(&specs, &cfg);
        let mut wf_run = Workflow::new();
        let scan_run = wf_run.add_sink("scan");
        assert_eq!(scan_run, scan);
        let meta = RunMeta {
            seed: 42,
            ..RunMeta::default()
        };
        let out = run_workflow(
            &mut cluster,
            &mut wf_run,
            alloc,
            arrivals.clone(),
            &cfg,
            &meta,
        );
        println!("{}", metric_line(label, &out.record));
    }
    println!("\n(The bidding run routes repeat jobs to the worker that already\n holds the repository; the baseline may clone redundantly.)");
}
