//! Fault-injection demo: the failure scenario the paper's §5 defers
//! to future work — "a worker dying after winning a bid" — handled by
//! this reproduction's monitoring-layer extension.
//!
//! One worker crashes a third of the way into an `80pct_large` run and
//! recovers later with a cold disk. Watch the job count stay intact
//! while makespan and data load absorb the damage.

use crossbid_core::BiddingAllocator;
use crossbid_crossflow::{
    run_workflow, Cluster, EngineConfig, FaultPlan, RunMeta, WorkerId, Workflow,
};
use crossbid_examples::metric_line;
use crossbid_simcore::SimTime;
use crossbid_workload::{ArrivalProcess, JobConfig, WorkerConfig};

fn main() {
    let wc = WorkerConfig::AllEqual;
    let jc = JobConfig::Pct80Large;
    let seed = 21;

    let run = |faults: FaultPlan, label: &str| {
        let engine = EngineConfig {
            faults,
            ..EngineConfig::default()
        };
        let mut cluster = Cluster::new(&wc.paper_specs(), &engine);
        let mut wf = Workflow::new();
        let task = wf.add_sink("scan");
        let stream = jc.generate(seed, 60, task, &ArrivalProcess::evaluation_default());
        let meta = RunMeta {
            worker_config: wc.name().into(),
            job_config: jc.name().into(),
            seed,
            ..RunMeta::default()
        };
        let out = run_workflow(
            &mut cluster,
            &mut wf,
            &BiddingAllocator::new(),
            stream.arrivals,
            &engine,
            &meta,
        );
        println!("{}", metric_line(label, &out.record));
        out.record
    };

    let healthy = run(FaultPlan::none(), "healthy");
    let crashed = run(
        FaultPlan::new()
            .crash_at(SimTime::from_secs(60), WorkerId(2))
            .recover_at(SimTime::from_secs(160), WorkerId(2)),
        "crash+recover",
    );

    assert_eq!(healthy.jobs_completed, crashed.jobs_completed);
    println!(
        "\nworker 2 died at t=60s holding queued work and its cache;\n\
         every job still completed ({} of {}), at a makespan cost of {:.0}%.",
        crashed.jobs_completed,
        healthy.jobs_completed,
        100.0 * (crashed.makespan_secs - healthy.makespan_secs) / healthy.makespan_secs
    );
}
