//! Aggregation of run records across iterations and seeds.
//!
//! The paper reports per-workload *averages* ("Accumulated results per
//! workload per algorithm", Figure 3) and derived comparisons
//! ("approximately 24.5% speedup", "49% fewer cache misses", "45.3%
//! reduction in data load"). [`Aggregator`] groups [`RunRecord`]s by a
//! caller-chosen key and accumulates Welford statistics for each §6.1
//! metric; [`speedup`] / [`percent_reduction`] compute the derived
//! quantities exactly as the paper phrases them.

use std::collections::BTreeMap;

use crossbid_simcore::Welford;

use crate::record::{RunRecord, SchedulerKind};

/// Aggregated statistics of one group of runs.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// End-to-end execution time, seconds.
    pub makespan: Welford,
    /// Data load, MB.
    pub data_load_mb: Welford,
    /// Cache misses per run.
    pub cache_misses: Welford,
    /// Cache hits per run.
    pub cache_hits: Welford,
    /// Control messages per run (scheduling overhead).
    pub control_messages: Welford,
    /// Mean queue wait, seconds.
    pub queue_wait: Welford,
    /// Number of runs folded in.
    pub runs: u64,
}

impl Aggregate {
    /// Fold one record in.
    pub fn push(&mut self, r: &RunRecord) {
        self.makespan.push(r.makespan_secs);
        self.data_load_mb.push(r.data_load_mb);
        self.cache_misses.push(r.cache_misses as f64);
        self.cache_hits.push(r.cache_hits as f64);
        self.control_messages.push(r.control_messages as f64);
        self.queue_wait.push(r.mean_queue_wait_secs);
        self.runs += 1;
    }
}

/// Groups records by `(scheduler, group key)` where the group key is
/// produced by a caller-supplied function (job config, worker config,
/// or their combination).
#[derive(Debug, Default)]
pub struct Aggregator {
    groups: BTreeMap<(SchedulerKind, String), Aggregate>,
}

impl Aggregator {
    /// Empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `record` under the group key produced by `key`.
    pub fn push_with<F: Fn(&RunRecord) -> String>(&mut self, record: &RunRecord, key: F) {
        self.groups
            .entry((record.scheduler, key(record)))
            .or_default()
            .push(record);
    }

    /// Fold many records keyed by job configuration (Figure 3's
    /// grouping).
    pub fn push_all_by_job_config<'a, I: IntoIterator<Item = &'a RunRecord>>(&mut self, it: I) {
        for r in it {
            self.push_with(r, |r| r.job_config.clone());
        }
    }

    /// Fold many records keyed by `worker_config/job_config`
    /// (Figure 4's grouping).
    pub fn push_all_by_both<'a, I: IntoIterator<Item = &'a RunRecord>>(&mut self, it: I) {
        for r in it {
            self.push_with(r, |r| format!("{}/{}", r.worker_config, r.job_config));
        }
    }

    /// Retrieve the aggregate for a scheduler+key pair.
    pub fn get(&self, scheduler: SchedulerKind, key: &str) -> Option<&Aggregate> {
        self.groups.get(&(scheduler, key.to_string()))
    }

    /// All group keys present (sorted, deduplicated).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.groups.keys().map(|(_, k)| k.clone()).collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// All schedulers present (sorted).
    pub fn schedulers(&self) -> Vec<SchedulerKind> {
        let mut s: Vec<SchedulerKind> = self.groups.keys().map(|(s, _)| *s).collect();
        s.sort();
        s.dedup();
        s
    }

    /// Iterate over `((scheduler, key), aggregate)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&(SchedulerKind, String), &Aggregate)> {
        self.groups.iter()
    }
}

/// Speedup of `fast` relative to `slow` expressed as the paper does:
/// `slow / fast` (e.g. "3.57x faster"). Returns `NaN` if `fast` is 0.
pub fn speedup(slow: f64, fast: f64) -> f64 {
    slow / fast
}

/// Percentage reduction from `before` to `after` (e.g. "51% reduction
/// in data downloaded"). Returns 0 when `before` is 0.
pub fn percent_reduction(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        100.0 * (before - after) / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(s: SchedulerKind, job: &str, makespan: f64, misses: u64, mb: f64) -> RunRecord {
        RunRecord {
            scheduler: s,
            worker_config: "all-equal".into(),
            job_config: job.into(),
            iteration: 0,
            seed: 0,
            makespan_secs: makespan,
            data_load_mb: mb,
            cache_misses: misses,
            cache_hits: 0,
            evictions: 0,
            jobs_completed: 120,
            control_messages: 0,
            contests_timed_out: 0,
            contests_fallback: 0,
            mean_queue_wait_secs: 0.0,
            worker_busy_frac: vec![],
            jobs_redistributed: 0,
            worker_crashes: 0,
            recovery_secs: 0.0,
        }
    }

    #[test]
    fn groups_by_job_config() {
        let rs = vec![
            record(SchedulerKind::Bidding, "a", 100.0, 10, 1.0),
            record(SchedulerKind::Bidding, "a", 200.0, 20, 3.0),
            record(SchedulerKind::Baseline, "a", 300.0, 30, 5.0),
            record(SchedulerKind::Bidding, "b", 50.0, 5, 2.0),
        ];
        let mut agg = Aggregator::new();
        agg.push_all_by_job_config(&rs);
        let a = agg.get(SchedulerKind::Bidding, "a").unwrap();
        assert_eq!(a.runs, 2);
        assert!((a.makespan.mean() - 150.0).abs() < 1e-12);
        assert!((a.cache_misses.mean() - 15.0).abs() < 1e-12);
        let base = agg.get(SchedulerKind::Baseline, "a").unwrap();
        assert_eq!(base.runs, 1);
        assert_eq!(agg.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(
            agg.schedulers(),
            vec![SchedulerKind::Bidding, SchedulerKind::Baseline]
        );
    }

    #[test]
    fn groups_by_both() {
        let mut agg = Aggregator::new();
        agg.push_all_by_both(&[record(SchedulerKind::Bidding, "a", 1.0, 0, 0.0)]);
        assert!(agg.get(SchedulerKind::Bidding, "all-equal/a").is_some());
    }

    #[test]
    fn missing_group_is_none() {
        let agg = Aggregator::new();
        assert!(agg.get(SchedulerKind::Random, "nope").is_none());
    }

    #[test]
    fn speedup_matches_paper_phrasing() {
        // Baseline 4183.5s vs Bidding 3116.52s (Table 1, run 3) was
        // described as "25.5% longer" baseline.
        let s = speedup(4183.5, 3116.52);
        assert!(s > 1.34 && s < 1.35);
        assert!((percent_reduction(4183.5, 3116.52) - 25.5).abs() < 0.05);
    }

    #[test]
    fn percent_reduction_edges() {
        assert_eq!(percent_reduction(0.0, 5.0), 0.0);
        assert!((percent_reduction(100.0, 49.0) - 51.0).abs() < 1e-12);
        assert!(
            percent_reduction(100.0, 150.0) < 0.0,
            "regression shows negative"
        );
    }

    #[test]
    fn iter_is_sorted() {
        let mut agg = Aggregator::new();
        agg.push_all_by_job_config(&[
            record(SchedulerKind::Baseline, "z", 1.0, 0, 0.0),
            record(SchedulerKind::Bidding, "a", 1.0, 0, 0.0),
        ]);
        let keys: Vec<_> = agg.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys[0].0, SchedulerKind::Bidding);
        assert_eq!(keys[1].0, SchedulerKind::Baseline);
    }
}
