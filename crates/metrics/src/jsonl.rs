//! Streaming JSONL (one JSON object per line) writing and parsing.
//!
//! The trace-export schema emits one self-describing object per line
//! (`{"type":"trace",...}`), so a consumer can stream-filter a run
//! without loading it whole.  [`JsonlWriter`] renders each value
//! compactly and flushes on drop; [`parse_jsonl`] is the inverse.

use crate::json::{Json, JsonError};
use crate::registry::{HistogramSnapshot, RegistrySnapshot};
use std::io::{self, Write};

/// Line-oriented writer: one compact JSON document per line.
pub struct JsonlWriter<W: Write> {
    out: W,
    lines: u64,
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(out: W) -> Self {
        Self { out, lines: 0 }
    }

    /// Write one value as a single line.
    pub fn write(&mut self, value: &Json) -> io::Result<()> {
        self.out.write_all(value.render().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Parse a JSONL document: one JSON value per non-empty line.
pub fn parse_jsonl(s: &str) -> Result<Vec<Json>, JsonError> {
    s.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            Json::parse(line).map_err(|e| JsonError(format!("line {}: {}", i + 1, e.0)))
        })
        .collect()
}

impl RegistrySnapshot {
    /// Stable JSON form: three name-sorted sections.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.to_json()))
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let section = |name: &str| -> Result<&[(String, Json)], JsonError> {
            match v.req(name)? {
                Json::Obj(fields) => Ok(fields),
                _ => Err(JsonError(format!("`{name}` is not an object"))),
            }
        };
        let counters = section("counters")?
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| JsonError(format!("counter `{k}` is not a u64")))
            })
            .collect::<Result<_, _>>()?;
        let gauges = section("gauges")?
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| JsonError(format!("gauge `{k}` is not a number")))
            })
            .collect::<Result<_, _>>()?;
        let histograms = section("histograms")?
            .iter()
            .map(|(k, v)| HistogramSnapshot::from_json(v).map(|h| (k.clone(), h)))
            .collect::<Result<_, _>>()?;
        Ok(RegistrySnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

impl HistogramSnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::Num(self.sum)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(lo, n)| Json::Arr(vec![Json::Num(*lo), Json::UInt(*n)]))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let count = v.req_u64("count")?;
        let sum = v.req_f64("sum")?;
        let buckets = v
            .req("buckets")?
            .as_arr()
            .ok_or_else(|| JsonError("`buckets` is not an array".into()))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| JsonError("bucket is not a [bound, count] pair".into()))?;
                let lo = pair[0]
                    .as_f64()
                    .ok_or_else(|| JsonError("bucket bound is not a number".into()))?;
                let n = pair[1]
                    .as_u64()
                    .ok_or_else(|| JsonError("bucket count is not a u64".into()))?;
                Ok((lo, n))
            })
            .collect::<Result<_, JsonError>>()?;
        Ok(HistogramSnapshot {
            count,
            sum,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn writer_emits_one_line_per_value() {
        let mut w = JsonlWriter::new(Vec::new());
        w.write(&Json::obj([("a", Json::UInt(1))])).unwrap();
        w.write(&Json::str("two")).unwrap();
        assert_eq!(w.lines(), 2);
        let buf = w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "{\"a\":1}\n\"two\"\n");
        assert_eq!(parse_jsonl(&text).unwrap().len(), 2);
    }

    #[test]
    fn registry_snapshot_round_trips() {
        let reg = Registry::new();
        reg.counter("contests/opened").add(12);
        reg.gauge("worker/0/busy_frac").set(0.8125);
        let h = reg.histogram("job/queue_wait_secs");
        h.record(0.5);
        h.record(2.0);
        h.record(2.1);
        let snap = reg.snapshot();
        let back = RegistrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_jsonl("{\"ok\":1}\nnot json\n").unwrap_err();
        assert!(err.0.starts_with("line 2:"), "{err}");
    }
}
