//! Per-run measurement records.

use crate::json::{Json, JsonError};
use serde::{Deserialize, Serialize};

/// Which allocation algorithm produced a run. Mirrors the schedulers
/// evaluated or discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's contribution (§5): decentralized bidding contests.
    Bidding,
    /// Crossflow's reject-once opinionated workers (§4) — the paper's
    /// Baseline.
    Baseline,
    /// Spark-like fully centralized up-front allocation that "considers
    /// all workers equal" (§4, Figure 2 comparator).
    SparkStatic,
    /// Spark's locality-wait mechanism (§3): five locality levels with
    /// a wait threshold before degrading.
    SparkLocality,
    /// Matchmaking (He et al., §3): free workers request local work,
    /// idle one heartbeat, then accept anything.
    Matchmaking,
    /// Delay scheduling (Zaharia et al., §3): postpone non-local
    /// assignment a bounded number of times.
    Delay,
    /// BAR (Jin et al., §3): batch two-phase planning — all-local
    /// first, then iterative locality-for-completion-time trades.
    Bar,
    /// Uniformly random assignment (sanity floor).
    Random,
}

impl SchedulerKind {
    /// Stable display name used in tables and CSV.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Bidding => "bidding",
            SchedulerKind::Baseline => "baseline",
            SchedulerKind::SparkStatic => "spark-static",
            SchedulerKind::SparkLocality => "spark-locality",
            SchedulerKind::Matchmaking => "matchmaking",
            SchedulerKind::Delay => "delay",
            SchedulerKind::Bar => "bar",
            SchedulerKind::Random => "random",
        }
    }

    /// Inverse of [`SchedulerKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Every implemented scheduler.
    pub const ALL: [SchedulerKind; 8] = [
        SchedulerKind::Bidding,
        SchedulerKind::Baseline,
        SchedulerKind::SparkStatic,
        SchedulerKind::SparkLocality,
        SchedulerKind::Matchmaking,
        SchedulerKind::Delay,
        SchedulerKind::Bar,
        SchedulerKind::Random,
    ];
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything measured in one workflow run. Field names follow §6.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Allocation algorithm under test.
    pub scheduler: SchedulerKind,
    /// Worker-configuration preset name (e.g. `one-slow`).
    pub worker_config: String,
    /// Job-configuration preset name (e.g. `80pct_large`).
    pub job_config: String,
    /// Zero-based iteration index within a session (caches persist
    /// across iterations, §6.3.1).
    pub iteration: u32,
    /// Root seed of the run.
    pub seed: u64,
    /// Metric 1: end-to-end execution time in (virtual) seconds.
    pub makespan_secs: f64,
    /// Metric 2: data load — MB transferred because data was not local.
    pub data_load_mb: f64,
    /// Metric 3: cache misses across all workers.
    pub cache_misses: u64,
    /// Cache hits (locality successes) across all workers.
    pub cache_hits: u64,
    /// Evictions across all workers.
    pub evictions: u64,
    /// Jobs that completed (conservation check: must equal submitted).
    pub jobs_completed: u64,
    /// Scheduler control messages exchanged (bids, offers, rejects…)
    /// — the "bidding overhead" of §6.3.2 conclusion 3.
    pub control_messages: u64,
    /// Bidding contests decided by the 1-second timeout rather than by
    /// a full set of bids.
    pub contests_timed_out: u64,
    /// Contests that received zero bids and fell back to an arbitrary
    /// worker (Listing 1's fallback path).
    pub contests_fallback: u64,
    /// Mean time jobs spent waiting in worker queues, seconds.
    pub mean_queue_wait_secs: f64,
    /// Per-worker busy fraction over the run.
    pub worker_busy_frac: Vec<f64>,
    /// Jobs the master pulled back from a failed worker and re-placed
    /// (fault-injection runs only; 0 otherwise).
    pub jobs_redistributed: u64,
    /// Worker crash events injected during the run.
    pub worker_crashes: u64,
    /// Total worker downtime in (virtual) seconds, summed across
    /// workers, counted from each crash until the matching recovery or
    /// the end of the run.
    pub recovery_secs: f64,
}

impl RunRecord {
    /// Cache hit ratio in `[0,1]` (0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Jain's fairness index over worker busy fractions, in
    /// `(0, 1]`: 1 means perfectly equal utilization, `1/n` means one
    /// worker did everything. The paper (§3) observes that data
    /// awareness "is achieved through compromising the fairness of
    /// task allocation" — this quantifies the compromise.
    pub fn jains_fairness(&self) -> f64 {
        let n = self.worker_busy_frac.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.worker_busy_frac.iter().sum();
        let sum_sq: f64 = self.worker_busy_frac.iter().map(|b| b * b).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (n as f64 * sum_sq)
    }

    /// JSONL-schema form of the record (field order is stable).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scheduler", Json::str(self.scheduler.name())),
            ("worker_config", Json::str(&self.worker_config)),
            ("job_config", Json::str(&self.job_config)),
            ("iteration", Json::UInt(self.iteration as u64)),
            ("seed", Json::UInt(self.seed)),
            ("makespan_secs", Json::Num(self.makespan_secs)),
            ("data_load_mb", Json::Num(self.data_load_mb)),
            ("cache_misses", Json::UInt(self.cache_misses)),
            ("cache_hits", Json::UInt(self.cache_hits)),
            ("evictions", Json::UInt(self.evictions)),
            ("jobs_completed", Json::UInt(self.jobs_completed)),
            ("control_messages", Json::UInt(self.control_messages)),
            ("contests_timed_out", Json::UInt(self.contests_timed_out)),
            ("contests_fallback", Json::UInt(self.contests_fallback)),
            ("mean_queue_wait_secs", Json::Num(self.mean_queue_wait_secs)),
            (
                "worker_busy_frac",
                Json::Arr(
                    self.worker_busy_frac
                        .iter()
                        .map(|&b| Json::Num(b))
                        .collect(),
                ),
            ),
            ("jobs_redistributed", Json::UInt(self.jobs_redistributed)),
            ("worker_crashes", Json::UInt(self.worker_crashes)),
            ("recovery_secs", Json::Num(self.recovery_secs)),
        ])
    }

    /// Inverse of [`RunRecord::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v.req_str("scheduler")?;
        let scheduler = SchedulerKind::from_name(name)
            .ok_or_else(|| JsonError(format!("unknown scheduler `{name}`")))?;
        let iteration = u32::try_from(v.req_u64("iteration")?)
            .map_err(|_| JsonError("iteration out of range".into()))?;
        let worker_busy_frac = v
            .req("worker_busy_frac")?
            .as_arr()
            .ok_or_else(|| JsonError("`worker_busy_frac` is not an array".into()))?
            .iter()
            .map(|b| {
                b.as_f64()
                    .ok_or_else(|| JsonError("busy fraction is not a number".into()))
            })
            .collect::<Result<_, _>>()?;
        Ok(RunRecord {
            scheduler,
            worker_config: v.req_str("worker_config")?.to_string(),
            job_config: v.req_str("job_config")?.to_string(),
            iteration,
            seed: v.req_u64("seed")?,
            makespan_secs: v.req_f64("makespan_secs")?,
            data_load_mb: v.req_f64("data_load_mb")?,
            cache_misses: v.req_u64("cache_misses")?,
            cache_hits: v.req_u64("cache_hits")?,
            evictions: v.req_u64("evictions")?,
            jobs_completed: v.req_u64("jobs_completed")?,
            control_messages: v.req_u64("control_messages")?,
            contests_timed_out: v.req_u64("contests_timed_out")?,
            contests_fallback: v.req_u64("contests_fallback")?,
            mean_queue_wait_secs: v.req_f64("mean_queue_wait_secs")?,
            worker_busy_frac,
            jobs_redistributed: v.req_u64("jobs_redistributed")?,
            worker_crashes: v.req_u64("worker_crashes")?,
            recovery_secs: v.req_f64("recovery_secs")?,
        })
    }

    /// Imbalance of worker utilization: max − min busy fraction.
    pub fn utilization_spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &b in &self.worker_busy_frac {
            lo = lo.min(b);
            hi = hi.max(b);
        }
        if self.worker_busy_frac.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord {
        RunRecord {
            scheduler: SchedulerKind::Bidding,
            worker_config: "all-equal".into(),
            job_config: "80pct_large".into(),
            iteration: 0,
            seed: 1,
            makespan_secs: 100.0,
            data_load_mb: 5000.0,
            cache_misses: 20,
            cache_hits: 80,
            evictions: 2,
            jobs_completed: 120,
            control_messages: 600,
            contests_timed_out: 1,
            contests_fallback: 0,
            mean_queue_wait_secs: 3.5,
            worker_busy_frac: vec![0.9, 0.7, 0.8, 0.6, 0.95],
            jobs_redistributed: 0,
            worker_crashes: 0,
            recovery_secs: 0.0,
        }
    }

    #[test]
    fn hit_ratio() {
        assert!((record().hit_ratio() - 0.8).abs() < 1e-12);
        let mut r = record();
        r.cache_hits = 0;
        r.cache_misses = 0;
        assert_eq!(r.hit_ratio(), 0.0);
    }

    #[test]
    fn utilization_spread() {
        assert!((record().utilization_spread() - 0.35).abs() < 1e-12);
        let mut r = record();
        r.worker_busy_frac.clear();
        assert_eq!(r.utilization_spread(), 0.0);
    }

    #[test]
    fn jains_fairness() {
        let mut r = record();
        r.worker_busy_frac = vec![0.5, 0.5, 0.5];
        assert!((r.jains_fairness() - 1.0).abs() < 1e-12, "equal = 1");
        r.worker_busy_frac = vec![1.0, 0.0, 0.0, 0.0];
        assert!((r.jains_fairness() - 0.25).abs() < 1e-12, "one hog = 1/n");
        r.worker_busy_frac = vec![];
        assert_eq!(r.jains_fairness(), 1.0);
        r.worker_busy_frac = vec![0.0, 0.0];
        assert_eq!(r.jains_fairness(), 1.0);
    }

    #[test]
    fn scheduler_names_unique() {
        let mut names: Vec<_> = SchedulerKind::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SchedulerKind::ALL.len());
    }

    #[test]
    fn record_json_round_trips() {
        let r = record();
        let back = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
        // And through an actual rendered line.
        let reparsed = Json::parse(&r.to_json().render()).unwrap();
        let back2 = RunRecord::from_json(&reparsed).unwrap();
        assert_eq!(back2.seed, r.seed);
        assert_eq!(back2.worker_busy_frac, r.worker_busy_frac);
    }

    #[test]
    fn scheduler_from_name_is_inverse() {
        for k in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SchedulerKind::from_name("nope"), None);
    }

    #[test]
    fn record_is_serde() {
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<RunRecord>();
        assert_serde::<SchedulerKind>();
    }
}
