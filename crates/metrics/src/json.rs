//! Minimal JSON value type with a renderer and parser.
//!
//! The workspace vendors `serde` as a marker-trait stub (the build is
//! fully offline), so the JSONL trace schema is implemented against
//! this small, dependency-free value type instead.  Design points:
//!
//! - Integers get their own variants ([`Json::UInt`] / [`Json::Int`])
//!   so 64-bit seeds and counters round-trip exactly instead of being
//!   squeezed through `f64`.
//! - Non-finite floats render as `null` (JSON has no NaN/inf).
//! - Object keys keep insertion order; the schema relies on a stable
//!   field order for golden-file tests.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer (u64-exact).
    UInt(u64),
    /// Negative integer (i64-exact).
    Int(i64),
    /// Any other number.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder: `Json::obj([("k", Json::UInt(1))])`.
    pub fn obj<I, K>(fields: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric coercion: integers widen to `f64`, `null` reads as NaN
    /// (the inverse of the render-side NaN → `null` mapping).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required typed accessors for schema decoding.
    pub fn req(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    pub fn req_str(&self, key: &str) -> Result<&str, JsonError> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| JsonError(format!("field `{key}` is not a string")))
    }

    pub fn req_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| JsonError(format!("field `{key}` is not a u64")))
    }

    pub fn req_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| JsonError(format!("field `{key}` is not a number")))
    }

    pub fn req_bool(&self, key: &str) -> Result<bool, JsonError> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| JsonError(format!("field `{key}` is not a bool")))
    }

    /// Render to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                out.push_str(&n.to_string());
            }
            Json::Int(n) => {
                out.push_str(&n.to_string());
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    out.push_str(&s);
                    // `{}` prints integral floats without a point;
                    // keep them distinguishable from integers.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError(format!(
                "trailing garbage at byte {} of {:?}",
                p.pos,
                truncate(s)
            )));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn truncate(s: &str) -> &str {
    let end = s.char_indices().nth(60).map(|(i, _)| i).unwrap_or(s.len());
    &s[..end]
}

/// Parse or schema-decode failure, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(JsonError(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError("eof in escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError("eof in \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // renderer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(JsonError(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(JsonError("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Int(-1),
            Json::Int(i64::MIN),
            Json::Num(0.5),
            Json::Num(-2.25e-8),
            Json::Num(3.0),
            Json::str("hi \"there\"\nline2\\slash"),
        ] {
            let rendered = v.render();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back, v, "via {rendered}");
        }
    }

    #[test]
    fn u64_seed_survives_exactly() {
        let seed = 0xdead_beef_cafe_f00d_u64;
        let doc = Json::obj([("seed", Json::UInt(seed))]).render();
        let back = Json::parse(&doc).unwrap();
        assert_eq!(back.req_u64("seed").unwrap(), seed);
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        // And null coerces back to NaN through the f64 accessor.
        assert!(Json::Null.as_f64().unwrap().is_nan());
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("type", Json::str("trace")),
            (
                "items",
                Json::Arr(vec![
                    Json::obj([("a", Json::UInt(1)), ("b", Json::Num(0.125))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , -2 , 3.5, \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[Json::UInt(1), Json::Int(-2), Json::Num(3.5), Json::str("A")]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn float_never_renders_as_integer() {
        // An f64 that happens to be integral still parses back as Num.
        let v = Json::Num(42.0);
        assert_eq!(v.render(), "42.0");
        assert_eq!(Json::parse("42.0").unwrap(), v);
    }
}
