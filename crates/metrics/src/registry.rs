//! A typed metrics registry: counters, gauges and log-linear-bucket
//! histograms with near-zero hot-path cost.
//!
//! Every instrument is a cheap handle around an [`Arc`] of atomics, so
//! the same instrument can be recorded from the simulation engine's
//! single thread or from a dozen real worker threads without locks on
//! the hot path.  The registry itself is only locked on instrument
//! *creation* (get-or-create by name) and on [`Registry::snapshot`].
//!
//! Naming convention: lowercase path segments joined by `/`, e.g.
//! `contests/opened`, `job/queue_wait_secs`, `worker/3/busy_frac`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Last-write-wins floating point value (stored as `f64` bits).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Sub-buckets per power-of-two octave.  4 keeps the relative
/// quantile error under ~12% with 121 buckets across 30 octaves.
const SUBS_PER_OCTAVE: usize = 4;
/// Octaves covered above `min`; values beyond land in the overflow
/// bucket.  30 octaves above 1 ms reach ~1.07e6 s.
const OCTAVES: usize = 30;

struct HistInner {
    /// Lower bound of the first real bucket; values below it land in
    /// the underflow bucket (index 0).
    min: f64,
    /// `1 (underflow) + OCTAVES * SUBS_PER_OCTAVE + 1 (overflow)`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Exact sum of recorded values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
}

/// Log-linear-bucket histogram of non-negative `f64` samples
/// (typically seconds).
///
/// Buckets are spaced exponentially by octave (powers of two above a
/// configurable minimum), each octave split into four linear
/// sub-buckets — the classic HDR layout.
/// Recording is two relaxed atomic adds plus one CAS loop for the
/// exact sum; no allocation, no lock.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Histogram with the default range: 1 ms to ~1.07e6 s.
    pub fn new() -> Self {
        Self::with_min(1e-3)
    }

    /// Histogram whose first real bucket starts at `min` (> 0).
    pub fn with_min(min: f64) -> Self {
        assert!(min > 0.0 && min.is_finite(), "histogram min must be > 0");
        let n = 2 + OCTAVES * SUBS_PER_OCTAVE;
        let buckets = (0..n).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistInner {
            min,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    fn bucket_index(&self, v: f64) -> usize {
        let min = self.0.min;
        if v.is_nan() || v < min {
            // Negative, NaN and sub-minimum samples: underflow bucket.
            return 0;
        }
        let ratio = v / min;
        let octave = ratio.log2().floor();
        if octave >= OCTAVES as f64 {
            return self.0.buckets.len() - 1;
        }
        let octave_usize = octave as usize;
        let base = min * (2f64).powi(octave as i32);
        // Position within the octave in [0, 1); linear sub-bucket.
        let frac = (v - base) / base;
        let sub = ((frac * SUBS_PER_OCTAVE as f64) as usize).min(SUBS_PER_OCTAVE - 1);
        1 + octave_usize * SUBS_PER_OCTAVE + sub
    }

    /// Lower bound of bucket `i` (0 for the underflow bucket).
    fn bucket_lower_bound(&self, i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let min = self.0.min;
        let last = self.0.buckets.len() - 1;
        if i >= last {
            return min * (2f64).powi(OCTAVES as i32);
        }
        let octave = (i - 1) / SUBS_PER_OCTAVE;
        let sub = (i - 1) % SUBS_PER_OCTAVE;
        let base = min * (2f64).powi(octave as i32);
        base * (1.0 + sub as f64 / SUBS_PER_OCTAVE as f64)
    }

    /// Upper bound of bucket `i` (= lower bound of bucket `i + 1`).
    fn bucket_upper_bound(&self, i: usize) -> f64 {
        if i + 1 >= self.0.buckets.len() {
            f64::INFINITY
        } else {
            self.bucket_lower_bound(i + 1)
        }
    }

    /// Record one sample.  Non-finite samples are counted in the
    /// underflow bucket and contribute nothing to the sum.
    #[inline]
    pub fn record(&self, v: f64) {
        let idx = if v.is_finite() {
            self.bucket_index(v)
        } else {
            0
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.0.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all finite samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact mean of all finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the `q`-th sample.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let hi = self.bucket_upper_bound(i);
                return if hi.is_finite() {
                    hi
                } else {
                    self.bucket_lower_bound(i)
                };
            }
        }
        self.bucket_lower_bound(self.0.buckets.len() - 1)
    }

    /// Point-in-time copy, keeping only non-empty buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (self.bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(count={}, mean={:.4})",
            self.count(),
            self.mean()
        )
    }
}

/// Frozen copy of one histogram: `(bucket lower bound, count)` pairs
/// for the non-empty buckets, plus exact count and sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the lower bound of the
    /// bucket where the cumulative count crosses the `q`-th sample.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(lo, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lo;
            }
        }
        self.buckets.last().map_or(0.0, |&(lo, _)| lo)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Named collection of instruments, shareable across threads.
///
/// Cloning a `Registry` clones the handle, not the data: all clones
/// feed the same instruments.  Instruments are created on first use
/// and live for the life of the registry.
#[derive(Clone, Default)]
pub struct Registry(Arc<RegistryInner>);

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.0.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.0.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name` (default 1 ms min).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.0.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .0
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .0
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .0
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("counters", &snap.counters.len())
            .field("gauges", &snap.gauges.len())
            .field("histograms", &snap.histograms.len())
            .finish()
    }
}

/// Frozen copy of a [`Registry`], ordered by instrument name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Value of the named counter, or 0 when absent (a counter that
    /// never fired is indistinguishable from one never created).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("a/b");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a/b").get(), 5);
        let g = reg.gauge("util");
        g.set(0.75);
        assert_eq!(reg.gauge("util").get(), 0.75);
    }

    #[test]
    fn histogram_buckets_monotone() {
        let h = Histogram::new();
        for v in [0.0005, 0.002, 0.5, 1.0, 1.4, 100.0, 1e9] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        // Exact sum survives bucketing.
        let want: f64 = 0.0005 + 0.002 + 0.5 + 1.0 + 1.4 + 100.0 + 1e9;
        assert!((h.sum() - want).abs() < 1e-6 * want);
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        // Buckets come out in ascending order of lower bound.
        for w in snap.buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn histogram_quantile_brackets_sample() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(0.050);
        }
        let p50 = h.quantile(0.5);
        // Upper bucket bound within one sub-bucket (25%) of the value.
        assert!((0.050..=0.050 * 1.3).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("z").inc();
        reg.counter("a").add(2);
        reg.histogram("h").record(1.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "z"]
        );
        assert_eq!(snap.counter("a"), 2);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn shared_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("n");
        let h = reg.histogram("t");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.record(0.01);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 40.0).abs() < 1e-9);
    }
}
