//! Plain-text table and CSV rendering for experiment reports.

/// A simple column-aligned ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it is padded/truncated to the header width.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text block (title, header, separator,
    /// rows).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate().take(cols) {
                line.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers + rows), RFC-4180-style quoting for
    /// cells containing commas, quotes or newlines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }
}

fn csv_line(cells: &[String]) -> String {
    let mut line = cells
        .iter()
        .map(|c| csv_escape(c))
        .collect::<Vec<_>>()
        .join(",");
    line.push('\n');
    line
}

fn csv_escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Render rows straight to CSV without building a [`Table`].
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = csv_line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        out.push_str(&csv_line(row));
    }
    out
}

/// Format a float with 2 decimal places (helper for report code).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float as a multiplier, e.g. `3.57x`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a float as a percentage, e.g. `24.5%`.
pub fn fpct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(["short".into(), "1".into()]);
        t.row(["a-much-longer-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.starts_with("## Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // All table lines share the same width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
        assert!(s.contains("a-much-longer-name"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("", &["k", "v"]);
        t.row(["with,comma".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\n\"with,comma\",\"with\"\"quote\"\n");
    }

    #[test]
    fn render_csv_free_function() {
        let csv = render_csv(&["x"], &[vec!["1".into()], vec!["2".into()]]);
        assert_eq!(csv, "x\n1\n2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(12.345), "12.35");
        assert_eq!(fx(3.567), "3.57x");
        assert_eq!(fpct(24.49), "24.5%");
    }
}
