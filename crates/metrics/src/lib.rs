//! # crossbid-metrics
//!
//! The paper's §6.1 defines three headline metrics:
//!
//! 1. **End-to-end execution time** — workflow makespan;
//! 2. **Data load** — megabytes of non-local data transferred to
//!    workers;
//! 3. **Cache miss** — how often workers lacked the necessary data
//!    locally.
//!
//! This crate defines the [`RunRecord`] produced by every engine run,
//! grouping/aggregation across iterations ([`Aggregator`]), the
//! derived comparison quantities the paper reports (speedups,
//! percentage reductions), and plain-text table / CSV rendering used
//! by `EXPERIMENTS.md` and the `repro` binary.

//! ```
//! use crossbid_metrics::{percent_reduction, speedup};
//!
//! // Table 1, run 3: Baseline 4183.5 s vs Bidding 3116.52 s.
//! assert!((speedup(4183.5, 3116.52) - 1.342).abs() < 1e-3);
//! assert!((percent_reduction(4183.5, 3116.52) - 25.5).abs() < 0.05);
//! ```

pub mod aggregate;
pub mod json;
pub mod jsonl;
pub mod record;
pub mod registry;
pub mod table;

pub use aggregate::{percent_reduction, speedup, Aggregate, Aggregator};
pub use json::{Json, JsonError};
pub use jsonl::{parse_jsonl, JsonlWriter};
pub use record::{RunRecord, SchedulerKind};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot};
pub use table::{render_csv, Table};
