//! Tests of the real-threaded runtime. These run actual OS threads
//! with aggressive time compression, so assertions are about
//! *structure* (conservation, locality, metric consistency), not
//! exact timings.

use crossbid_crossflow::{
    run_threaded_output, Arrival, JobSpec, Payload, ResourceRef, RunMeta, TaskId, ThreadedConfig,
    ThreadedScheduler, WorkerSpec, Workflow,
};
use crossbid_net::NoiseModel;
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

/// Local shim over the non-deprecated entry point: these tests only
/// need the record.
fn run_threaded(
    specs: &[WorkerSpec],
    cfg: &ThreadedConfig,
    wf: &mut Workflow,
    arrivals: Vec<Arrival>,
    meta: &RunMeta,
) -> crossbid_metrics::RunRecord {
    run_threaded_output(specs, cfg, wf, arrivals, meta).record
}

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn arrivals(task: TaskId, jobs: &[(u64, u64)], spacing_virtual_secs: f64) -> Vec<Arrival> {
    jobs.iter()
        .enumerate()
        .map(|(i, (rid, mb))| Arrival {
            at: SimTime::from_secs_f64(i as f64 * spacing_virtual_secs),
            spec: JobSpec::scanning(task, res(*rid, *mb), Payload::Index(*rid)),
        })
        .collect()
}

/// Fast test config: 1 virtual second = 50 µs real.
fn cfg(scheduler: ThreadedScheduler) -> ThreadedConfig {
    ThreadedConfig {
        time_scale: 5e-5,
        noise: NoiseModel::None,
        speed_learning: true,
        scheduler,
        seed: 7,
        ..ThreadedConfig::default()
    }
}

#[test]
fn bidding_completes_all_jobs() {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let jobs: Vec<(u64, u64)> = (0..20).map(|i| (i % 6, 100)).collect();
    let r = run_threaded(
        &specs(3),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }),
        &mut wf,
        arrivals(task, &jobs, 1.0),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 20);
    assert!(r.cache_misses >= 6, "six distinct repos must be fetched");
    assert!(
        r.cache_misses <= 18,
        "locality should hold misses well below 20"
    );
    assert_eq!(r.cache_hits + r.cache_misses, 20);
    assert!(r.makespan_secs > 0.0);
    assert!(r.data_load_mb >= 600.0 - 1e-6);
}

#[test]
fn baseline_completes_all_jobs() {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let jobs: Vec<(u64, u64)> = (0..20).map(|i| (i % 6, 100)).collect();
    let r = run_threaded(
        &specs(3),
        &cfg(ThreadedScheduler::Baseline),
        &mut wf,
        arrivals(task, &jobs, 1.0),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 20);
    assert_eq!(r.cache_hits + r.cache_misses, 20);
    assert_eq!(r.contests_timed_out, 0, "baseline runs no contests");
}

#[test]
fn downstream_jobs_flow_in_threaded_mode() {
    use crossbid_crossflow::task::FnTask;
    let sink_id = TaskId(1);
    let mut wf = Workflow::new();
    let search = wf.add_task(
        "expand",
        Box::new(FnTask(
            move |job: &crossbid_crossflow::Job, _: &_, out: &mut Vec<JobSpec>| {
                if let Some(r) = job.resource {
                    out.push(JobSpec {
                        task: sink_id,
                        resource: Some(r),
                        work_bytes: r.bytes / 2,
                        cpu_secs: 0.0,
                        payload: job.payload.clone(),
                        origin: None,
                        dag: None,
                    });
                }
            },
        )),
    );
    let sink = wf.add_sink("sink");
    assert_eq!(sink, sink_id);
    let r = run_threaded(
        &specs(2),
        &cfg(ThreadedScheduler::Bidding { window_secs: 0.5 }),
        &mut wf,
        arrivals(search, &[(1, 50), (2, 50), (3, 50)], 0.5),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 6, "3 expand + 3 sink jobs");
    let sink_logic = wf
        .logic_as::<crossbid_crossflow::SinkTask>(sink)
        .expect("sink");
    assert_eq!(sink_logic.len(), 3);
}

#[test]
fn warm_worker_attracts_bidding_jobs() {
    // Single hot repo, three workers; after the first fetch, the
    // owner's zero-transfer bids should keep the job count of clones
    // far below the job count.
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let jobs: Vec<(u64, u64)> = (0..15).map(|_| (1, 200)).collect();
    let r = run_threaded(
        &specs(3),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }),
        &mut wf,
        // Spaced wider than a scan (2 s), so the owner is usually free.
        arrivals(task, &jobs, 4.0),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 15);
    assert!(
        r.cache_misses <= 3,
        "hot repo should be cloned at most once per worker, got {}",
        r.cache_misses
    );
}

#[test]
fn zero_worker_cluster_is_rejected() {
    let mut wf = Workflow::new();
    let _ = wf.add_sink("s");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_threaded(
            &[],
            &cfg(ThreadedScheduler::Baseline),
            &mut wf,
            vec![],
            &RunMeta::default(),
        )
    }));
    assert!(result.is_err());
}

#[test]
fn empty_arrivals_terminate_immediately() {
    let mut wf = Workflow::new();
    let _ = wf.add_sink("s");
    let r = run_threaded(
        &specs(2),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }),
        &mut wf,
        vec![],
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 0);
    assert_eq!(r.cache_misses, 0);
    // A run that completed nothing has no makespan and no queue wait:
    // explicit zeros, not clock residue (regression).
    assert_eq!(r.makespan_secs, 0.0);
    assert_eq!(r.mean_queue_wait_secs, 0.0);
    assert!(r.worker_busy_frac.iter().all(|b| *b == 0.0));
}

#[test]
fn busy_fractions_are_sane() {
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let jobs: Vec<(u64, u64)> = (0..12).map(|i| (i, 100)).collect();
    let r = run_threaded(
        &specs(3),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }),
        &mut wf,
        arrivals(task, &jobs, 0.5),
        &RunMeta::default(),
    );
    assert_eq!(r.worker_busy_frac.len(), 3);
    for b in &r.worker_busy_frac {
        assert!((0.0..=1.0).contains(b), "busy {b}");
    }
    assert!(
        r.worker_busy_frac.iter().any(|b| *b > 0.0),
        "someone must have worked"
    );
}
