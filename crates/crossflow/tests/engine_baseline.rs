//! End-to-end engine tests under the Crossflow Baseline allocator.

use crossbid_crossflow::{
    run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec, Payload, ResourceRef,
    RunMeta, RunSpec, SinkTask, TaskId, WorkerSpec, Workflow,
};
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

/// A single-task workflow whose task is a sink that records payloads.
fn sink_workflow() -> (Workflow, TaskId) {
    let mut wf = Workflow::new();
    let sink = wf.add_sink("scan");
    (wf, sink)
}

fn arrivals_for(task: TaskId, jobs: &[(u64, u64)]) -> Vec<Arrival> {
    jobs.iter()
        .enumerate()
        .map(|(i, (rid, mb))| Arrival {
            at: SimTime::from_millis(i as u64 * 10),
            spec: JobSpec::scanning(task, res(*rid, *mb), Payload::Index(*rid)),
        })
        .collect()
}

#[test]
fn single_job_single_worker() {
    let specs = specs(1);
    let mut cluster = Cluster::new(&specs, &EngineConfig::ideal());
    let (mut wf, task) = sink_workflow();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals_for(task, &[(1, 100)]),
        &EngineConfig::ideal(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.cache_misses, 1);
    assert_eq!(r.cache_hits, 0);
    assert!((r.data_load_mb - 100.0).abs() < 1e-9);
    // 100 MB at 10 MB/s download + 100 MB at 100 MB/s scan = 11 s.
    assert!(
        (r.makespan_secs - 11.0).abs() < 0.05,
        "makespan {}",
        r.makespan_secs
    );
    // Resource is now cached.
    assert!(cluster
        .node(crossbid_crossflow::WorkerId(0))
        .holds(ObjectId(1)));
}

#[test]
fn repeated_resource_hits_cache() {
    let specs = specs(1);
    let mut cluster = Cluster::new(&specs, &EngineConfig::ideal());
    let (mut wf, task) = sink_workflow();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals_for(task, &[(1, 100), (1, 100), (1, 100)]),
        &EngineConfig::ideal(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 3);
    assert_eq!(r.cache_misses, 1, "only the first fetch misses");
    assert_eq!(r.cache_hits, 2);
    assert!((r.data_load_mb - 100.0).abs() < 1e-9);
    // 11 s for the first + 2 × 1 s scans.
    assert!((r.makespan_secs - 13.0).abs() < 0.1, "{}", r.makespan_secs);
}

#[test]
fn reject_once_forces_second_offer_acceptance() {
    // Two workers, one job nobody has data for: both reject once, then
    // the first re-offered worker must accept. Everything still
    // completes with exactly one download.
    let specs = specs(2);
    let mut cluster = Cluster::new(&specs, &EngineConfig::ideal());
    let (mut wf, task) = sink_workflow();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals_for(task, &[(7, 50)]),
        &EngineConfig::ideal(),
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.cache_misses, 1);
    assert!((r.data_load_mb - 50.0).abs() < 1e-9);
}

#[test]
fn locality_attracts_repeat_jobs_to_cache_owner() {
    // Worker 0 holds repository 1. With arrivals spaced so that
    // worker 0 is idle when each job is (re-)offered, the reject-once
    // rule routes every job to the cache owner: other workers decline
    // (no data), worker 0 accepts. (When the owner is *busy*, the
    // Baseline clones redundantly — the §4 weakness — covered by
    // `busy_owner_forces_redundant_clone` below.)
    let cfg = EngineConfig::ideal();
    let all = specs(2);
    let mut cluster = Cluster::new(&all, &cfg);
    // Warm worker 0's cache directly.
    cluster
        .node_mut(crossbid_crossflow::WorkerId(0))
        .store
        .insert(ObjectId(1), 50_000_000, SimTime::ZERO);

    let (mut wf, task) = sink_workflow();
    let arrivals: Vec<Arrival> = (0..4)
        .map(|i| Arrival {
            at: SimTime::from_secs(i * 2),
            spec: JobSpec::scanning(task, res(1, 50), Payload::Index(1)),
        })
        .collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 4);
    assert_eq!(
        r.cache_misses, 0,
        "worker 0 holds the repo; locality should route all jobs there"
    );
    assert_eq!(r.data_load_mb, 0.0);
}

#[test]
fn busy_owner_forces_redundant_clone() {
    // The §4 weakness: "it is likely there will be redundant clones of
    // the same repository if a node is offered a job it has previously
    // seen, even though some other node has that resource locally but
    // is currently occupied." Tight arrivals keep the cache owner busy
    // so the other worker must clone.
    let cfg = EngineConfig::ideal();
    let mut cluster = Cluster::new(&specs(2), &cfg);
    cluster
        .node_mut(crossbid_crossflow::WorkerId(0))
        .store
        .insert(ObjectId(1), 50_000_000, SimTime::ZERO);
    let (mut wf, task) = sink_workflow();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals_for(task, &[(1, 50), (1, 50), (1, 50), (1, 50)]),
        &cfg,
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 4);
    assert!(
        r.cache_misses >= 1,
        "busy owner should force at least one redundant clone"
    );
    assert!(cluster
        .node(crossbid_crossflow::WorkerId(1))
        .holds(ObjectId(1)));
}

#[test]
fn downstream_jobs_flow_through_pipeline() {
    use crossbid_crossflow::task::FnTask;
    // Tasks get sequential ids, so the sink added second is TaskId(1).
    let analyze = TaskId(1);
    let mut wf = Workflow::new();
    let search = wf.add_task(
        "search",
        Box::new(FnTask(
            move |job: &crossbid_crossflow::Job, _ctx: &_, out: &mut Vec<JobSpec>| {
                // Each search emits two analysis jobs on the same repo.
                if let Some(r) = job.resource {
                    for k in 0..2 {
                        out.push(JobSpec {
                            task: analyze,
                            resource: Some(r),
                            work_bytes: r.bytes / 2,
                            cpu_secs: 0.0,
                            payload: Payload::Pair(k, r.id.0),
                            origin: None,
                            dag: None,
                        });
                    }
                }
            },
        )),
    );
    let sink = wf.add_sink("analyze");
    assert_eq!(sink, analyze);

    let specs = specs(2);
    let mut cluster = Cluster::new(&specs, &EngineConfig::ideal());
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals_for(search, &[(1, 10), (2, 10)]),
        &EngineConfig::ideal(),
        &RunMeta::default(),
    );
    let r = &out.record;
    // 2 search jobs + 4 downstream analysis jobs.
    assert_eq!(r.jobs_completed, 6);
    let sink_logic = wf.logic_as::<SinkTask>(sink).unwrap();
    assert_eq!(sink_logic.len(), 4);
}

#[test]
fn session_iterations_warm_the_caches() {
    let mut session = RunSpec::builder()
        .workers(specs(2))
        .engine(EngineConfig::ideal())
        .names("all-equal", "test")
        .seed(42)
        .build()
        .sim();
    let (mut wf, task) = sink_workflow();
    let jobs = [(1u64, 50u64), (2, 50), (3, 50), (4, 50)];
    let r1 = session
        .run_iteration(&mut wf, &BaselineAllocator, arrivals_for(task, &jobs))
        .record;
    let r2 = session
        .run_iteration(&mut wf, &BaselineAllocator, arrivals_for(task, &jobs))
        .record;
    assert_eq!(r1.iteration, 0);
    assert_eq!(r2.iteration, 1);
    assert_eq!(r1.cache_misses, 4, "cold first iteration");
    assert!(
        r2.cache_misses < 4,
        "warm caches must produce hits (got {} misses)",
        r2.cache_misses
    );
    assert!(r2.data_load_mb < r1.data_load_mb);
    assert_eq!(session.iterations_run(), 2);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let cfg = EngineConfig::default(); // with noise and jitter
        let mut cluster = Cluster::new(&specs(3), &cfg);
        let (mut wf, task) = sink_workflow();
        let meta = RunMeta {
            seed,
            ..RunMeta::default()
        };
        run_workflow(
            &mut cluster,
            &mut wf,
            &BaselineAllocator,
            arrivals_for(task, &[(1, 200), (2, 100), (1, 200), (3, 300), (2, 100)]),
            &cfg,
            &meta,
        )
        .record
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.cache_misses, b.cache_misses);
    assert_eq!(a.control_messages, b.control_messages);
    assert_ne!(
        a.makespan_secs.to_bits(),
        c.makespan_secs.to_bits(),
        "different seeds should perturb the run"
    );
}

#[test]
fn many_jobs_balance_across_workers() {
    let cfg = EngineConfig::ideal();
    let mut cluster = Cluster::new(&specs(4), &cfg);
    let (mut wf, task) = sink_workflow();
    let jobs: Vec<(u64, u64)> = (0..40).map(|i| (i as u64, 20u64)).collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals_for(task, &jobs),
        &cfg,
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 40);
    // All four workers did something.
    for (i, b) in r.worker_busy_frac.iter().enumerate() {
        assert!(*b > 0.0, "worker {i} never worked");
    }
    // Pull-based balancing: no worker hogs everything.
    assert!(r.utilization_spread() < 0.9);
}

#[test]
fn cpu_only_jobs_need_no_data() {
    let cfg = EngineConfig::ideal();
    let mut cluster = Cluster::new(&specs(2), &cfg);
    let (mut wf, task) = sink_workflow();
    let arrivals: Vec<Arrival> = (0..6)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            spec: JobSpec::compute(task, 1.0, Payload::Index(i)),
        })
        .collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    );
    let r = &out.record;
    assert_eq!(r.jobs_completed, 6);
    assert_eq!(r.cache_misses, 0);
    assert_eq!(r.data_load_mb, 0.0);
    // 6 × 1 s jobs on 2 workers ≈ 3 s.
    assert!((r.makespan_secs - 3.0).abs() < 0.2, "{}", r.makespan_secs);
}

#[test]
fn speed_learning_persists_across_session_iterations() {
    use crossbid_net::NoiseModel;
    // Actual speeds run at ~half the nominal (uniform 0.4-0.6 noise);
    // with §6.4 learning on, the believed network speed after a warm
    // iteration converges toward the observed ~half-speed.
    let cfg = EngineConfig {
        noise: NoiseModel::Uniform { lo: 0.4, hi: 0.6 },
        speed_learning: true,
        ..EngineConfig::ideal()
    };
    let mut session = RunSpec::builder()
        .workers(specs(2))
        .engine(cfg)
        .names("learn", "test")
        .seed(77)
        .build()
        .sim();
    let (mut wf, task) = sink_workflow();
    let jobs: Vec<(u64, u64)> = (0..10).map(|i| (i, 100)).collect();
    session.run_iteration(&mut wf, &BaselineAllocator, arrivals_for(task, &jobs));
    for w in 0..2u32 {
        let node = session.cluster().node(crossbid_crossflow::WorkerId(w));
        let believed = node.believed_net(true).as_mb_per_sec();
        let nominal = node.spec.net.as_mb_per_sec();
        if node.net_tracker.count() > 0 {
            assert!(
                believed < nominal * 0.75,
                "worker {w}: believed {believed:.1} should reflect the throttled actual (~{:.1})",
                nominal * 0.5
            );
        }
    }
}
