//! Tracing integration: the trace must reconstruct the schedule the
//! engine actually executed.

use crossbid_crossflow::{
    run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec, Payload, ResourceRef,
    RunMeta, TraceKind, WorkerSpec, Workflow,
};
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn run_traced(jobs: &[(u64, u64)]) -> crossbid_crossflow::RunOutput {
    let cfg = EngineConfig {
        trace: true,
        ..EngineConfig::ideal()
    };
    let mut cluster = Cluster::new(&specs(2), &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let arrivals: Vec<Arrival> = jobs
        .iter()
        .enumerate()
        .map(|(i, (rid, mb))| Arrival {
            at: SimTime::from_secs(i as u64 * 5),
            spec: JobSpec::scanning(
                task,
                ResourceRef {
                    id: ObjectId(*rid),
                    bytes: mb * 1_000_000,
                },
                Payload::Index(*rid),
            ),
        })
        .collect();
    run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    )
}

#[test]
fn trace_covers_every_job() {
    let out = run_traced(&[(1, 100), (2, 50), (1, 100), (3, 20)]);
    let phases = out.trace.job_phases();
    assert_eq!(phases.len(), 4);
    // Sum of phase durations must not exceed the makespan per job.
    for p in &phases {
        assert!(p.wait_secs >= 0.0);
        assert!(p.fetch_secs + p.proc_secs <= out.record.makespan_secs + 1e-6);
    }
    // Fetched events equal cache misses.
    let fetches = out
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Fetched)
        .count() as u64;
    assert_eq!(fetches, out.record.cache_misses);
}

#[test]
fn cache_hit_jobs_show_zero_fetch_phase() {
    let out = run_traced(&[(1, 100), (1, 100), (1, 100)]);
    let phases = out.trace.job_phases();
    let zero_fetch = phases.iter().filter(|p| p.fetch_secs == 0.0).count();
    assert_eq!(
        zero_fetch as u64, out.record.cache_hits,
        "exactly the cache hits skip the fetch phase"
    );
}

#[test]
fn phase_times_match_the_cost_model() {
    // One 100 MB job on a 10 MB/s, 100 MB/s worker: 10 s fetch, 1 s
    // scan.
    let out = run_traced(&[(1, 100)]);
    let p = out.trace.job_phases()[0];
    assert!((p.fetch_secs - 10.0).abs() < 1e-6, "fetch {}", p.fetch_secs);
    assert!((p.proc_secs - 1.0).abs() < 1e-6, "proc {}", p.proc_secs);
}

#[test]
fn gantt_renders_all_workers() {
    let out = run_traced(&[(1, 100), (2, 100), (3, 100), (4, 100)]);
    let g = out.trace.gantt(2, 60);
    assert!(g.contains("w0"));
    assert!(g.contains("w1"));
    assert!(g.contains('#'), "{g}");
}

#[test]
fn tracing_off_by_default() {
    let cfg = EngineConfig::ideal();
    let mut cluster = Cluster::new(&specs(1), &cfg);
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        vec![Arrival {
            at: SimTime::ZERO,
            spec: JobSpec::compute(task, 1.0, Payload::None),
        }],
        &cfg,
        &RunMeta::default(),
    );
    assert!(out.trace.is_empty());
}
