//! End-to-end atomization tests: task DAGs through the sim engine
//! (and, mirrored below, the threaded runtime) — gating order, output
//! crediting, and the speculative straggler race.

use crossbid_crossflow::{
    run_threaded_output, run_workflow, Arrival, AtomizeConfig, BaselineAllocator, Cluster,
    EngineConfig, JobSpec, ResourceRef, RunMeta, SchedEventKind, TaskDag, TaskId, TaskNode,
    ThreadedConfig, ThreadedScheduler, WorkerSpec, Workflow,
};
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn node(preds: u64, input: Option<ResourceRef>, output: ResourceRef, cpu_secs: f64) -> TaskNode {
    TaskNode {
        preds,
        input,
        output,
        work_bytes: input.map_or(0, |r| r.bytes),
        cpu_secs,
    }
}

fn sink_workflow() -> (Workflow, TaskId) {
    let mut wf = Workflow::new();
    let sink = wf.add_sink("scan");
    (wf, sink)
}

fn traced_ideal() -> EngineConfig {
    EngineConfig {
        trace: true,
        ..EngineConfig::ideal()
    }
}

/// source(external repo) → two mid tasks (predecessor outputs) → sink.
fn diamond() -> TaskDag {
    TaskDag::new(vec![
        node(0b0, Some(res(1, 100)), res(100, 10), 0.0),
        node(0b1, Some(res(100, 10)), res(101, 10), 1.0),
        node(0b1, Some(res(100, 10)), res(102, 10), 1.0),
        node(0b110, Some(res(101, 10)), res(103, 1), 0.5),
    ])
    .unwrap()
}

#[test]
fn engine_runs_a_diamond_dag_with_gating_and_output_credit() {
    let specs: Vec<WorkerSpec> = (0..2)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(100.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect();
    let cfg = traced_ideal();
    let mut cluster = Cluster::new(&specs, &cfg);
    let (mut wf, task) = sink_workflow();
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::atomized(task, diamond()),
    }];
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    );
    // Four task jobs, all complete; the root never enters allocation.
    assert_eq!(out.record.jobs_completed, 4);
    assert_eq!(out.sched_log.task_offers(), 4);
    assert_eq!(out.sched_log.task_dones(), 4);
    assert_eq!(out.sched_log.spec_launches(), 0);
    assert_eq!(out.sched_log.submissions(), 4);

    // Gating: every TaskOffer's predecessors are already done.
    let mut done = 0u64;
    for e in out.sched_log.events() {
        match e.kind {
            SchedEventKind::TaskOffer { preds, .. } => {
                assert_eq!(preds & !done, 0, "offer before predecessor: {e:?}");
            }
            SchedEventKind::TaskDone { task, .. } => done |= 1 << task,
            _ => {}
        }
    }
    assert_eq!(done, 0b1111);

    // Output crediting: some worker holds the sink task's artifact.
    let held = (0..2).any(|w| {
        cluster
            .node(crossbid_crossflow::WorkerId(w))
            .holds(ObjectId(103))
    });
    assert!(held, "sink output was not credited to any worker store");
}

#[test]
fn engine_speculation_rescues_a_straggling_task() {
    // Worker 1 is pathologically slow; six independent one-second
    // tasks. The fast worker's completions establish the median, the
    // sweep replicates the slow primary, and the replica's win cancels
    // it — the run must finish far sooner than the straggler would.
    let specs = vec![
        WorkerSpec::builder("fast")
            .net_mbps(100.0)
            .rw_mbps(100.0)
            .storage_gb(10.0)
            .build(),
        WorkerSpec::builder("slow")
            .net_mbps(100.0)
            .rw_mbps(100.0)
            .storage_gb(10.0)
            .cpu_factor(400.0)
            .build(),
    ];
    let tasks: Vec<TaskNode> = (0..6)
        .map(|i| node(0, None, res(200 + i, 1), 1.0))
        .collect();
    let dag = TaskDag::new(tasks).unwrap();
    let cfg = EngineConfig {
        atomize: AtomizeConfig {
            spec_factor: 2.0,
            spec_check_secs: 1.0,
            min_completed_for_spec: 3,
            ..AtomizeConfig::default()
        },
        ..traced_ideal()
    };
    let mut cluster = Cluster::new(&specs, &cfg);
    let (mut wf, task) = sink_workflow();
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::atomized(task, dag),
    }];
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    );
    assert!(
        out.sched_log.spec_launches() >= 1,
        "no speculation fired: {:?}",
        out.sched_log.events().len()
    );
    assert_eq!(
        out.sched_log.spec_cancels(),
        out.sched_log.spec_launches(),
        "every decided race cancels exactly one loser"
    );
    assert_eq!(out.sched_log.task_dones(), 6, "every task completes once");
    assert!(
        out.record.makespan_secs < 100.0,
        "speculation failed to rescue the straggler: makespan {}",
        out.record.makespan_secs
    );
}

#[test]
fn engine_release_all_mutation_breaks_gating_observably() {
    // With the gate removed every task is offered at registration —
    // the log must show successors offered before their predecessors
    // completed (the oracle turns this into a violation; here we just
    // confirm the mutation is visible in the vocabulary).
    let specs = vec![WorkerSpec::builder("w0")
        .net_mbps(100.0)
        .rw_mbps(100.0)
        .storage_gb(10.0)
        .build()];
    let cfg = EngineConfig {
        atomize: AtomizeConfig {
            release_all: true,
            ..AtomizeConfig::default()
        },
        ..traced_ideal()
    };
    let mut cluster = Cluster::new(&specs, &cfg);
    let (mut wf, task) = sink_workflow();
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::atomized(task, diamond()),
    }];
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.sched_log.task_offers(), 4, "all offered at once");
    let mut done = 0u64;
    let mut violated = false;
    for e in out.sched_log.events() {
        match e.kind {
            SchedEventKind::TaskOffer { preds, .. } => violated |= preds & !done != 0,
            SchedEventKind::TaskDone { task, .. } => done |= 1 << task,
            _ => {}
        }
    }
    assert!(violated, "mutation left no trace in the log");
    assert_eq!(out.record.jobs_completed, 4, "the run still drains");
}

/// Fast threaded config: 1 virtual second = 1 ms real.
fn threaded_cfg(atomize: AtomizeConfig) -> ThreadedConfig {
    ThreadedConfig {
        time_scale: 1e-3,
        scheduler: ThreadedScheduler::Bidding { window_secs: 0.5 },
        seed: 11,
        trace: true,
        atomize,
        ..ThreadedConfig::default()
    }
}

#[test]
fn threaded_runs_a_diamond_dag_with_gating() {
    let specs: Vec<WorkerSpec> = (0..2)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(100.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect();
    let (mut wf, task) = sink_workflow();
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::atomized(task, diamond()),
    }];
    let out = run_threaded_output(
        &specs,
        &threaded_cfg(AtomizeConfig::default()),
        &mut wf,
        arrivals,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 4);
    assert_eq!(out.sched_log.task_offers(), 4);
    assert_eq!(out.sched_log.task_dones(), 4);
    assert_eq!(out.sched_log.task_assigns(), 4);
    assert!(out.sched_log.task_bids() >= 4, "each offer draws bids");
    // Gating holds under real threads too: the log is the authority.
    let mut done = 0u64;
    for e in out.sched_log.events() {
        match e.kind {
            SchedEventKind::TaskOffer { preds, .. } => {
                assert_eq!(preds & !done, 0, "offer before predecessor: {e:?}");
            }
            SchedEventKind::TaskDone { task, .. } => done |= 1 << task,
            _ => {}
        }
    }
    assert_eq!(done, 0b1111);
}

#[test]
fn threaded_speculation_rescues_a_straggling_task() {
    let specs = vec![
        WorkerSpec::builder("fast")
            .net_mbps(100.0)
            .rw_mbps(100.0)
            .storage_gb(10.0)
            .build(),
        WorkerSpec::builder("slow")
            .net_mbps(100.0)
            .rw_mbps(100.0)
            .storage_gb(10.0)
            .cpu_factor(400.0)
            .build(),
    ];
    let tasks: Vec<TaskNode> = (0..6)
        .map(|i| node(0, None, res(300 + i, 1), 1.0))
        .collect();
    let dag = TaskDag::new(tasks).unwrap();
    let (mut wf, task) = sink_workflow();
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::atomized(task, dag),
    }];
    // Push scheduling: under bidding the slow worker prices itself out
    // and never creates a straggler; the baseline's blind round-robin
    // is what strands a task on it (same shape as the engine test).
    let out = run_threaded_output(
        &specs,
        &ThreadedConfig {
            scheduler: ThreadedScheduler::Baseline,
            ..threaded_cfg(AtomizeConfig {
                spec_factor: 2.0,
                spec_check_secs: 1.0,
                min_completed_for_spec: 3,
                ..AtomizeConfig::default()
            })
        },
        &mut wf,
        arrivals,
        &RunMeta::default(),
    );
    assert!(
        out.sched_log.spec_launches() >= 1,
        "no speculation fired under the threaded runtime"
    );
    assert_eq!(
        out.sched_log.spec_cancels(),
        out.sched_log.spec_launches(),
        "every decided race cancels exactly one loser"
    );
    assert_eq!(out.sched_log.task_dones(), 6, "every task completes once");
    assert!(
        out.record.makespan_secs < 100.0,
        "speculation failed to rescue the straggler: makespan {}",
        out.record.makespan_secs
    );
}
