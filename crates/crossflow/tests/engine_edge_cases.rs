//! Edge cases of the engine: degenerate workloads, degenerate
//! clusters, and documented behavioural quirks.

use crossbid_crossflow::{
    run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec, Payload, ResourceRef,
    RunMeta, WorkerId, WorkerSpec, Workflow,
};
use crossbid_simcore::SimTime;
use crossbid_storage::{EvictionPolicy, ObjectId};

fn spec(name: &str) -> WorkerSpec {
    WorkerSpec::builder(name)
        .net_mbps(10.0)
        .rw_mbps(100.0)
        .storage_gb(1.0)
        .build()
}

fn run(specs: &[WorkerSpec], arrivals: Vec<Arrival>) -> crossbid_crossflow::RunOutput {
    let cfg = EngineConfig::ideal();
    let mut cluster = Cluster::new(specs, &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    run_workflow(
        &mut cluster,
        &mut wf,
        &BaselineAllocator,
        arrivals,
        &cfg,
        &RunMeta::default(),
    )
}

#[test]
fn empty_arrival_stream() {
    let out = run(&[spec("w0")], vec![]);
    assert_eq!(out.record.jobs_completed, 0);
    assert_eq!(out.record.makespan_secs, 0.0);
    assert!(out.assignments.is_empty());
}

#[test]
fn single_worker_cluster_handles_everything() {
    let arrivals: Vec<Arrival> = (0..10)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            spec: JobSpec::scanning(
                crossbid_crossflow::TaskId(0),
                ResourceRef {
                    id: ObjectId(i % 3),
                    bytes: 10_000_000,
                },
                Payload::Index(i),
            ),
        })
        .collect();
    let out = run(&[spec("solo")], arrivals);
    assert_eq!(out.record.jobs_completed, 10);
    assert_eq!(out.record.cache_misses, 3);
    assert!(out.assignments.iter().all(|(_, w)| *w == WorkerId(0)));
}

#[test]
fn zero_byte_work_jobs_complete_instantly() {
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec {
            task: crossbid_crossflow::TaskId(0),
            resource: None,
            work_bytes: 0,
            cpu_secs: 0.0,
            payload: Payload::None,
            origin: None,
            dag: None,
        },
    }];
    let out = run(&[spec("w0")], arrivals);
    assert_eq!(out.record.jobs_completed, 1);
    assert_eq!(out.record.makespan_secs, 0.0);
}

#[test]
fn resource_larger_than_every_store_passes_through() {
    // 2 GB resource, 1 GB stores: downloaded every time, never cached.
    let big = ResourceRef {
        id: ObjectId(1),
        bytes: 2_000_000_000,
    };
    let arrivals: Vec<Arrival> = (0..3)
        .map(|i| Arrival {
            at: SimTime::from_secs(i * 1000),
            spec: JobSpec::scanning(crossbid_crossflow::TaskId(0), big, Payload::None),
        })
        .collect();
    let out = run(&[spec("w0")], arrivals);
    assert_eq!(out.record.jobs_completed, 3);
    assert_eq!(out.record.cache_misses, 3, "never retained");
    assert!((out.record.data_load_mb - 6000.0).abs() < 1e-6);
}

#[test]
fn same_instant_arrivals_are_processed_fifo() {
    let arrivals: Vec<Arrival> = (0..6)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            spec: JobSpec::compute(crossbid_crossflow::TaskId(0), 1.0, Payload::Index(i)),
        })
        .collect();
    let out = run(&[spec("a"), spec("b")], arrivals);
    assert_eq!(out.record.jobs_completed, 6);
    // Placement order follows job-id order for same-instant arrivals.
    let ids: Vec<u64> = out.assignments.iter().map(|(j, _)| j.0).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
}

#[test]
fn eviction_policy_is_honoured_per_spec() {
    // A worker configured FIFO must evict insertion-order under churn.
    let mut s = spec("fifo");
    s.eviction = EvictionPolicy::Fifo;
    s.storage_bytes = 25_000_000; // two 10 MB repos max
    let mk = |rid: u64, at: u64| Arrival {
        at: SimTime::from_secs(at),
        spec: JobSpec::scanning(
            crossbid_crossflow::TaskId(0),
            ResourceRef {
                id: ObjectId(rid),
                bytes: 10_000_000,
            },
            Payload::None,
        ),
    };
    // Insert 1, 2 (touch 1 again), insert 3 → FIFO evicts 1 even
    // though it was recently used.
    let out = run(
        &[s],
        vec![mk(1, 0), mk(2, 10), mk(1, 20), mk(3, 30), mk(1, 40)],
    );
    assert_eq!(out.record.jobs_completed, 5);
    // Misses: 1, 2, 3, and then 1 again (evicted by FIFO) = 4.
    assert_eq!(out.record.cache_misses, 4);
}

#[test]
fn many_same_instant_jobs_do_not_blow_the_event_cap() {
    let arrivals: Vec<Arrival> = (0..500)
        .map(|i| Arrival {
            at: SimTime::ZERO,
            spec: JobSpec::compute(crossbid_crossflow::TaskId(0), 0.01, Payload::Index(i)),
        })
        .collect();
    let out = run(&[spec("a"), spec("b"), spec("c")], arrivals);
    assert_eq!(out.record.jobs_completed, 500);
    assert!(
        out.events < 100_000,
        "event count stays linear: {}",
        out.events
    );
}

#[test]
fn heterogeneous_cpu_factor_slows_processing() {
    let mut slow_cpu = spec("slowcpu");
    slow_cpu.cpu_factor = 4.0;
    let arrivals = vec![Arrival {
        at: SimTime::ZERO,
        spec: JobSpec::compute(crossbid_crossflow::TaskId(0), 2.0, Payload::None),
    }];
    let out = run(&[slow_cpu], arrivals);
    // 2 CPU seconds × factor 4 = 8 s.
    assert!((out.record.makespan_secs - 8.0).abs() < 1e-6);
}
