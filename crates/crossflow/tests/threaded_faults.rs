//! Fault injection on the *threaded* runtime: real worker threads
//! crash (go silent, lose queue + store) and recover mid-run, and the
//! master's detection-delayed redistribution must mask it all. These
//! are the same scenarios `tests/tests/fault_tolerance.rs` runs on
//! the simulation engine.

use crossbid_crossflow::{
    run_threaded_output, Arrival, FaultPlan, JobSpec, Payload, ResourceRef, RunMeta, TaskId,
    ThreadedConfig, ThreadedScheduler, WorkerId, WorkerSpec, Workflow,
};
use crossbid_net::NoiseModel;
use crossbid_simcore::{SimDuration, SimTime};
use crossbid_storage::ObjectId;

/// Local shim over the non-deprecated entry point: these tests only
/// need the record.
fn run_threaded(
    specs: &[WorkerSpec],
    cfg: &ThreadedConfig,
    wf: &mut Workflow,
    arrivals: Vec<Arrival>,
    meta: &RunMeta,
) -> crossbid_metrics::RunRecord {
    run_threaded_output(specs, cfg, wf, arrivals, meta).record
}

/// Record + scheduler log, via the non-deprecated entry point.
fn run_threaded_traced(
    specs: &[WorkerSpec],
    cfg: &ThreadedConfig,
    wf: &mut Workflow,
    arrivals: Vec<Arrival>,
    meta: &RunMeta,
) -> (crossbid_metrics::RunRecord, crossbid_crossflow::SchedLog) {
    let out = run_threaded_output(specs, cfg, wf, arrivals, meta);
    (out.record, out.sched_log)
}

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

/// `jobs` arrivals, all over the same hot repo so the warm worker's
/// zero-transfer bids concentrate the queue on it — the worker we
/// then crash.
fn hot_repo_arrivals(task: TaskId, jobs: usize, spacing_secs: f64) -> Vec<Arrival> {
    (0..jobs)
        .map(|i| Arrival {
            at: SimTime::from_secs_f64(i as f64 * spacing_secs),
            spec: JobSpec::scanning(task, res(1, 100), Payload::Index(i as u64)),
        })
        .collect()
}

fn cfg(scheduler: ThreadedScheduler, faults: FaultPlan) -> ThreadedConfig {
    ThreadedConfig {
        // The acceptance bar: fault runs must terminate promptly even
        // at the *default* (slowest) compression.
        time_scale: 1e-3,
        noise: NoiseModel::None,
        speed_learning: true,
        scheduler,
        seed: 7,
        faults,
        ..ThreadedConfig::default()
    }
}

#[test]
fn crash_mid_run_redistributes_and_completes_everything() {
    // All twelve jobs chase repo 1 and arrive within 5.5 virtual
    // seconds — far faster than the ~10 s fetch — so by the crash at
    // t=6 every worker (worker 0 included: it wins the all-equal
    // first-contest tie on lowest id) is holding assigned,
    // unfinished work to strand.
    let faults = FaultPlan::new().crash_at(SimTime::from_secs(6), WorkerId(0));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let (r, log) = run_threaded_traced(
        &specs(3),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }, faults),
        &mut wf,
        hot_repo_arrivals(task, 12, 0.5),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 12, "every created job must complete");
    assert_eq!(r.worker_crashes, 1);
    assert!(
        r.jobs_redistributed > 0,
        "the dead worker's backlog must be reclaimed"
    );
    assert_eq!(log.crashes(), 1);
    assert_eq!(log.redistributions() as u64, r.jobs_redistributed);
    assert!(
        log.no_assignments_to_detected_dead(2.0),
        "post-detection assignments must avoid the dead worker"
    );
    assert!(r.recovery_secs > 0.0, "downtime runs to end of run");
}

#[test]
fn crash_and_recovery_completes_everything() {
    // Recovery lands while the survivors are still churning through
    // the redistributed backlog, so the rejoined worker takes part in
    // the tail of the run.
    let faults = FaultPlan::new()
        .crash_at(SimTime::from_secs(6), WorkerId(0))
        .recover_at(SimTime::from_secs(12), WorkerId(0));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let (r, log) = run_threaded_traced(
        &specs(3),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }, faults),
        &mut wf,
        hot_repo_arrivals(task, 12, 0.5),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 12);
    assert_eq!(r.worker_crashes, 1);
    assert_eq!(log.crashes(), 1);
    assert_eq!(log.recoveries(), 1);
    // Downtime is the crash→recover span, ~6 virtual seconds; real
    // scheduling jitter only ever lengthens the measured window.
    assert!(
        r.recovery_secs >= 4.0,
        "downtime should span the outage, got {}",
        r.recovery_secs
    );
    assert!(log.no_assignments_to_detected_dead(2.0));
}

#[test]
fn baseline_survives_crash_too() {
    let faults = FaultPlan::new().crash_at(SimTime::from_secs(8), WorkerId(1));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let r = run_threaded(
        &specs(3),
        &cfg(ThreadedScheduler::Baseline, faults),
        &mut wf,
        hot_repo_arrivals(task, 10, 1.0),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 10);
    assert_eq!(r.worker_crashes, 1);
}

#[test]
fn all_workers_dead_without_recovery_terminates() {
    // Both workers die early with no recovery scheduled: the run must
    // give up with a partial record instead of hanging forever.
    let faults = FaultPlan::new()
        .with_detection_delay(SimDuration::from_secs(1))
        .crash_at(SimTime::from_secs(3), WorkerId(0))
        .crash_at(SimTime::from_secs(3), WorkerId(1));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let r = run_threaded(
        &specs(2),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }, faults),
        &mut wf,
        hot_repo_arrivals(task, 8, 1.0),
        &RunMeta::default(),
    );
    assert!(
        r.jobs_completed < 8,
        "cluster died before the work was done"
    );
    assert_eq!(r.worker_crashes, 2);
    assert!(r.recovery_secs > 0.0, "both workers stay down to the end");
}

#[test]
fn all_workers_down_waits_for_recovery() {
    // Mirror of the sim-engine test: both die, one comes back, and the
    // stranded jobs complete after the recovery.
    let faults = FaultPlan::new()
        .with_detection_delay(SimDuration::from_secs(1))
        .crash_at(SimTime::from_secs(2), WorkerId(0))
        .crash_at(SimTime::from_secs(2), WorkerId(1))
        .recover_at(SimTime::from_secs(50), WorkerId(0));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let (r, log) = run_threaded_traced(
        &specs(2),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }, faults),
        &mut wf,
        hot_repo_arrivals(task, 4, 1.0),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 4);
    assert!(
        r.makespan_secs >= 50.0,
        "work can only finish after the recovery at t=50 (got {})",
        r.makespan_secs
    );
    assert_eq!(log.recoveries(), 1);
}

#[test]
fn crash_before_any_arrival_yields_zero_metrics() {
    // A cluster that is dead on arrival completes nothing — and a
    // zero-completion run must report explicit zeros, not clock
    // residue (regression: makespan used to echo scheduling jitter).
    let faults = FaultPlan::new()
        .with_detection_delay(SimDuration::from_secs(1))
        .crash_at(SimTime::ZERO, WorkerId(0));
    let mut wf = Workflow::new();
    let task = wf.add_sink("scan");
    let r = run_threaded(
        &specs(1),
        &cfg(ThreadedScheduler::Bidding { window_secs: 1.0 }, faults),
        &mut wf,
        hot_repo_arrivals(task, 3, 1.0),
        &RunMeta::default(),
    );
    assert_eq!(r.jobs_completed, 0);
    assert_eq!(r.makespan_secs, 0.0);
    assert_eq!(r.mean_queue_wait_secs, 0.0);
    assert!(r.worker_busy_frac.iter().all(|b| *b == 0.0));
}
