//! The replicated scheduler log and its pure state machine — the
//! machinery that kills the master single point of failure.
//!
//! The design follows the Raft-on-the-coordinator shape: the master is
//! a *state machine* whose only durable truth is the [`SchedLog`].
//! Every scheduling **decision** (opening a contest, assigning,
//! offering, closing) must be appended — and acknowledged by a quorum
//! of standby replicas — *before* the master acts on it
//! (commit-before-act). Ingest facts (submissions, bids, completions,
//! crash notices) are appended as they are observed. When the leader
//! dies, an elected standby holds every committed entry by
//! construction; it rebuilds scheduler state with [`SchedState::replay`]
//! and resumes, re-offering whatever the log shows as submitted but
//! unplaced.
//!
//! Two consequences fall out of commit-before-act:
//!
//! * a decision the leader died *during* is simply never performed —
//!   the entry is truncated, no message was sent, and the job it
//!   concerned is still unplaced in the replayed state;
//! * a decision the log *does* hold was quorum-acked, so the successor
//!   honours it — in-flight assignments keep their leases, acks and
//!   retransmission timers instead of being double-issued.
//!
//! The replica group itself is modeled, not simulated: follower acks
//! are assumed instantaneous and the election gap is a configured
//! constant ([`MasterFaultPlan::election_timeout_secs`]). The
//! determinism axis that matters — *where in the decision stream the
//! leader dies* — is exact: crashes are keyed to 1-based append
//! indices, which both runtimes share bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};

use crossbid_simcore::SimTime;

use crate::faults::MasterFaultPlan;
use crate::job::{JobId, ShardId, WorkerId};
use crate::trace::{SchedEvent, SchedEventKind, SchedLog};

/// Is this event a scheduler *decision* (commit-before-act: truncated
/// if the leader dies during the append) as opposed to an observed
/// *fact* (committed on arrival, survives the crash)? `SpillOut` is a
/// decision: the hand-off must not leave the shard unless the entry is
/// quorum-committed, or a leader crash could double-run the job (the
/// successor would re-offer it locally while the peer also runs it).
pub fn is_decision(kind: &SchedEventKind) -> bool {
    matches!(
        kind,
        SchedEventKind::ContestOpened
            | SchedEventKind::Assigned
            | SchedEventKind::ContestClosed { .. }
            | SchedEventKind::Offered
            | SchedEventKind::SpillOut { .. }
            | SchedEventKind::TaskOffer { .. }
            | SchedEventKind::TaskAssign { .. }
            | SchedEventKind::SpecLaunch { .. }
            | SchedEventKind::SpecCancel { .. }
    )
}

/// What happened to one append attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Quorum-acked; the caller may act on the entry.
    Committed,
    /// The leader died during this append. `truncated` tells the
    /// caller whether the entry was lost with it (a decision — do NOT
    /// act) or had already committed (an ingest fact — the fact
    /// stands, but the master is dead and a standby must take over).
    LeaderCrashed {
        /// True iff the entry is absent from the committed log.
        truncated: bool,
    },
}

/// Per-job state as reconstructed from the committed log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobState {
    /// A `Submitted` entry was committed.
    pub submitted: bool,
    /// A `Completed` entry was committed.
    pub completed: bool,
    /// The worker currently holding the job's placement (assignment or
    /// offer), if any.
    pub placed_on: Option<WorkerId>,
    /// The current placement was acked by the worker.
    pub acked: bool,
    /// A bidding contest for this job is open.
    pub contest_open: bool,
    /// Bids received for the currently/last open contest.
    pub bids: Vec<(WorkerId, f64)>,
    /// Last worker that rejected this job (drives the re-offer
    /// tie-break; cleared from relevance on completion).
    pub last_rejector: Option<WorkerId>,
    /// Times the job bounced off a dead worker.
    pub redistributions: u64,
    /// `Some(peer)` when this shard spilled the job to `peer` — the
    /// job's terminal state *here*; the peer's log owns it now.
    pub spilled_to: Option<ShardId>,
    /// `Some(home)` when the job entered this shard by spill-in.
    pub spilled_from: Option<ShardId>,
    /// A `SpecCancel` entry was committed: the job is the losing
    /// attempt of a speculated task — terminal here, never re-offered.
    pub cancelled: bool,
}

/// The pure scheduler state machine: `replay(log)` folds every
/// committed [`SchedEvent`] through [`apply`](Self::apply). The
/// failover path and the property tests share this single definition,
/// so "what the successor believes" is exactly "what the log says".
///
/// Maps are `BTree*` so iteration (and therefore re-offer order after
/// failover) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedState {
    jobs: BTreeMap<JobId, JobState>,
    dead: BTreeSet<WorkerId>,
    /// Workers told to drain: finishing their queues, ineligible for
    /// new placements.
    draining: BTreeSet<WorkerId>,
    /// Workers removed from the roster for good.
    removed: BTreeSet<WorkerId>,
    /// Leadership term last seen in the log (0 before any election
    /// entry; the first leader is term 1).
    pub term: u32,
    /// Committed `Submitted` entries.
    pub submissions: u64,
    /// Committed `Completed` entries.
    pub completions: u64,
    /// Committed `SpillOut` entries (jobs handed to peer shards).
    pub spill_outs: u64,
    /// Committed `SpillIn` entries (jobs accepted from peer shards).
    pub spill_ins: u64,
    /// Data-plane replica sets as reconstructed from committed
    /// `ReplicaAdd`/`ReplicaDrop` entries: object → holders. Empty
    /// sets are dropped, so equality against a live replica map is
    /// exact. (Warm-cache seeding predates the log, so replay starts
    /// from the first logged add.)
    pub replicas: BTreeMap<u64, BTreeSet<WorkerId>>,
    /// Re-replications committed (`RepairStart`) but not yet landed
    /// (`RepairDone`): object → destination worker. A successor
    /// resumes exactly these without double-copying.
    pub repairs_pending: BTreeMap<u64, WorkerId>,
}

impl SchedState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold the committed log into a state.
    pub fn replay<'a>(events: impl IntoIterator<Item = &'a SchedEvent>) -> Self {
        let mut st = Self::new();
        for ev in events {
            st.apply(ev);
        }
        st
    }

    fn job_mut(&mut self, id: JobId) -> &mut JobState {
        self.jobs.entry(id).or_default()
    }

    /// Apply one committed entry.
    pub fn apply(&mut self, ev: &SchedEvent) {
        let worker = ev.worker;
        match ev.kind {
            SchedEventKind::Submitted => {
                if let Some(id) = ev.job {
                    self.job_mut(id).submitted = true;
                    self.submissions += 1;
                }
            }
            SchedEventKind::ContestOpened => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.contest_open = true;
                    j.bids.clear();
                }
            }
            SchedEventKind::BidReceived { estimate_secs } => {
                if let (Some(id), Some(w)) = (ev.job, worker) {
                    self.job_mut(id).bids.push((w, estimate_secs));
                }
            }
            SchedEventKind::ContestClosed { .. } => {
                if let Some(id) = ev.job {
                    self.job_mut(id).contest_open = false;
                }
            }
            SchedEventKind::Assigned | SchedEventKind::Offered => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.placed_on = worker;
                    j.acked = false;
                }
            }
            SchedEventKind::Rejected => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.placed_on = None;
                    j.acked = false;
                    j.last_rejector = worker;
                }
            }
            SchedEventKind::Completed => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.completed = true;
                    self.completions += 1;
                }
            }
            SchedEventKind::Crash => {
                if let Some(w) = worker {
                    self.dead.insert(w);
                }
            }
            SchedEventKind::Recover => {
                if let Some(w) = worker {
                    self.dead.remove(&w);
                }
            }
            SchedEventKind::Redistributed => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.placed_on = None;
                    j.acked = false;
                    j.redistributions += 1;
                }
            }
            SchedEventKind::AssignAcked => {
                if let Some(id) = ev.job {
                    self.job_mut(id).acked = true;
                }
            }
            SchedEventKind::LeaseExpired => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.placed_on = None;
                    j.acked = false;
                }
            }
            SchedEventKind::Resent { .. } => {}
            SchedEventKind::LeaderElected { term } => self.term = term,
            SchedEventKind::FailoverReplayed { .. } => {}
            SchedEventKind::SpillOut { to_shard } => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    j.spilled_to = Some(to_shard);
                    j.placed_on = None;
                    j.acked = false;
                    j.contest_open = false;
                    self.spill_outs += 1;
                }
            }
            SchedEventKind::SpillIn { from_shard } => {
                if let Some(id) = ev.job {
                    let j = self.job_mut(id);
                    // A spill-in is the receiving shard's submission:
                    // the job is now locally allocatable.
                    j.submitted = true;
                    j.spilled_from = Some(from_shard);
                    self.spill_ins += 1;
                }
            }
            SchedEventKind::WorkerJoined => {
                if let Some(w) = worker {
                    self.dead.remove(&w);
                    self.draining.remove(&w);
                    self.removed.remove(&w);
                }
            }
            SchedEventKind::WorkerDraining => {
                if let Some(w) = worker {
                    self.draining.insert(w);
                }
            }
            SchedEventKind::WorkerRemoved => {
                if let Some(w) = worker {
                    self.draining.remove(&w);
                    self.removed.insert(w);
                }
            }
            // Task release/placement markers annotate the ordinary
            // Submitted/Assigned entries of the task's job; the DAG
            // bookkeeping itself is rebuilt by the atomizer from the
            // same entries, so the generic job state needs no extra
            // fields for them.
            SchedEventKind::TaskOffer { .. }
            | SchedEventKind::TaskBid { .. }
            | SchedEventKind::TaskAssign { .. }
            | SchedEventKind::TaskDone { .. }
            | SchedEventKind::SpecLaunch { .. } => {}
            SchedEventKind::SpecCancel { .. } => {
                if let Some(id) = ev.job {
                    // The losing attempt is terminal: strip any live
                    // placement and make sure a successor never
                    // re-offers it.
                    let j = self.job_mut(id);
                    j.cancelled = true;
                    j.placed_on = None;
                    j.acked = false;
                    j.contest_open = false;
                }
            }
            // Peer-fetch traffic is an observed fact about the data
            // plane; placement state is untouched.
            SchedEventKind::FetchReq { .. }
            | SchedEventKind::FetchOk { .. }
            | SchedEventKind::FetchFail { .. } => {}
            SchedEventKind::ReplicaAdd { object } => {
                if let Some(w) = worker {
                    self.replicas.entry(object).or_default().insert(w);
                }
            }
            SchedEventKind::ReplicaDrop { object, .. } => {
                if let Some(w) = worker {
                    if let Some(set) = self.replicas.get_mut(&object) {
                        set.remove(&w);
                        if set.is_empty() {
                            self.replicas.remove(&object);
                        }
                    }
                }
            }
            SchedEventKind::RepairStart { object, .. } => {
                if let Some(dest) = worker {
                    self.repairs_pending.insert(object, dest);
                }
            }
            SchedEventKind::RepairDone { object } => {
                self.repairs_pending.remove(&object);
            }
        }
    }

    /// One job's reconstructed state.
    pub fn job(&self, id: JobId) -> Option<&JobState> {
        self.jobs.get(&id)
    }

    /// The worker currently holding `id`'s placement, if any.
    pub fn placed_on(&self, id: JobId) -> Option<WorkerId> {
        self.jobs.get(&id).and_then(|j| j.placed_on)
    }

    /// Last worker that rejected `id`, if any.
    pub fn last_rejector(&self, id: JobId) -> Option<WorkerId> {
        self.jobs.get(&id).and_then(|j| j.last_rejector)
    }

    /// Is `w` crashed (and not recovered) per the log?
    pub fn is_dead(&self, w: WorkerId) -> bool {
        self.dead.contains(&w)
    }

    /// Is `w` draining (finishing its queue, no new placements)?
    pub fn is_draining(&self, w: WorkerId) -> bool {
        self.draining.contains(&w)
    }

    /// Has `w` been removed from the roster?
    pub fn is_removed(&self, w: WorkerId) -> bool {
        self.removed.contains(&w)
    }

    /// Every submitted, uncompleted job with no current placement —
    /// exactly what a successor must re-enter into allocation. A job
    /// spilled out to a peer shard is *not* unplaced: the peer's log
    /// owns it. Sorted by job id (BTreeMap order) for deterministic
    /// re-offers.
    pub fn unplaced_jobs(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|(_, j)| {
                j.submitted
                    && !j.completed
                    && !j.cancelled
                    && j.placed_on.is_none()
                    && j.spilled_to.is_none()
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Every live placement `(job, worker)` — what a successor must
    /// keep honouring (leases, retries) rather than re-issue.
    pub fn placements(&self) -> Vec<(JobId, WorkerId)> {
        self.jobs
            .iter()
            .filter(|(_, j)| !j.completed)
            .filter_map(|(&id, j)| j.placed_on.map(|w| (id, w)))
            .collect()
    }

    /// Last-rejector pairs for uncompleted jobs, for rebuilding the
    /// re-offer tie-break after failover.
    pub fn rejections(&self) -> Vec<(JobId, WorkerId)> {
        self.jobs
            .iter()
            .filter(|(_, j)| !j.completed)
            .filter_map(|(&id, j)| j.last_rejector.map(|w| (id, w)))
            .collect()
    }
}

/// A [`SchedLog`] behind a quorum-replication discipline plus the
/// [`MasterFaultPlan`] crash schedule. With no crashes armed, `append`
/// is a plain push — the hot path stays identical to a plain traced
/// run.
#[derive(Debug, Clone, Default)]
pub struct ReplicatedLog {
    log: SchedLog,
    crash_at: Vec<u64>,
    next_crash: usize,
    /// Total append *attempts* so far (1-based at comparison time).
    appends: u64,
    term: u32,
}

impl ReplicatedLog {
    /// A replicated log under `plan`'s crash schedule. The first
    /// leader owns term 1.
    pub fn new(plan: &MasterFaultPlan) -> Self {
        ReplicatedLog {
            log: SchedLog::new(),
            crash_at: plan.crash_at.clone(),
            next_crash: 0,
            appends: 0,
            term: 1,
        }
    }

    /// A replication-free log (tracing only; `append` never crashes).
    pub fn plain() -> Self {
        Self::new(&MasterFaultPlan::none())
    }

    /// Append one entry, replicating it to the standby quorum.
    ///
    /// If the crash schedule says the leader dies during this attempt:
    /// a *decision* entry is truncated (never committed — the caller
    /// must not act on it), while an *ingest* fact had already reached
    /// the quorum and commits. Either way the caller must stop acting
    /// as leader and run failover.
    pub fn append(&mut self, ev: SchedEvent) -> AppendOutcome {
        self.appends += 1;
        if self
            .crash_at
            .get(self.next_crash)
            .is_some_and(|&at| self.appends == at)
        {
            self.next_crash += 1;
            let truncated = is_decision(&ev.kind);
            if !truncated {
                self.log.push(ev);
            }
            return AppendOutcome::LeaderCrashed { truncated };
        }
        self.log.push(ev);
        AppendOutcome::Committed
    }

    /// Elect a standby and rebuild state by replay: returns the new
    /// term, the replayed [`SchedState`] and the number of committed
    /// entries replayed. Appends the `LeaderElected` /
    /// `FailoverReplayed` markers (election entries do not count
    /// toward the crash schedule's append indices).
    pub fn failover(&mut self, at: SimTime) -> (u32, SchedState, u64) {
        let entries = self.log.len() as u64;
        let state = SchedState::replay(self.log.events());
        self.term += 1;
        self.log.push(SchedEvent {
            at,
            worker: None,
            job: None,
            kind: SchedEventKind::LeaderElected { term: self.term },
        });
        self.log.push(SchedEvent {
            at,
            worker: None,
            job: None,
            kind: SchedEventKind::FailoverReplayed { entries },
        });
        (self.term, state, entries)
    }

    /// Current leadership term (the first leader is term 1).
    pub fn term(&self) -> u32 {
        self.term
    }

    /// Total append attempts so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The committed log.
    pub fn log(&self) -> &SchedLog {
        &self.log
    }

    /// Take the committed log out (end of run).
    pub fn into_log(self) -> SchedLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sev(at: u64, worker: Option<u32>, job: Option<u64>, kind: SchedEventKind) -> SchedEvent {
        SchedEvent {
            at: SimTime::from_secs(at),
            worker: worker.map(WorkerId),
            job: job.map(JobId),
            kind,
        }
    }

    #[test]
    fn plain_log_commits_everything() {
        let mut rlog = ReplicatedLog::plain();
        for i in 0..5u64 {
            let out = rlog.append(sev(i, None, Some(i), SchedEventKind::Submitted));
            assert_eq!(out, AppendOutcome::Committed);
        }
        assert_eq!(rlog.log().len(), 5);
        assert_eq!(rlog.term(), 1);
        assert_eq!(rlog.into_log().submissions(), 5);
    }

    #[test]
    fn decision_appends_truncate_at_the_crash_index() {
        let plan = MasterFaultPlan::new().crash_at(2);
        let mut rlog = ReplicatedLog::new(&plan);
        assert_eq!(
            rlog.append(sev(0, None, Some(1), SchedEventKind::Submitted)),
            AppendOutcome::Committed
        );
        // Append #2 is a decision: the leader dies mid-append and the
        // entry must not survive.
        assert_eq!(
            rlog.append(sev(0, Some(0), Some(1), SchedEventKind::Offered)),
            AppendOutcome::LeaderCrashed { truncated: true }
        );
        assert_eq!(rlog.log().len(), 1);
        assert_eq!(rlog.log().offers(), 0);
    }

    #[test]
    fn ingest_appends_commit_before_the_crash() {
        let plan = MasterFaultPlan::new().crash_at(1);
        let mut rlog = ReplicatedLog::new(&plan);
        assert_eq!(
            rlog.append(sev(0, None, Some(1), SchedEventKind::Submitted)),
            AppendOutcome::LeaderCrashed { truncated: false }
        );
        assert_eq!(rlog.log().submissions(), 1, "the fact stands");
    }

    #[test]
    fn failover_bumps_term_and_logs_markers() {
        let plan = MasterFaultPlan::new().crash_at(2);
        let mut rlog = ReplicatedLog::new(&plan);
        rlog.append(sev(0, None, Some(1), SchedEventKind::Submitted));
        rlog.append(sev(0, Some(0), Some(1), SchedEventKind::Offered));
        let (term, state, entries) = rlog.failover(SimTime::from_secs(1));
        assert_eq!(term, 2);
        assert_eq!(entries, 1, "only the committed Submitted replays");
        assert_eq!(state.unplaced_jobs(), vec![JobId(1)]);
        assert_eq!(rlog.log().failovers(), 1);
        assert_eq!(rlog.log().replayed_entries(), 1);
        // Election markers don't consume crash-schedule indices.
        assert_eq!(rlog.appends(), 2);
    }

    #[test]
    fn replay_reconstructs_placements_and_rejections() {
        let evs = [
            sev(0, None, Some(1), SchedEventKind::Submitted),
            sev(0, None, Some(2), SchedEventKind::Submitted),
            sev(0, None, Some(3), SchedEventKind::Submitted),
            sev(1, Some(0), Some(1), SchedEventKind::Offered),
            sev(1, Some(0), Some(1), SchedEventKind::Rejected),
            sev(1, Some(1), Some(1), SchedEventKind::Offered),
            sev(2, Some(2), Some(2), SchedEventKind::Offered),
            sev(2, Some(2), Some(2), SchedEventKind::AssignAcked),
            sev(3, Some(2), Some(2), SchedEventKind::Completed),
        ];
        let st = SchedState::replay(evs.iter());
        assert_eq!(st.submissions, 3);
        assert_eq!(st.completions, 1);
        assert_eq!(st.unplaced_jobs(), vec![JobId(3)]);
        assert_eq!(st.placements(), vec![(JobId(1), WorkerId(1))]);
        assert_eq!(st.rejections(), vec![(JobId(1), WorkerId(0))]);
        assert_eq!(st.last_rejector(JobId(1)), Some(WorkerId(0)));
        assert_eq!(st.placed_on(JobId(1)), Some(WorkerId(1)));
        assert!(st.job(JobId(2)).unwrap().acked);
    }

    #[test]
    fn replay_tracks_contests_and_dead_workers() {
        let evs = [
            sev(0, None, Some(1), SchedEventKind::Submitted),
            sev(0, None, Some(1), SchedEventKind::ContestOpened),
            sev(
                0,
                Some(0),
                Some(1),
                SchedEventKind::BidReceived { estimate_secs: 2.0 },
            ),
            sev(1, Some(0), None, SchedEventKind::Crash),
            sev(1, Some(1), None, SchedEventKind::Crash),
            sev(2, Some(1), None, SchedEventKind::Recover),
        ];
        let st = SchedState::replay(evs.iter());
        let j = st.job(JobId(1)).unwrap();
        assert!(j.contest_open);
        assert_eq!(j.bids, vec![(WorkerId(0), 2.0)]);
        assert!(st.is_dead(WorkerId(0)));
        assert!(!st.is_dead(WorkerId(1)));
        // A redistribution strips the placement.
        let mut st = st;
        st.apply(&sev(3, Some(0), Some(1), SchedEventKind::Assigned));
        st.apply(&sev(4, Some(0), Some(1), SchedEventKind::Redistributed));
        assert_eq!(st.placed_on(JobId(1)), None);
        assert_eq!(st.job(JobId(1)).unwrap().redistributions, 1);
        assert_eq!(st.unplaced_jobs(), vec![JobId(1)]);
    }

    #[test]
    fn replay_tracks_spills_and_membership() {
        let evs = [
            sev(0, None, Some(1), SchedEventKind::Submitted),
            sev(0, None, Some(2), SchedEventKind::Submitted),
            sev(
                1,
                None,
                Some(1),
                SchedEventKind::SpillOut {
                    to_shard: ShardId(3),
                },
            ),
            sev(
                2,
                None,
                Some(9),
                SchedEventKind::SpillIn {
                    from_shard: ShardId(2),
                },
            ),
            sev(3, Some(5), None, SchedEventKind::WorkerJoined),
            sev(4, Some(0), None, SchedEventKind::WorkerDraining),
            sev(5, Some(0), None, SchedEventKind::WorkerRemoved),
        ];
        let st = SchedState::replay(evs.iter());
        assert_eq!(st.spill_outs, 1);
        assert_eq!(st.spill_ins, 1);
        // Job 1 left the shard: not unplaced. Job 9 arrived by spill:
        // locally allocatable without a local Submitted. Job 2 is the
        // ordinary unplaced case.
        assert_eq!(st.unplaced_jobs(), vec![JobId(2), JobId(9)]);
        assert_eq!(st.job(JobId(1)).unwrap().spilled_to, Some(ShardId(3)));
        assert_eq!(st.job(JobId(9)).unwrap().spilled_from, Some(ShardId(2)));
        assert!(st.is_draining(WorkerId(0)) || st.is_removed(WorkerId(0)));
        assert!(st.is_removed(WorkerId(0)));
        assert!(!st.is_draining(WorkerId(0)), "removal clears draining");
        assert!(!st.is_removed(WorkerId(5)));
    }

    #[test]
    fn spill_out_appends_are_decisions() {
        let plan = MasterFaultPlan::new().crash_at(1);
        let mut rlog = ReplicatedLog::new(&plan);
        assert_eq!(
            rlog.append(sev(
                0,
                None,
                Some(1),
                SchedEventKind::SpillOut {
                    to_shard: ShardId(1),
                },
            )),
            AppendOutcome::LeaderCrashed { truncated: true },
            "an uncommitted hand-off must not leave the shard"
        );
        assert_eq!(rlog.log().len(), 0);
    }

    #[test]
    fn spec_cancel_is_a_terminal_decision() {
        // SpecCancel must truncate on a leader crash (an uncommitted
        // cancellation means the attempt is still live)…
        let plan = MasterFaultPlan::new().crash_at(1);
        let mut rlog = ReplicatedLog::new(&plan);
        assert_eq!(
            rlog.append(sev(
                0,
                None,
                Some(7),
                SchedEventKind::SpecCancel {
                    root: JobId(100),
                    task: 2,
                },
            )),
            AppendOutcome::LeaderCrashed { truncated: true }
        );
        // …and once committed, the losing attempt is terminal: a
        // successor must not re-offer it.
        let evs = [
            sev(0, None, Some(7), SchedEventKind::Submitted),
            sev(1, Some(1), Some(7), SchedEventKind::Assigned),
            sev(
                2,
                None,
                Some(7),
                SchedEventKind::SpecCancel {
                    root: JobId(100),
                    task: 2,
                },
            ),
        ];
        let st = SchedState::replay(evs.iter());
        assert!(st.job(JobId(7)).unwrap().cancelled);
        assert_eq!(st.placed_on(JobId(7)), None);
        assert!(st.unplaced_jobs().is_empty());
        assert!(st.placements().is_empty());
    }

    #[test]
    fn split_replay_equals_whole_replay() {
        // replay(prefix) then apply(suffix) must equal replay(whole)
        // at every split point — the property failover correctness
        // rides on, in miniature (the integration proptest sweeps real
        // run logs).
        let evs = [
            sev(0, None, Some(1), SchedEventKind::Submitted),
            sev(0, None, Some(1), SchedEventKind::ContestOpened),
            sev(
                0,
                Some(1),
                Some(1),
                SchedEventKind::BidReceived { estimate_secs: 1.5 },
            ),
            sev(
                1,
                Some(1),
                Some(1),
                SchedEventKind::ContestClosed {
                    timed_out: false,
                    fallback: false,
                },
            ),
            sev(1, Some(1), Some(1), SchedEventKind::Assigned),
            sev(2, Some(1), Some(1), SchedEventKind::AssignAcked),
            sev(3, Some(1), None, SchedEventKind::Crash),
            sev(5, Some(1), Some(1), SchedEventKind::Redistributed),
            sev(5, None, None, SchedEventKind::LeaderElected { term: 2 }),
            sev(
                5,
                None,
                None,
                SchedEventKind::FailoverReplayed { entries: 8 },
            ),
            sev(6, Some(0), Some(1), SchedEventKind::Offered),
            sev(7, Some(0), Some(1), SchedEventKind::Completed),
        ];
        let whole = SchedState::replay(evs.iter());
        for split in 0..=evs.len() {
            let mut st = SchedState::replay(evs[..split].iter());
            for ev in &evs[split..] {
                st.apply(ev);
            }
            assert_eq!(st, whole, "split at {split} diverged");
        }
        assert_eq!(whole.term, 2);
    }
}
