//! Tasks — the processing stages of a workflow.
//!
//! A task's [`TaskLogic`] is invoked when a worker finishes the
//! physical part of a job (fetching + scanning the resource); it
//! decides what flows downstream, mirroring Crossflow's
//! `process(job) -> newJob` step (Listing 2, line 11). Logic objects
//! may accumulate state (e.g. the MSR co-occurrence matrix) which the
//! application retrieves after the run via [`TaskLogic::as_any_mut`].

use std::any::Any;

use crossbid_simcore::SimTime;

use crate::job::{Job, JobSpec, Payload, WorkerId};

/// Context handed to task logic for each processed job.
pub struct TaskCtx {
    /// Virtual time at which processing completed.
    pub now: SimTime,
    /// The worker that executed the job.
    pub worker: WorkerId,
}

/// Application logic of one task.
pub trait TaskLogic: Send {
    /// Process a finished job; push downstream jobs into `out`.
    fn process(&mut self, job: &Job, ctx: &TaskCtx, out: &mut Vec<JobSpec>);

    /// Access accumulated state after a run (sinks, counters).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A terminal task that records everything it receives. The engine
/// counts a workflow as complete when all jobs (including sink jobs)
/// have been processed.
#[derive(Debug, Default)]
pub struct SinkTask {
    outputs: Vec<CollectedOutputs>,
}

/// One record collected by a [`SinkTask`].
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedOutputs {
    /// Payload of the job that reached the sink.
    pub payload: Payload,
    /// When it arrived.
    pub at: SimTime,
    /// Which worker produced it.
    pub worker: WorkerId,
}

impl SinkTask {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything received so far.
    pub fn outputs(&self) -> &[CollectedOutputs] {
        &self.outputs
    }

    /// Number of records received.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True iff nothing was received.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Drop collected records (between session iterations).
    pub fn clear(&mut self) {
        self.outputs.clear();
    }
}

impl TaskLogic for SinkTask {
    fn process(&mut self, job: &Job, ctx: &TaskCtx, _out: &mut Vec<JobSpec>) {
        self.outputs.push(CollectedOutputs {
            payload: job.payload.clone(),
            at: ctx.now,
            worker: ctx.worker,
        });
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A stateless mapping task driven by a function — convenient for
/// tests and examples.
pub struct FnTask<F>(pub F);

impl<F> TaskLogic for FnTask<F>
where
    F: FnMut(&Job, &TaskCtx, &mut Vec<JobSpec>) + Send + 'static,
{
    fn process(&mut self, job: &Job, ctx: &TaskCtx, out: &mut Vec<JobSpec>) {
        (self.0)(job, ctx, out)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, TaskId};

    fn job(payload: Payload) -> Job {
        Job {
            id: JobId(1),
            task: TaskId(0),
            resource: None,
            work_bytes: 0,
            cpu_secs: 0.0,
            payload,
        }
    }

    fn ctx() -> TaskCtx {
        TaskCtx {
            now: SimTime::from_secs(3),
            worker: WorkerId(2),
        }
    }

    #[test]
    fn sink_collects() {
        let mut sink = SinkTask::new();
        let mut out = Vec::new();
        sink.process(&job(Payload::Index(7)), &ctx(), &mut out);
        assert!(out.is_empty(), "sinks emit nothing downstream");
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.outputs()[0].payload, Payload::Index(7));
        assert_eq!(sink.outputs()[0].worker, WorkerId(2));
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn fn_task_maps() {
        let mut t = FnTask(|job: &Job, _ctx: &TaskCtx, out: &mut Vec<JobSpec>| {
            if let Payload::Index(i) = job.payload {
                out.push(JobSpec::compute(TaskId(1), 0.0, Payload::Index(i * 2)));
            }
        });
        let mut out = Vec::new();
        t.process(&job(Payload::Index(21)), &ctx(), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Payload::Index(42));
    }

    #[test]
    fn sink_downcasts() {
        let mut logic: Box<dyn TaskLogic> = Box::new(SinkTask::new());
        assert!(logic.as_any_mut().downcast_mut::<SinkTask>().is_some());
    }
}
