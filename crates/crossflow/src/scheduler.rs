//! The pluggable allocation interface.
//!
//! Allocation in this framework is split exactly the way the paper
//! splits it:
//!
//! * a **master-side** component ([`MasterScheduler`]) that reacts to
//!   arriving jobs, worker messages and timers by emitting
//!   [`SchedAction`]s (Listing 1 is one implementation of this trait —
//!   `crossbid-core`'s `BiddingMaster`);
//! * a **worker-side** component ([`WorkerPolicy`]) encapsulating the
//!   node's "opinion": whether to accept an offered job, and what to
//!   bid in a contest (Listing 2).
//!
//! The engine mediates all communication: scheduler actions and worker
//! replies travel through the (latency-afflicted) control plane, so a
//! scheduler can never observe worker state directly — only through
//! messages, exactly like the real distributed system.

use crossbid_metrics::SchedulerKind;
use crossbid_simcore::{RngStream, SimDuration, SimTime};

use crate::job::{Job, JobId, WorkerId};

/// What the master knows about a worker a priori: only its identity.
/// Everything else must be learned from messages.
#[derive(Debug, Clone)]
pub struct WorkerHandle {
    /// Worker id.
    pub id: WorkerId,
    /// Display name.
    pub name: String,
}

/// An action emitted by a master scheduler.
#[derive(Debug, Clone)]
pub enum SchedAction {
    /// Unconditionally queue `job` on `worker` (push model — bidding
    /// winners, Spark assignments).
    Assign { worker: WorkerId, job: Job },
    /// Offer `job` to `worker`, which may accept or reject it
    /// according to its [`WorkerPolicy`] (Crossflow Baseline).
    Offer { worker: WorkerId, job: Job },
    /// Broadcast a bid request for `job` to every worker. The job
    /// itself stays with the scheduler until it assigns it.
    BroadcastBidRequest { job: Job },
    /// Ask for a timer callback `delay` from now carrying `token`.
    Timer { delay: SimDuration, token: u64 },
}

/// Messages workers send to the master that are relevant to
/// allocation.
#[derive(Debug, Clone)]
pub enum WorkerToMaster {
    /// A bid: the worker estimates it can complete `job` in
    /// `estimate_secs` from now (Listing 2 line 6).
    Bid { job: JobId, estimate_secs: f64 },
    /// The worker declined an offered job; it returns to the master
    /// "so another worker can consider it" (§4).
    Reject { job: Job },
    /// The worker has no more queued work (a pull request in the
    /// Baseline's pull model; push schedulers may ignore it).
    Idle,
}

/// Context passed to master-scheduler callbacks. Collects actions and
/// allocates timer tokens; the engine applies the actions with
/// control-plane latency after the callback returns.
pub struct SchedCtx<'a> {
    now: SimTime,
    workers: &'a [WorkerHandle],
    rng: &'a mut RngStream,
    actions: Vec<SchedAction>,
    next_token: &'a mut u64,
}

impl<'a> SchedCtx<'a> {
    /// Engine-internal constructor.
    pub fn new(
        now: SimTime,
        workers: &'a [WorkerHandle],
        rng: &'a mut RngStream,
        next_token: &'a mut u64,
    ) -> Self {
        SchedCtx {
            now,
            workers,
            rng,
            actions: Vec::new(),
            next_token,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The worker roster ("activeWorkers" in Listing 1).
    pub fn workers(&self) -> &[WorkerHandle] {
        self.workers
    }

    /// Number of active workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Randomness for tie-breaking / arbitrary fallback assignment.
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// A uniformly random worker (Listing 1's "assigns the job to an
    /// arbitrary node in case none of the workers submitted").
    pub fn arbitrary_worker(&mut self) -> WorkerId {
        let idx = self.rng.below(self.workers.len() as u64) as usize;
        self.workers[idx].id
    }

    /// Queue `job` on `worker` unconditionally.
    pub fn assign(&mut self, worker: WorkerId, job: Job) {
        self.actions.push(SchedAction::Assign { worker, job });
    }

    /// Offer `job` to `worker` (may be rejected).
    pub fn offer(&mut self, worker: WorkerId, job: Job) {
        self.actions.push(SchedAction::Offer { worker, job });
    }

    /// Open a bidding contest for `job`.
    pub fn broadcast_bid_request(&mut self, job: Job) {
        self.actions.push(SchedAction::BroadcastBidRequest { job });
    }

    /// Request a timer callback; returns the token that will be handed
    /// to [`MasterScheduler::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration) -> u64 {
        let token = *self.next_token;
        *self.next_token += 1;
        self.actions.push(SchedAction::Timer { delay, token });
        token
    }

    /// Drain collected actions (engine-internal).
    pub fn take_actions(self) -> Vec<SchedAction> {
        self.actions
    }
}

/// Counters a master scheduler exposes after a run (feed the §6.3.2
/// overhead discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Contests closed by the 1-second window rather than a complete
    /// set of bids.
    pub contests_timed_out: u64,
    /// Contests that received zero bids and fell back to an arbitrary
    /// worker.
    pub contests_fallback: u64,
}

/// Master-side allocation logic (Listing 1's role).
pub trait MasterScheduler: Send {
    /// Which algorithm this is (for records).
    fn kind(&self) -> SchedulerKind;

    /// A new job is ready for allocation (external arrival or emitted
    /// downstream by a finished task).
    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx);

    /// A worker message arrived.
    fn on_worker_message(&mut self, from: WorkerId, msg: WorkerToMaster, ctx: &mut SchedCtx);

    /// A previously requested timer fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut SchedCtx) {}

    /// A worker completed a job (the master observes completions
    /// because results flow back through it). Lets centralized
    /// schedulers maintain load/locality bookkeeping.
    fn on_job_done(&mut self, _worker: WorkerId, _job: &Job, _ctx: &mut SchedCtx) {}

    /// The monitoring layer reports `worker` dead (fault-injection
    /// extension; see [`crate::faults`]). Schedulers should drop the
    /// worker from any pull/idle bookkeeping; its stranded jobs are
    /// redistributed by the engine.
    fn on_worker_failed(&mut self, _worker: WorkerId, _ctx: &mut SchedCtx) {}

    /// `worker` rejoined with a cold cache.
    fn on_worker_recovered(&mut self, _worker: WorkerId, _ctx: &mut SchedCtx) {}

    /// Failover replay: the committed log proves `worker` rejected
    /// `job` under a previous leader. Schedulers that route around
    /// rejectors (e.g. the Baseline's re-offer avoidance) restore that
    /// memory here; stateless schedulers ignore it.
    fn restore_rejection(&mut self, _job: JobId, _worker: WorkerId) {}

    /// Overhead counters for the run record.
    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

/// A read-only snapshot of the worker's own state, precomputed by the
/// engine for policy decisions. All estimates use *believed* speeds —
/// noise is invisible here, exactly as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct WorkerView {
    /// This worker's id.
    pub id: WorkerId,
    /// Virtual time of the decision.
    pub now: SimTime,
    /// `totalCostOfUnfinishedJobs()` in seconds.
    pub backlog_secs: f64,
    /// Does the local store hold the job's resource (or the job needs
    /// none)?
    pub has_data: bool,
    /// Has this worker declined this exact job before? (Baseline's
    /// second-offer obligation.)
    pub declined_before: bool,
    /// Estimated fetch seconds for this job (0 when local).
    pub est_fetch_secs: f64,
    /// Estimated processing seconds for this job.
    pub est_proc_secs: f64,
    /// Jobs currently queued (not including the one being decided).
    pub queue_len: usize,
}

/// Minimal job information exposed to worker policies.
#[derive(Debug, Clone, Copy)]
pub struct JobView {
    /// The job id.
    pub id: JobId,
    /// Bytes of the required resource (0 when none).
    pub resource_bytes: u64,
}

/// Worker-side opinion logic (Listing 2's role).
pub trait WorkerPolicy: Send {
    /// Decide whether to accept an offered job (Baseline). Returning
    /// `false` sends the job back to the master.
    fn accept_offer(&mut self, view: &WorkerView, job: &JobView) -> bool;

    /// Produce a bid for a requested job, or `None` to abstain.
    /// The engine transmits `Some(est)` to the master after the
    /// configured bid-compute delay.
    fn bid(&mut self, view: &WorkerView, job: &JobView) -> Option<f64>;

    /// A job this worker executed finished: `est_secs` was the
    /// estimated (transfer + processing) cost when it was enqueued,
    /// `actual_secs` what it really took. Learning policies (§7 future
    /// work) use this to adjust future bids; the default ignores it.
    fn on_job_finished(&mut self, _est_secs: f64, _actual_secs: f64) {}
}

/// A bundled allocation algorithm: factory for fresh master/worker
/// components per run.
pub trait Allocator: Send + Sync {
    /// Which algorithm this is.
    fn kind(&self) -> SchedulerKind;

    /// Create the master-side scheduler for one run.
    fn master(&self) -> Box<dyn MasterScheduler>;

    /// Create the worker-side policy (one instance per worker per
    /// run).
    fn worker_policy(&self) -> Box<dyn WorkerPolicy>;
}

/// A policy that accepts everything and never bids — appropriate for
/// fully centralized schedulers (Spark-like, Random) where workers
/// have no opinion.
#[derive(Debug, Default, Clone, Copy)]
pub struct ObedientPolicy;

impl WorkerPolicy for ObedientPolicy {
    fn accept_offer(&mut self, _view: &WorkerView, _job: &JobView) -> bool {
        true
    }

    fn bid(&mut self, _view: &WorkerView, _job: &JobView) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Payload, TaskId};

    fn mk_job(id: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: None,
            work_bytes: 0,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn handles(n: u32) -> Vec<WorkerHandle> {
        (0..n)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect()
    }

    #[test]
    fn ctx_collects_actions_in_order() {
        let workers = handles(3);
        let mut rng = RngStream::from_seed(1);
        let mut token = 0;
        let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
        ctx.assign(WorkerId(1), mk_job(1));
        ctx.offer(WorkerId(2), mk_job(2));
        let t = ctx.set_timer(SimDuration::from_secs(1));
        assert_eq!(t, 0);
        let t2 = ctx.set_timer(SimDuration::from_secs(2));
        assert_eq!(t2, 1);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 4);
        assert!(matches!(
            actions[0],
            SchedAction::Assign {
                worker: WorkerId(1),
                ..
            }
        ));
        assert!(matches!(
            actions[1],
            SchedAction::Offer {
                worker: WorkerId(2),
                ..
            }
        ));
        assert!(matches!(actions[3], SchedAction::Timer { token: 1, .. }));
        assert_eq!(token, 2, "token counter persists across contexts");
    }

    #[test]
    fn arbitrary_worker_is_in_roster() {
        let workers = handles(5);
        let mut rng = RngStream::from_seed(2);
        let mut token = 0;
        let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
        for _ in 0..50 {
            let w = ctx.arbitrary_worker();
            assert!(w.0 < 5);
        }
    }

    #[test]
    fn obedient_policy() {
        let mut p = ObedientPolicy;
        let view = WorkerView {
            id: WorkerId(0),
            now: SimTime::ZERO,
            backlog_secs: 0.0,
            has_data: false,
            declined_before: false,
            est_fetch_secs: 1.0,
            est_proc_secs: 1.0,
            queue_len: 0,
        };
        let job = JobView {
            id: JobId(1),
            resource_bytes: 10,
        };
        assert!(p.accept_offer(&view, &job));
        assert!(p.bid(&view, &job).is_none());
    }
}
