//! The discrete-event execution engine.
//!
//! Runs a [`Workflow`] on a [`Cluster`] of worker nodes under a given
//! [`Allocator`], reproducing the paper's distributed system on a
//! virtual clock:
//!
//! * every scheduler control message (offer, reject, bid request,
//!   bid, assignment, idle notification, completion report) pays a
//!   sampled control-plane latency;
//! * fetching a non-local resource pays the worker's data-plane
//!   transfer time with the configured noise scheme, and is accounted
//!   as a cache miss plus data load;
//! * processing pays `work_bytes / (rw_speed × noise) × cpu_factor +
//!   cpu_secs × cpu_factor`;
//! * workers execute one job at a time in FIFO order (as §5 states);
//! * completions flow back through the master, which runs the task's
//!   logic and feeds any downstream jobs back into allocation.
//!
//! The run terminates when every created job (external + downstream)
//! has completed; the [`RunRecord`] then carries the paper's §6.1
//! metrics.

use std::collections::{HashMap, HashSet};

use crossbid_metrics::{Registry, RegistrySnapshot, RunRecord, SchedulerKind};
use crossbid_net::{ControlPlane, NoiseModel};
use crossbid_simcore::rng::splitmix64;
use crossbid_simcore::{EventQueue, RngStream, SeedSequence, SimDuration, SimTime, Welford};
use crossbid_storage::{ObjectId, ReplicaMap};

use crate::atomize::{AtomizeConfig, DagState, DoneOutcome};
use crate::faults::{
    FaultEvent, FaultPlan, MasterFaultPlan, MembershipAction, MembershipEvent, MembershipPlan,
    NetFaultPlan,
};
use crate::job::{Arrival, Job, JobId, JobSpec, ShardId, WorkerId};
use crate::obs::RuntimeMetrics;
use crate::replog::{AppendOutcome, ReplicatedLog};
use crate::scheduler::{
    Allocator, JobView, MasterScheduler, SchedAction, SchedCtx, WorkerHandle, WorkerPolicy,
    WorkerToMaster, WorkerView,
};
use crate::task::TaskCtx;
use crate::trace::{SchedEvent, SchedEventKind, SchedLog, Trace, TraceEvent, TraceKind};
use crate::worker::{WorkerActivity, WorkerNode, WorkerSpec};
use crate::workflow::Workflow;

/// Engine-wide configuration (the testbed parameters of §6.2/§6.3.1).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Control-plane latency model (master ↔ workers via the
    /// messaging instance).
    pub control: ControlPlane,
    /// Per-transfer data-plane setup latency (API round trip + clone
    /// handshake).
    pub data_latency: SimDuration,
    /// Noise scheme applied to actual network and read/write speeds.
    pub noise: NoiseModel,
    /// §6.4 speed learning: use historic-average observed speeds for
    /// estimates instead of nominal configured speeds.
    pub speed_learning: bool,
    /// Time a worker spends computing a bid before sending it.
    pub bid_compute_delay: SimDuration,
    /// Safety cap on delivered events (guards against scheduler bugs
    /// that re-arm timers forever).
    pub max_events: u64,
    /// Scheduled worker crashes/recoveries (empty in the paper's
    /// evaluated configuration; see [`crate::faults`]).
    pub faults: FaultPlan,
    /// Lossy master↔worker links plus the at-least-once
    /// countermeasures (acks, retries, leases, idle heartbeats). An
    /// inactive plan leaves the engine on its exact pre-existing code
    /// path — no extra events, no extra rng draws.
    pub netfaults: NetFaultPlan,
    /// Scheduled *master* crashes at replicated-log append indices; an
    /// elected standby recovers by log replay (see [`crate::replog`]).
    /// An empty plan keeps appends as plain pushes and never runs the
    /// failover path.
    pub master_faults: MasterFaultPlan,
    /// Elastic membership: scheduled worker joins, drains and
    /// removals. A worker with a `Join` event stays dormant (out of
    /// the roster and every contest) until its join fires. An empty
    /// plan keeps the engine on its exact pre-existing code path.
    pub membership: MembershipPlan,
    /// This master's federation shard. Job ids are allocated in the
    /// shard's id space ([`JobId::in_shard`]); shard 0 — the default —
    /// reproduces the historical sequential ids bit-for-bit.
    pub shard: ShardId,
    /// Job atomization (task DAGs, per-task bidding, speculative
    /// straggler re-bidding — see [`crate::atomize`]). Only consulted
    /// for arrivals whose [`JobSpec::dag`] is set; the defaults are
    /// inert for plain workloads.
    pub atomize: AtomizeConfig,
    /// Self-healing replicated data plane (ROADMAP item 2): replica-
    /// aware stores, peer-to-peer fetch from the nearest replica, and
    /// crash-triggered re-replication committed through the scheduler
    /// log. The default (disabled) keeps the engine on its exact
    /// historic code path.
    pub replication: ReplicationConfig,
    /// Record a per-job lifecycle trace (see [`crate::trace`]).
    pub trace: bool,
    /// Shared metrics sink. When `None` the engine collects into a
    /// private [`Registry`] — a snapshot is returned in
    /// [`RunOutput::metrics`] either way.
    pub metrics: Option<Registry>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            control: ControlPlane::evaluation_default(),
            data_latency: SimDuration::from_millis(300),
            noise: NoiseModel::evaluation_default(),
            speed_learning: false,
            bid_compute_delay: SimDuration::from_millis(25),
            max_events: 20_000_000,
            faults: FaultPlan::none(),
            netfaults: NetFaultPlan::none(),
            master_faults: MasterFaultPlan::none(),
            membership: MembershipPlan::none(),
            shard: ShardId(0),
            atomize: AtomizeConfig::default(),
            replication: ReplicationConfig::default(),
            trace: false,
            metrics: None,
        }
    }
}

impl EngineConfig {
    /// A configuration with no latency and no noise — unit tests can
    /// predict exact timings.
    pub fn ideal() -> Self {
        EngineConfig {
            control: ControlPlane::instant(),
            data_latency: SimDuration::ZERO,
            noise: NoiseModel::None,
            speed_learning: false,
            bid_compute_delay: SimDuration::ZERO,
            max_events: 20_000_000,
            faults: FaultPlan::none(),
            netfaults: NetFaultPlan::none(),
            master_faults: MasterFaultPlan::none(),
            membership: MembershipPlan::none(),
            shard: ShardId(0),
            atomize: AtomizeConfig::default(),
            replication: ReplicationConfig::default(),
            trace: false,
            metrics: None,
        }
    }
}

/// Configuration of the self-healing replicated data plane.
///
/// When `enabled`, every worker-resident artifact is tracked in a
/// cluster-wide [`ReplicaMap`] with a target `factor`; workers fetch
/// missing artifacts from the nearest live replica (a worker→worker
/// transfer priced into bids), peer transfers are exposed to data-
/// plane loss and partitions with timeout + seeded-backoff retry, and
/// the master repairs under-replication after crashes by scheduling
/// re-replication copies committed through the scheduler log
/// (commit-before-copy, so a failover resumes repair without
/// double-copying). Sole surviving copies are pinned in their local
/// store so cache pressure can never destroy data the cluster cannot
/// re-create.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationConfig {
    /// Master switch. Disabled (the default) keeps both runtimes on
    /// their exact historic code paths — no replica tracking, no peer
    /// fetches, no repair traffic, no extra log events.
    pub enabled: bool,
    /// Target number of live copies per artifact (≥ 1).
    pub factor: u32,
    /// Virtual seconds a worker waits for a peer transfer before
    /// declaring the attempt lost and retrying.
    pub fetch_timeout_secs: f64,
    /// Peer-fetch attempts (rotating over live replicas) before the
    /// worker degrades to a master fetch, which always succeeds.
    pub max_fetch_attempts: u32,
    /// Intra-cluster bandwidth advantage of a worker→worker transfer
    /// over a master fetch: peer transfer time is the master-fetch
    /// time divided by this factor (> 0).
    pub peer_bandwidth_scale: f64,
    /// Probability a peer data transfer is lost in flight. Sampled
    /// deterministically from a hash of (net seed, object, worker,
    /// attempt) so both runtimes replay identically; composed with any
    /// active [`NetFaultPlan`] link loss and partition windows.
    pub peer_drop_prob: f64,
    /// Sabotage (protocol-mutation testing): commit `repair_start`
    /// but never perform the copy — the oracle must report
    /// [`RepairNeverCompleted`](crate::trace::SchedLog).
    pub skip_repair: bool,
    /// Sabotage (protocol-mutation testing): never pin sole surviving
    /// copies, so eviction may destroy the last replica — the oracle
    /// must report an `EvictedLastCopy` violation.
    pub evict_last_copy: bool,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            enabled: false,
            factor: 2,
            fetch_timeout_secs: 5.0,
            max_fetch_attempts: 3,
            peer_bandwidth_scale: 4.0,
            peer_drop_prob: 0.0,
            skip_repair: false,
            evict_last_copy: false,
        }
    }
}

impl ReplicationConfig {
    /// An enabled plane with the default knobs and the given factor.
    pub fn with_factor(factor: u32) -> Self {
        ReplicationConfig {
            enabled: true,
            factor,
            ..Self::default()
        }
    }

    /// Check every knob; returns the offending field on failure.
    pub fn validate(&self) -> Result<(), (&'static str, f64)> {
        if self.factor == 0 {
            return Err(("factor", 0.0));
        }
        if !self.fetch_timeout_secs.is_finite() || self.fetch_timeout_secs <= 0.0 {
            return Err(("fetch_timeout_secs", self.fetch_timeout_secs));
        }
        if self.max_fetch_attempts == 0 {
            return Err(("max_fetch_attempts", 0.0));
        }
        if !self.peer_bandwidth_scale.is_finite() || self.peer_bandwidth_scale <= 0.0 {
            return Err(("peer_bandwidth_scale", self.peer_bandwidth_scale));
        }
        if !self.peer_drop_prob.is_finite() || !(0.0..=1.0).contains(&self.peer_drop_prob) {
            return Err(("peer_drop_prob", self.peer_drop_prob));
        }
        Ok(())
    }
}

/// The persistent cluster: worker nodes whose caches and learned
/// speeds survive across iterations of a session (§6.3.1 runs every
/// configuration "in three iterations" with caches warm).
pub struct Cluster {
    nodes: Vec<WorkerNode>,
}

impl Cluster {
    /// Build worker nodes from specs under the given engine config.
    pub fn new(specs: &[WorkerSpec], cfg: &EngineConfig) -> Self {
        Cluster {
            nodes: specs
                .iter()
                .map(|s| WorkerNode::new(s.clone(), cfg.data_latency, &cfg.noise))
                .collect(),
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node (tests / assertions).
    pub fn node(&self, w: WorkerId) -> &WorkerNode {
        &self.nodes[w.0 as usize]
    }

    /// Mutable access to a node (fault injection in tests).
    pub fn node_mut(&mut self, w: WorkerId) -> &mut WorkerNode {
        &mut self.nodes[w.0 as usize]
    }

    /// Wipe all caches (cold cluster), keeping learned speeds.
    pub fn clear_caches(&mut self) {
        for n in &mut self.nodes {
            n.store.clear();
        }
    }
}

/// Identification of one run for the record.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Worker-configuration preset name.
    pub worker_config: String,
    /// Job-configuration preset name.
    pub job_config: String,
    /// Iteration index within the session.
    pub iteration: u32,
    /// Root seed for this run.
    pub seed: u64,
}

impl Default for RunMeta {
    fn default() -> Self {
        RunMeta {
            worker_config: "custom".into(),
            job_config: "custom".into(),
            iteration: 0,
            seed: 0,
        }
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The §6.1 metrics and bookkeeping.
    pub record: RunRecord,
    /// Total simulation events delivered (complexity proxy).
    pub events: u64,
    /// Which worker each job was (last) placed on, in placement order.
    /// Jobs redistributed after a crash appear once per placement.
    pub assignments: Vec<(JobId, WorkerId)>,
    /// Per-job lifecycle trace (empty unless
    /// [`EngineConfig::trace`] was set).
    pub trace: Trace,
    /// Scheduler-level protocol events — contests, crashes,
    /// redistributions (empty unless [`EngineConfig::trace`] was set).
    /// Shares its shape with the threaded runtime's log so the same
    /// invariants can be asserted on both.
    pub sched_log: SchedLog,
    /// Frozen end-of-run metrics (see [`crate::obs`] for the
    /// instrument vocabulary, shared with the threaded runtime).
    pub metrics: RegistrySnapshot,
    /// Reportable anomalies: conditions that did not abort the run but
    /// mean its results are suspect (e.g. the sim event queue clamping
    /// past-time events). Empty for a healthy run.
    pub anomalies: Vec<String>,
    /// End-of-run replica registry (`Some` iff
    /// [`ReplicationConfig::enabled`]): which live workers hold each
    /// artifact. Property tests replay the log's replica events and
    /// assert they reconstruct exactly this map.
    pub replicas: Option<ReplicaMap>,
}

#[derive(Clone)]
enum MasterToWorker {
    /// `seq` is the placement sequence number of the assignment; a
    /// retransmission reuses it (0 when the net-fault layer is off).
    Assign {
        job: Job,
        seq: u64,
    },
    Offer {
        job: Job,
        seq: u64,
    },
    BidRequest(Job),
}

#[derive(Clone)]
enum Ev {
    Arrival(JobSpec),
    WorkerRecv {
        worker: WorkerId,
        msg: MasterToWorker,
    },
    MasterRecv {
        from: WorkerId,
        msg: WorkerToMaster,
    },
    Done {
        worker: WorkerId,
        job: Job,
    },
    Timer(u64),
    FetchDone {
        worker: WorkerId,
        epoch: u64,
    },
    ProcDone {
        worker: WorkerId,
        epoch: u64,
    },
    /// A scheduled crash or recovery fires.
    Fault(FaultEvent),
    /// A scheduled membership change (join/drain/remove) fires.
    Membership(MembershipEvent),
    /// A stranded or bounced job re-enters allocation.
    Redispatch(Job),
    /// A message envelope crossing a lossy link. `env` identifies the
    /// physical send: a network duplicate shares it (and is discarded
    /// by the receiver), a retransmission gets a fresh one (and is
    /// deduplicated semantically, by job id / placement seq).
    NetDeliver {
        env: u64,
        inner: Box<Ev>,
    },
    /// Worker → master: "I hold assignment `seq` of `job`".
    AssignAck {
        worker: WorkerId,
        job: JobId,
        seq: u64,
    },
    /// Master-side retransmission timer for an unacked Assign/Offer.
    AssignRetry {
        job: JobId,
        seq: u64,
        attempt: u32,
    },
    /// Master-side lease expiry check for one placement.
    LeaseCheck {
        job: JobId,
        seq: u64,
    },
    /// Master → worker: "your `Done` for `job` landed, stop resending".
    DoneAck {
        worker: WorkerId,
        job: JobId,
    },
    /// Worker-side retransmission timer for an unacked `Done`.
    DoneRetry {
        worker: WorkerId,
        job: JobId,
        epoch: u64,
        attempt: u32,
    },
    /// Periodic idle re-announcement, so a dropped `Idle` only delays
    /// the pull loop.
    IdleBeat(WorkerId),
    /// Periodic straggler sweep over in-flight DAG tasks (armed only
    /// while an atomized job is active).
    SpecCheck,
    /// A peer-to-peer replica transfer lands at the fetching worker.
    PeerFetchArrive {
        worker: WorkerId,
        epoch: u64,
    },
    /// A peer fetch attempt was lost on the data plane and its wait
    /// timed out; the worker retries (after a seeded backoff) or
    /// degrades to a master fetch.
    PeerFetchTimeout {
        worker: WorkerId,
        epoch: u64,
        attempt: u32,
    },
    /// Backoff elapsed: start peer-fetch attempt `attempt`.
    PeerFetchRetry {
        worker: WorkerId,
        epoch: u64,
        attempt: u32,
    },
    /// A re-replication copy completes at its destination worker.
    RepairArrive {
        object: ObjectId,
        dest: WorkerId,
    },
}

/// Master-side record of one in-flight placement under the net-fault
/// layer: the job is retransmitted until `acked` and bounced back to
/// the scheduler if the lease expires first.
struct NetOutstanding {
    job: Job,
    worker: WorkerId,
    seq: u64,
    offer: bool,
    acked: bool,
}

/// Per-worker execution slot (engine-private runtime state).
struct Slot {
    current: Option<Job>,
    /// When the current job physically started (fetch begin).
    started: Option<SimTime>,
    /// When the current job's fetch completed (processing begin);
    /// `None` while fetching or when the data was already local.
    fetch_done: Option<SimTime>,
    /// Peer replica the in-flight fetch attempt was requested from
    /// (`None` for master fetches).
    fetch_from: Option<WorkerId>,
}

/// Engine-side view of one undecided bidding contest.
struct OpenContest {
    /// Broadcast instant (bid latencies are measured from here).
    opened: SimTime,
    /// Workers whose bids were recorded — duplicates are not re-logged.
    bidders: Vec<WorkerId>,
}

struct Engine<'a> {
    cfg: &'a EngineConfig,
    q: EventQueue<Ev>,
    nodes: &'a mut Vec<WorkerNode>,
    slots: Vec<Slot>,
    active: Vec<bool>,
    /// Draining workers: alive and finishing their queues, but out of
    /// the roster — no new placements, no bid solicitations.
    draining: Vec<bool>,
    /// Workers that left the roster for good (drain completed or
    /// administrative removal). `active` is false for them too; this
    /// flag keeps a recovery event from reviving them.
    departed: Vec<bool>,
    epochs: Vec<u64>,
    assignments: Vec<(JobId, WorkerId)>,
    trace: Option<Trace>,
    /// The scheduler log behind the replication discipline. `Some`
    /// when tracing *or* when master faults are armed (failover replays
    /// it); `None` keeps the bench hot path free of any logging.
    sched_log: Option<ReplicatedLog>,
    policies: Vec<Box<dyn WorkerPolicy>>,
    master: Box<dyn MasterScheduler>,
    /// The allocator that built `master` — failover drafts the standby
    /// replica's fresh scheduler from it.
    allocator: &'a dyn Allocator,
    /// The leader crashed mid-run: master callbacks are suppressed
    /// until the standby finishes its replay takeover.
    failover_pending: bool,
    /// Payloads of submitted-but-uncompleted jobs, kept only while
    /// master faults are armed so an elected standby can re-enter
    /// unplaced jobs (the log records ids, not payloads).
    jobs_inflight: HashMap<JobId, Job>,
    /// Contest stats accumulated by crashed leaders (a fresh standby's
    /// `stats()` restarts from zero).
    stats_carry_timed_out: u64,
    stats_carry_fallback: u64,
    handles: Vec<WorkerHandle>,
    /// Cached live roster ("activeWorkers") handed to every master
    /// callback. Rebuilding this on each callback used to clone every
    /// handle per bid — the dominant allocation cost at scale — so it
    /// is now invalidated only on crash/recover.
    roster: Vec<WorkerHandle>,
    roster_dirty: bool,
    workflow: &'a mut Workflow,
    /// Shared DAG bookkeeping for atomized jobs (gating, speculation,
    /// output crediting); inert unless an arrival carried a DAG.
    dag: DagState,
    /// A `SpecCheck` event is in flight — keeps exactly one straggler
    /// sweep armed at a time.
    spec_check_armed: bool,

    rng_control: RngStream,
    rng_master: RngStream,
    rng_workers: Vec<RngStream>,

    next_job_id: u64,
    next_token: u64,
    created: u64,
    completed: u64,
    arrivals_total: u64,
    arrivals_seen: u64,
    last_completion: SimTime,
    down_since: Vec<Option<SimTime>>,
    downtime_secs: f64,
    /// Registry-backed tallies (control messages, crashes,
    /// redistributions, phase histograms…), replacing the old
    /// hand-rolled counters.
    m: RuntimeMetrics,
    /// Contests opened but not yet decided: job → broadcast instant
    /// plus the workers whose bids were recorded. Lets the engine
    /// synthesize `ContestClosed` events and bid latencies around the
    /// master's internal contest state, and gate `BidReceived` logging
    /// the same way the threaded master does: late bids (after close)
    /// and duplicates — e.g. a stale in-flight bid from a pre-failover
    /// contest arriving next to the re-solicited one — are never
    /// committed.
    open_contests: HashMap<JobId, OpenContest>,

    // Net-fault layer state. All of it is inert (and none of it costs
    // an rng draw) when `net_active` is false.
    net_active: bool,
    rng_net: RngStream,
    /// Next envelope id for a physical lossy send.
    next_env: u64,
    /// Envelopes already delivered — network duplicates are dropped.
    seen_envs: HashSet<u64>,
    /// Next placement sequence number (starts at 1; 0 = "no layer").
    next_seq: u64,
    /// In-flight placements awaiting ack / completion, by job id.
    outstanding_net: HashMap<JobId, NetOutstanding>,
    /// Jobs whose `Done` already reached the master: at-least-once
    /// delivery and lease bounces may execute a job twice, but its
    /// side effects (completion, downstream spawns) apply once.
    done_ids: HashSet<JobId>,
    /// Per-worker: job ids already accepted, so a retransmitted
    /// Assign re-acks instead of re-enqueueing. Cleared on crash.
    accepted: Vec<HashSet<JobId>>,
    /// Per-worker: placement seq → accepted?, so a retransmitted
    /// Offer replays its outcome instead of re-running the policy.
    offer_outcomes: Vec<HashMap<u64, bool>>,
    /// Per-worker: completions not yet acked by the master, kept for
    /// retransmission. Cleared on crash.
    pending_done: Vec<HashMap<JobId, Job>>,

    // Replicated data plane. All of it is inert when `repl_active`
    // is false — no extra rng draws, no extra events, no log entries.
    repl_active: bool,
    /// Cluster-wide artifact → live replica set with the target
    /// factor; the self-healing plane's source of truth.
    replicas: ReplicaMap,
    /// In-flight re-replication copies: object → destination worker.
    /// Committed (`repair_start`) before the copy begins, removed on
    /// `repair_done`; the run does not end while one is in flight.
    repairs: HashMap<ObjectId, WorkerId>,
}

impl<'a> Engine<'a> {
    fn worker(&mut self, w: WorkerId) -> &mut WorkerNode {
        &mut self.nodes[w.0 as usize]
    }

    fn note_trace(&mut self, job: JobId, worker: WorkerId, kind: TraceKind) {
        let at = self.q.now();
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent {
                job,
                worker,
                kind,
                at,
            });
        }
    }

    /// Commit one scheduler event through the replicated log.
    ///
    /// Returns `true` when the caller may act on the event. Under the
    /// commit-before-act discipline a `false` return means the leader
    /// crashed *before* the entry reached a quorum: the decision was
    /// truncated, so its side effects must not happen. A crash *after*
    /// commit still returns `true` (the entry is durable and will
    /// survive replay) but arms `failover_pending` so no further
    /// decisions are taken by the dead leader.
    fn note_sched(
        &mut self,
        worker: Option<WorkerId>,
        job: Option<JobId>,
        kind: SchedEventKind,
    ) -> bool {
        let at = self.q.now();
        let Some(log) = &mut self.sched_log else {
            return true;
        };
        match log.append(SchedEvent {
            at,
            worker,
            job,
            kind,
        }) {
            AppendOutcome::Committed => true,
            AppendOutcome::LeaderCrashed { truncated } => {
                self.failover_pending = true;
                if truncated {
                    self.m.replog_truncated.inc();
                }
                !truncated
            }
        }
    }

    /// Placement hook for DAG task jobs: commits the `TaskAssign`
    /// decision alongside the `Assigned`/`Offered` entry and starts
    /// the attempt's straggler clock. A no-op (`true`) for plain jobs.
    fn note_task_assign(&mut self, worker: WorkerId, job: JobId) -> bool {
        let Some((root, task, speculative)) = self.dag.task_of(job) else {
            return true;
        };
        if !self.note_sched(
            Some(worker),
            Some(job),
            SchedEventKind::TaskAssign {
                root,
                task,
                speculative,
            },
        ) {
            return false;
        }
        let now = self.q.now().as_secs_f64();
        self.dag.on_placed(job, now);
        true
    }

    fn alloc_job_id(&mut self) -> JobId {
        let id = JobId::in_shard(self.cfg.shard, self.next_job_id);
        self.next_job_id += 1;
        id
    }

    /// The id a job enters allocation under: the pre-assigned
    /// federation identity when the routing tier stamped one, a
    /// locally allocated shard-qualified id otherwise. Honoring a
    /// pre-assigned id reserves the local-spawn band so downstream
    /// spawns can never collide with router-assigned sequence numbers.
    fn intake_id(&mut self, spec: &JobSpec) -> JobId {
        match spec.origin {
            Some(o) => {
                self.next_job_id = self.next_job_id.max(JobId::SPAWN_BAND);
                o.id
            }
            None => self.alloc_job_id(),
        }
    }

    /// Release one DAG task (or a speculative replica of one) into
    /// allocation. Commit-before-act: the `TaskOffer`/`SpecLaunch`
    /// decision is committed under the freshly allocated job id before
    /// the job is submitted; a truncated append drops the submission
    /// with the crashing leader.
    fn submit_task_job(&mut self, root: JobId, idx: u32, spec: JobSpec, speculative: bool) {
        let id = self.alloc_job_id();
        let kind = if speculative {
            SchedEventKind::SpecLaunch { root, task: idx }
        } else {
            let (preds, total) = self.dag.offer_payload(root, idx);
            SchedEventKind::TaskOffer {
                root,
                task: idx,
                preds,
                total,
            }
        };
        if !self.note_sched(None, Some(id), kind) {
            return;
        }
        self.created += 1;
        self.note_sched(None, Some(id), SchedEventKind::Submitted);
        self.dag.bind(root, idx, id, speculative);
        let job = spec.into_job(id);
        if !self.cfg.master_faults.is_empty() {
            self.jobs_inflight.insert(id, job.clone());
        }
        self.run_master(|m, ctx| m.on_job(job, ctx));
    }

    fn send_to_worker(&mut self, worker: WorkerId, msg: MasterToWorker) {
        self.m.control_messages.inc();
        let d = self.cfg.control.delay(&mut self.rng_control);
        if self.net_active {
            self.deliver_lossy(true, worker, d, Ev::WorkerRecv { worker, msg });
        } else {
            self.q.schedule_in(d, Ev::WorkerRecv { worker, msg });
        }
    }

    fn send_to_master(&mut self, from: WorkerId, msg: WorkerToMaster, extra: SimDuration) {
        self.m.control_messages.inc();
        let d = self.cfg.control.delay(&mut self.rng_control) + extra;
        if self.net_active {
            self.deliver_lossy(false, from, d, Ev::MasterRecv { from, msg });
        } else {
            self.q.schedule_in(d, Ev::MasterRecv { from, msg });
        }
    }

    /// Push `ev` across the lossy link with `worker` (direction picked
    /// by `to_worker`): partition windows and drop probability may eat
    /// it, duplication delivers it twice under one envelope id, and
    /// extra uniform delay stretches `base`.
    fn deliver_lossy(&mut self, to_worker: bool, worker: WorkerId, base: SimDuration, ev: Ev) {
        let plan = &self.cfg.netfaults;
        let link = if to_worker {
            plan.to_worker
        } else {
            plan.to_master
        };
        if plan.partitioned(worker, self.q.now())
            || (link.drop_prob > 0.0 && self.rng_net.chance(link.drop_prob))
        {
            self.m.net_dropped.inc();
            return;
        }
        let extra = |rng: &mut RngStream| {
            if link.delay_max_secs > 0.0 {
                SimDuration::from_secs_f64(rng.uniform(link.delay_min_secs, link.delay_max_secs))
            } else {
                SimDuration::ZERO
            }
        };
        let env = self.next_env;
        self.next_env += 1;
        if link.dup_prob > 0.0 && self.rng_net.chance(link.dup_prob) {
            self.m.net_duplicated.inc();
            let d = base + extra(&mut self.rng_net);
            self.q.schedule_in(
                d,
                Ev::NetDeliver {
                    env,
                    inner: Box::new(ev.clone()),
                },
            );
        }
        let d = base + extra(&mut self.rng_net);
        self.q.schedule_in(
            d,
            Ev::NetDeliver {
                env,
                inner: Box::new(ev),
            },
        );
    }

    /// Per-(job, placement) retry jitter seed.
    fn retry_seed(&self, job: JobId, seq: u64) -> u64 {
        self.cfg
            .netfaults
            .seed
            .wrapping_add(job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(seq)
    }

    /// Register an Assign/Offer placement with the reliability layer:
    /// remember it for retransmission, arm the first retry and the
    /// lease. Returns the placement seq to stamp on the message.
    fn arm_placement(&mut self, job: &Job, worker: WorkerId, offer: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding_net.insert(
            job.id,
            NetOutstanding {
                job: job.clone(),
                worker,
                seq,
                offer,
                acked: false,
            },
        );
        let retry = self.cfg.netfaults.retry;
        if let Some(d) = retry.delay_secs(self.retry_seed(job.id, seq), 0) {
            self.q.schedule_in(
                SimDuration::from_secs_f64(d),
                Ev::AssignRetry {
                    job: job.id,
                    seq,
                    attempt: 0,
                },
            );
        }
        self.q.schedule_in(
            SimDuration::from_secs_f64(retry.lease_secs),
            Ev::LeaseCheck { job: job.id, seq },
        );
        seq
    }

    fn run_master<F: FnOnce(&mut dyn MasterScheduler, &mut SchedCtx)>(&mut self, f: F) {
        // A crashed leader takes no further decisions; its queued
        // callbacks are dropped and the elected standby rebuilds from
        // the committed log instead.
        if self.failover_pending {
            return;
        }
        // The master only sees the live roster ("activeWorkers");
        // refresh the cached copy only after a crash or recovery.
        if self.roster_dirty {
            self.roster.clear();
            self.roster.extend(
                self.handles
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.active[*i] && !self.draining[*i])
                    .map(|(_, h)| h.clone()),
            );
            self.roster_dirty = false;
        }
        // Contest decisions (timeout / fallback) happen inside the
        // master; diff its stats around the call so the closures can
        // be attributed to the assignments it emits.
        let stats_before = self.master.stats();
        let mut ctx = SchedCtx::new(
            self.q.now(),
            &self.roster,
            &mut self.rng_master,
            &mut self.next_token,
        );
        f(self.master.as_mut(), &mut ctx);
        let actions = ctx.take_actions();
        let stats_after = self.master.stats();
        let mut timed_out_delta = stats_after.contests_timed_out - stats_before.contests_timed_out;
        let mut fallback_delta = stats_after.contests_fallback - stats_before.contests_fallback;
        self.m.contests_timed_out.add(timed_out_delta);
        self.m.contests_fallback.add(fallback_delta);
        // Commit-before-act: every decision is appended to the
        // replicated log and quorum-acked *before* its side effects
        // (metric bumps, contest bookkeeping, sends) run. A decision
        // whose append truncated with the crashing leader performs no
        // side effects — the loop breaks and the remaining actions are
        // dropped; the standby's replay re-derives the work instead.
        for action in actions {
            if self.failover_pending {
                break;
            }
            match action {
                SchedAction::Assign { worker, job } => {
                    if self.open_contests.contains_key(&job.id) {
                        // This assignment decides a bidding contest.
                        // The stats deltas belong to the first contest
                        // closed in this batch (at most one closes per
                        // master call in practice).
                        let timed_out = timed_out_delta > 0;
                        let fallback = fallback_delta > 0;
                        if !self.note_sched(
                            Some(worker),
                            Some(job.id),
                            SchedEventKind::ContestClosed {
                                timed_out,
                                fallback,
                            },
                        ) {
                            break;
                        }
                        timed_out_delta = 0;
                        fallback_delta = 0;
                        self.open_contests.remove(&job.id);
                        self.m.contests_closed.inc();
                    }
                    if !self.note_sched(Some(worker), Some(job.id), SchedEventKind::Assigned) {
                        break;
                    }
                    if !self.note_task_assign(worker, job.id) {
                        break;
                    }
                    let seq = if self.net_active {
                        self.arm_placement(&job, worker, false)
                    } else {
                        0
                    };
                    self.send_to_worker(worker, MasterToWorker::Assign { job, seq });
                }
                SchedAction::Offer { worker, job } => {
                    if !self.note_sched(Some(worker), Some(job.id), SchedEventKind::Offered) {
                        break;
                    }
                    if !self.note_task_assign(worker, job.id) {
                        break;
                    }
                    let seq = if self.net_active {
                        self.arm_placement(&job, worker, true)
                    } else {
                        0
                    };
                    self.send_to_worker(worker, MasterToWorker::Offer { job, seq });
                }
                SchedAction::BroadcastBidRequest { job } => {
                    if !self.note_sched(None, Some(job.id), SchedEventKind::ContestOpened) {
                        break;
                    }
                    self.m.contests_opened.inc();
                    self.open_contests.insert(
                        job.id,
                        OpenContest {
                            opened: self.q.now(),
                            bidders: Vec::new(),
                        },
                    );
                    for i in 0..self.handles.len() {
                        if self.active[i] && !self.draining[i] {
                            self.send_to_worker(
                                WorkerId(i as u32),
                                MasterToWorker::BidRequest(job.clone()),
                            );
                        }
                    }
                }
                SchedAction::Timer { delay, token } => {
                    self.q.schedule_in(delay, Ev::Timer(token));
                }
            }
        }
    }

    fn view_for(&self, w: WorkerId, job: &Job) -> WorkerView {
        let node = &self.nodes[w.0 as usize];
        let mut est_fetch_secs = node.est_fetch_secs(job, self.cfg.speed_learning);
        // Replica-aware pricing: a worker that would fetch from a live
        // peer replica bids the cheaper intra-cluster transfer, so
        // locality pressure spreads over the whole replica set instead
        // of concentrating on the one original holder.
        if self.repl_active && est_fetch_secs > 0.0 {
            if let Some(r) = job.resource {
                if !self.peer_sources(r.id, w).is_empty() {
                    est_fetch_secs /= self.cfg.replication.peer_bandwidth_scale;
                }
            }
        }
        WorkerView {
            id: w,
            now: self.q.now(),
            backlog_secs: node.backlog_secs(),
            has_data: node.has_data(job),
            declined_before: node.declined.contains(&job.id),
            est_fetch_secs,
            est_proc_secs: node.est_proc_secs(job, self.cfg.speed_learning),
            queue_len: node.queue.len(),
        }
    }

    fn enqueue_on_worker(&mut self, w: WorkerId, job: Job) {
        let now = self.q.now();
        let learning = self.cfg.speed_learning;
        self.m.assignments.inc();
        self.assignments.push((job.id, w));
        self.note_trace(job.id, w, TraceKind::Queued);
        let node = self.worker(w);
        let est = node.est_fetch_secs(&job, learning) + node.est_proc_secs(&job, learning);
        node.enqueue(job, now, est);
        self.maybe_start(w);
    }

    fn maybe_start(&mut self, w: WorkerId) {
        let now = self.q.now();
        if self.nodes[w.0 as usize].activity != WorkerActivity::Idle {
            return;
        }
        let Some(job) = self.nodes[w.0 as usize].queue.pop_front() else {
            return;
        };
        self.slots[w.0 as usize].started = Some(now);
        self.note_trace(job.id, w, TraceKind::Started);
        let node = &mut self.nodes[w.0 as usize];
        if let Some(&t0) = node.enqueued_at.get(&job.id) {
            self.m
                .queue_wait_secs
                .record(now.saturating_since(t0).as_secs_f64());
        }
        node.note_start(job.id, now);
        node.busy.set(now, 1.0);
        // Resolve the data dependency.
        let needs_fetch = match job.resource {
            None => false,
            Some(r) => !node.store.lookup(r.id, now),
        };
        if needs_fetch {
            let r = job.resource.expect("needs_fetch implies resource");
            node.activity = WorkerActivity::Fetching(job.id);
            self.slots[w.0 as usize].current = Some(job);
            if self.repl_active && !self.peer_sources(r.id, w).is_empty() {
                self.start_peer_fetch(w, 0);
            } else {
                self.master_fetch(w);
            }
        } else {
            self.slots[w.0 as usize].current = Some(job);
            self.begin_processing(w);
        }
    }

    fn begin_processing(&mut self, w: WorkerId) {
        let job = self.slots[w.0 as usize]
            .current
            .clone()
            .expect("processing without a current job");
        let node = &mut self.nodes[w.0 as usize];
        node.activity = WorkerActivity::Processing(job.id);
        let rng = &mut self.rng_workers[w.0 as usize];
        let m = node.rw_noise.sample(rng);
        let rw = node.spec.rw.scaled(m);
        let scan = rw.time_for(job.work_bytes);
        if job.work_bytes > 0 && !scan.is_zero() && scan != SimDuration::MAX {
            let mbps = job.work_bytes as f64 / 1e6 / scan.as_secs_f64();
            node.rw_tracker.observe(mbps);
        }
        let total = scan.mul_f64(node.spec.cpu_factor)
            + SimDuration::from_secs_f64(job.cpu_secs * node.spec.cpu_factor);
        let epoch = self.epochs[w.0 as usize];
        self.q.schedule_in(total, Ev::ProcDone { worker: w, epoch });
    }

    /// Worker-side ack of an Assign (or accepted Offer): crosses the
    /// lossy worker→master link like any other control message.
    fn ack_assign(&mut self, worker: WorkerId, job: JobId, seq: u64) {
        self.m.control_messages.inc();
        let d = self.cfg.control.delay(&mut self.rng_control);
        self.deliver_lossy(false, worker, d, Ev::AssignAck { worker, job, seq });
    }

    /// Return a job to the master through the monitoring layer: it
    /// re-enters allocation after the fault-detection delay. If no
    /// worker is alive, keep retrying — the job waits for a recovery.
    fn bounce(&mut self, job: Job) {
        self.q
            .schedule_in(self.cfg.faults.detection_delay, Ev::Redispatch(job));
    }

    /// Live peers currently holding `obj` (ascending id), excluding
    /// `exclude` — the candidate sources for a peer fetch.
    fn peer_sources(&self, obj: ObjectId, exclude: WorkerId) -> Vec<WorkerId> {
        self.replicas
            .replicas(obj)
            .filter(|&h| h != exclude.0 && self.active[h as usize])
            .map(WorkerId)
            .collect()
    }

    /// Deterministic data-plane loss for one peer transfer attempt.
    ///
    /// Sampled from a hash of (net seed, object, endpoint, attempt) —
    /// not from an rng stream — so the decision is independent of
    /// event timing and identical across both runtimes. Composes the
    /// replication plane's own `peer_drop_prob` with any active
    /// [`NetFaultPlan`] link loss as independent failures.
    fn peer_dropped(&self, obj: ObjectId, w: WorkerId, attempt: u32) -> bool {
        let keep = (1.0 - self.cfg.replication.peer_drop_prob)
            * (1.0 - self.cfg.netfaults.to_worker.drop_prob);
        let p = 1.0 - keep;
        if p <= 0.0 {
            return false;
        }
        let mut s = self
            .cfg
            .netfaults
            .seed
            .wrapping_add(obj.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(((w.0 as u64) << 32) | attempt as u64);
        let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fall back to the master data plane for the worker's current
    /// fetch: the repository host serves the bytes at the worker's
    /// nominal link speed. Always succeeds (the paper's TCP
    /// assumption) — this is the degraded path that keeps runs
    /// terminating when every replica is unreachable.
    fn master_fetch(&mut self, w: WorkerId) {
        let job = self.slots[w.0 as usize]
            .current
            .clone()
            .expect("fetch without job");
        let r = job.resource.expect("fetch without resource");
        self.slots[w.0 as usize].fetch_from = None;
        let node = &mut self.nodes[w.0 as usize];
        let rng = &mut self.rng_workers[w.0 as usize];
        let outcome = node.link.transfer(r.bytes, rng);
        node.net_tracker.observe(outcome.achieved_mb_per_sec());
        let epoch = self.epochs[w.0 as usize];
        self.q
            .schedule_in(outcome.duration, Ev::FetchDone { worker: w, epoch });
    }

    /// Start peer-fetch attempt `attempt` for the worker's current
    /// job, rotating over the live replicas; degrades to a master
    /// fetch when no replica is live or the attempt budget is spent.
    fn start_peer_fetch(&mut self, w: WorkerId, attempt: u32) {
        let job = self.slots[w.0 as usize]
            .current
            .clone()
            .expect("fetch without job");
        let r = job.resource.expect("fetch without resource");
        let sources = self.peer_sources(r.id, w);
        if sources.is_empty() || attempt >= self.cfg.replication.max_fetch_attempts {
            self.master_fetch(w);
            return;
        }
        let from = sources[attempt as usize % sources.len()];
        self.slots[w.0 as usize].fetch_from = Some(from);
        self.note_sched(
            Some(w),
            Some(job.id),
            SchedEventKind::FetchReq {
                object: r.id.0,
                from,
            },
        );
        let epoch = self.epochs[w.0 as usize];
        let now = self.q.now();
        let blocked = self.cfg.netfaults.link_blocked(from, w, now);
        if blocked || self.peer_dropped(r.id, w, attempt) {
            // The transfer is lost in flight; the worker notices via
            // timeout.
            let d = SimDuration::from_secs_f64(self.cfg.replication.fetch_timeout_secs);
            self.q.schedule_in(
                d,
                Ev::PeerFetchTimeout {
                    worker: w,
                    epoch,
                    attempt,
                },
            );
            return;
        }
        let node = &mut self.nodes[w.0 as usize];
        let rng = &mut self.rng_workers[w.0 as usize];
        let outcome = node.link.transfer(r.bytes, rng);
        let d = outcome
            .duration
            .mul_f64(1.0 / self.cfg.replication.peer_bandwidth_scale);
        self.q
            .schedule_in(d, Ev::PeerFetchArrive { worker: w, epoch });
    }

    /// Post-insert replica bookkeeping: commit a `replica_drop` for
    /// every eviction the insert caused, a `replica_add` if the object
    /// was retained and is a new copy, re-derive pins, and top up
    /// toward the target factor. A no-op when replication is off.
    fn note_replica_insert(
        &mut self,
        w: WorkerId,
        obj: ObjectId,
        bytes: u64,
        evicted: Vec<ObjectId>,
    ) {
        if !self.repl_active {
            return;
        }
        for gone in evicted {
            if self.replicas.drop_replica(gone, w.0) {
                self.note_sched(
                    Some(w),
                    None,
                    SchedEventKind::ReplicaDrop {
                        object: gone.0,
                        evicted: true,
                    },
                );
                self.sync_pins(gone);
            }
        }
        // An insert that passed through (pins or capacity blocked
        // admission) did not create a copy.
        if self.nodes[w.0 as usize].store.peek(obj) && self.replicas.add(obj, w.0, bytes) {
            self.note_sched(Some(w), None, SchedEventKind::ReplicaAdd { object: obj.0 });
            self.sync_pins(obj);
            if self.replicas.count(obj) < self.replicas.factor() as usize {
                // Proactive top-up: a fresh artifact is replicated to
                // the target factor without waiting for a crash.
                self.start_repair(obj);
            }
        }
    }

    /// Re-derive eviction pins for `obj`: its sole surviving copy is
    /// pinned (eviction must never destroy data the cluster cannot
    /// re-create); once a second copy exists the pin is released.
    fn sync_pins(&mut self, obj: ObjectId) {
        let holders: Vec<u32> = self.replicas.replicas(obj).collect();
        if holders.len() == 1 {
            if !self.cfg.replication.evict_last_copy {
                self.nodes[holders[0] as usize].store.pin(obj);
            }
        } else {
            for h in holders {
                self.nodes[h as usize].store.unpin(obj);
            }
        }
    }

    /// The preferred destination for a new copy of `obj`: the live,
    /// non-draining worker with the most free store bytes that does
    /// not already hold it (ties broken by lowest id).
    fn repair_dest(&self, obj: ObjectId) -> Option<WorkerId> {
        (0..self.nodes.len())
            .filter(|&i| self.active[i] && !self.draining[i] && !self.replicas.holds(obj, i as u32))
            .max_by_key(|&i| {
                let free = self.nodes[i]
                    .store
                    .capacity()
                    .saturating_sub(self.nodes[i].store.used());
                (free, std::cmp::Reverse(i))
            })
            .map(|i| WorkerId(i as u32))
    }

    /// Begin one re-replication increment for `obj` under the
    /// commit-before-copy discipline: the `repair_start` decision is
    /// committed through the replicated log *before* any bytes move,
    /// so a master failover can resume outstanding repairs from the
    /// log without double-copying. At most one repair per object is in
    /// flight; each completion re-checks the factor and starts the
    /// next increment if needed.
    fn start_repair(&mut self, obj: ObjectId) {
        if !self.repl_active || self.repairs.contains_key(&obj) {
            return;
        }
        let Some(bytes) = self.replicas.bytes(obj) else {
            return;
        };
        let Some(&src) = self
            .replicas
            .replicas(obj)
            .filter(|&h| self.active[h as usize])
            .collect::<Vec<_>>()
            .first()
        else {
            // No live source: the copy cannot be made. If a fetch or
            // repair was in flight the oracle reports the loss.
            return;
        };
        let Some(dest) = self.repair_dest(obj) else {
            return;
        };
        if !self.note_sched(
            Some(dest),
            None,
            SchedEventKind::RepairStart {
                object: obj.0,
                from: WorkerId(src),
            },
        ) {
            return;
        }
        self.m.repairs_started.inc();
        if self.cfg.replication.skip_repair {
            // Sabotage: the decision is committed but the copy never
            // happens — the oracle must flag the unmatched start.
            return;
        }
        self.repairs.insert(obj, dest);
        self.queue_repair_copy(obj, bytes, dest);
    }

    /// Schedule the physical copy of one repair. Peer-sourced at
    /// intra-cluster speed when the data plane delivers it; a transfer
    /// the plane would lose degrades to a master-sourced copy at
    /// nominal link speed, which always succeeds — a committed repair
    /// always completes (unless sabotaged).
    fn queue_repair_copy(&mut self, obj: ObjectId, bytes: u64, dest: WorkerId) {
        // Attempt key 0x8000_0000 separates repair-copy samples from
        // fetch-attempt samples of the same (object, worker) pair.
        let degraded = self.peer_dropped(obj, dest, 0x8000_0000);
        let node = &mut self.nodes[dest.0 as usize];
        let rng = &mut self.rng_workers[dest.0 as usize];
        let outcome = node.link.transfer(bytes, rng);
        let d = if degraded {
            outcome.duration
        } else {
            outcome
                .duration
                .mul_f64(1.0 / self.cfg.replication.peer_bandwidth_scale)
        };
        self.q
            .schedule_in(d, Ev::RepairArrive { object: obj, dest });
    }

    /// Scan for under-replicated artifacts and start a repair for
    /// each. Called after crash/removal diffs and after a master
    /// failover (resuming from the committed log's unmatched starts is
    /// subsumed: in-flight copies stay in `repairs`, so only truncated
    /// or missing repairs are re-issued).
    fn schedule_repairs(&mut self) {
        if !self.repl_active {
            return;
        }
        for obj in self.replicas.under_replicated() {
            self.start_repair(obj);
        }
    }

    /// Crash/removal hook: `w`'s disk dies, so every copy it held
    /// leaves the replica set. Commits one `replica_drop` per object
    /// (evicted = false — this is a failure, not cache pressure),
    /// re-derives pins, and schedules re-replication for everything
    /// now under-replicated.
    fn drop_worker_replicas(&mut self, w: WorkerId) {
        if !self.repl_active {
            return;
        }
        for obj in self.replicas.drop_node(w.0) {
            self.note_sched(
                Some(w),
                None,
                SchedEventKind::ReplicaDrop {
                    object: obj.0,
                    evicted: false,
                },
            );
            self.sync_pins(obj);
        }
        self.schedule_repairs();
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(spec) => {
                if let Some(dag) = spec.dag.clone() {
                    // Atomization: the arriving job never enters
                    // allocation itself. Its DAG is registered under a
                    // root id (which appears only in Task* payloads)
                    // and the gate-open tasks are released as ordinary
                    // jobs through the unchanged bidding machinery.
                    self.arrivals_seen += 1;
                    let root = self.alloc_job_id();
                    let released = self.dag.register(root, spec.task, dag);
                    for (idx, tspec) in released {
                        self.submit_task_job(root, idx, tspec, false);
                    }
                    if !self.spec_check_armed {
                        self.spec_check_armed = true;
                        let d = SimDuration::from_secs_f64(self.cfg.atomize.spec_check_secs);
                        self.q.schedule_in(d, Ev::SpecCheck);
                    }
                    return;
                }
                self.arrivals_seen += 1;
                let id = self.intake_id(&spec);
                self.created += 1;
                // A job handed off from a peer shard enters the log as
                // a `SpillIn` under its home-qualified id; everything
                // else is a fresh local submission.
                let intake = match spec.origin.and_then(|o| o.spilled_from) {
                    Some(from_shard) => SchedEventKind::SpillIn { from_shard },
                    None => SchedEventKind::Submitted,
                };
                self.note_sched(None, Some(id), intake);
                let job = spec.into_job(id);
                if !self.cfg.master_faults.is_empty() {
                    self.jobs_inflight.insert(id, job.clone());
                }
                self.run_master(|m, ctx| m.on_job(job, ctx));
            }
            Ev::WorkerRecv { worker, msg } => match msg {
                _ if !self.active[worker.0 as usize] => {
                    // The addressee is dead. Assignments and offers
                    // bounce back through the monitoring layer; a bid
                    // request simply goes unanswered (the contest
                    // resolves by window timeout). Under the net-fault
                    // layer the crash already bounced every unacked
                    // placement at this worker, so only a placement
                    // still on the books may bounce here — otherwise
                    // the job would re-enter allocation twice.
                    match msg {
                        MasterToWorker::Assign { job, seq }
                        | MasterToWorker::Offer { job, seq } => {
                            if self.net_active {
                                let current = self
                                    .outstanding_net
                                    .get(&job.id)
                                    .is_some_and(|o| o.worker == worker && o.seq == seq);
                                if current {
                                    self.outstanding_net.remove(&job.id);
                                    self.bounce(job);
                                }
                            } else {
                                self.bounce(job);
                            }
                        }
                        MasterToWorker::BidRequest(_) => {}
                    }
                }
                MasterToWorker::Assign { job, seq } => {
                    if self.net_active {
                        if !self.accepted[worker.0 as usize].insert(job.id) {
                            // Retransmission of an assignment we hold:
                            // re-ack, do not re-enqueue.
                            self.ack_assign(worker, job.id, seq);
                            return;
                        }
                        self.ack_assign(worker, job.id, seq);
                    }
                    self.enqueue_on_worker(worker, job);
                }
                MasterToWorker::Offer { job, seq } => {
                    if self.net_active {
                        match self.offer_outcomes[worker.0 as usize].get(&seq).copied() {
                            Some(true) => {
                                self.ack_assign(worker, job.id, seq);
                                return;
                            }
                            Some(false) => {
                                // Replay the rejection without logging
                                // or re-running the policy.
                                self.send_to_master(
                                    worker,
                                    WorkerToMaster::Reject { job },
                                    SimDuration::ZERO,
                                );
                                return;
                            }
                            None => {}
                        }
                    }
                    let view = self.view_for(worker, &job);
                    let jv = JobView {
                        id: job.id,
                        resource_bytes: job.resource_bytes(),
                    };
                    let accept = self.policies[worker.0 as usize].accept_offer(&view, &jv);
                    if self.net_active {
                        self.offer_outcomes[worker.0 as usize].insert(seq, accept);
                    }
                    if accept {
                        if self.net_active {
                            self.accepted[worker.0 as usize].insert(job.id);
                            self.ack_assign(worker, job.id, seq);
                        }
                        self.enqueue_on_worker(worker, job);
                    } else {
                        // The Rejected log entry is written when the
                        // reject *reaches the master* (below), not
                        // here: the log is the master's replicated
                        // state, and an in-flight reject must not look
                        // applied to a standby replaying after
                        // failover.
                        self.worker(worker).declined.insert(job.id);
                        self.send_to_master(
                            worker,
                            WorkerToMaster::Reject { job },
                            SimDuration::ZERO,
                        );
                    }
                }
                MasterToWorker::BidRequest(job) => {
                    let view = self.view_for(worker, &job);
                    let jv = JobView {
                        id: job.id,
                        resource_bytes: job.resource_bytes(),
                    };
                    if let Some(est) = self.policies[worker.0 as usize].bid(&view, &jv) {
                        self.send_to_master(
                            worker,
                            WorkerToMaster::Bid {
                                job: job.id,
                                estimate_secs: est,
                            },
                            self.cfg.bid_compute_delay,
                        );
                    }
                }
            },
            Ev::MasterRecv { from, msg } => {
                // A draining or departed worker is out of allocation:
                // its idle announcements and bids are dropped at intake
                // (it must not re-enter the pull loop or win a
                // contest). Rejects and completions still flow — the
                // rejected job must re-enter allocation, and a finished
                // job's result is never discarded.
                if self.draining[from.0 as usize] || self.departed[from.0 as usize] {
                    match msg {
                        WorkerToMaster::Idle | WorkerToMaster::Bid { .. } => return,
                        _ => {}
                    }
                }
                if self.net_active {
                    if let WorkerToMaster::Reject { job } = &msg {
                        // A Reject is the nack of an offer: it cancels
                        // the placement (and its retries and lease).
                        // One that does not match the current
                        // placement is a stale or duplicate delivery —
                        // forwarding it would double-advance the
                        // Baseline's re-offer routing.
                        match self.outstanding_net.get(&job.id) {
                            Some(o) if o.worker == from => {
                                self.outstanding_net.remove(&job.id);
                            }
                            _ => return,
                        }
                    }
                }
                if let WorkerToMaster::Reject { job } = &msg {
                    // Logged at the receipt site (not when the worker
                    // declined) so the replicated log reflects exactly
                    // what the master has seen; the stale-reject guard
                    // above already filtered duplicates.
                    self.note_sched(Some(from), Some(job.id), SchedEventKind::Rejected);
                }
                if let WorkerToMaster::Bid { job, estimate_secs } = &msg {
                    // Mirror the threaded master's intake: only a bid
                    // freshly recorded into an open contest is logged.
                    // A late bid (the contest already closed) or a
                    // duplicate — e.g. a stale in-flight bid solicited
                    // by a pre-failover leader arriving next to the
                    // re-solicited one — is received but never
                    // committed, matching what the master counts.
                    if estimate_secs.is_finite() {
                        if let Some(c) = self.open_contests.get_mut(job) {
                            if !c.bidders.contains(&from) {
                                c.bidders.push(from);
                                self.m.bids_received.inc();
                                let waited = self.q.now().saturating_since(c.opened);
                                self.m.bid_latency_secs.record(waited.as_secs_f64());
                                self.note_sched(
                                    Some(from),
                                    Some(*job),
                                    SchedEventKind::BidReceived {
                                        estimate_secs: *estimate_secs,
                                    },
                                );
                                // A bid on a DAG task additionally
                                // lands in the per-task vocabulary so
                                // the oracle can tie pricing to the
                                // DAG without joining on job ids.
                                if let Some((root, task, _)) = self.dag.task_of(*job) {
                                    self.note_sched(
                                        Some(from),
                                        Some(*job),
                                        SchedEventKind::TaskBid {
                                            root,
                                            task,
                                            estimate_secs: *estimate_secs,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                self.run_master(|m, ctx| m.on_worker_message(from, msg, ctx));
            }
            Ev::Timer(token) => {
                self.run_master(|m, ctx| m.on_timer(token, ctx));
            }
            Ev::FetchDone { worker, epoch } => {
                if !self.active[worker.0 as usize] || epoch != self.epochs[worker.0 as usize] {
                    return;
                }
                let now = self.q.now();
                let job = self.slots[worker.0 as usize]
                    .current
                    .clone()
                    .expect("fetch without job");
                let r = job.resource.expect("fetch without resource");
                if let Some(started) = self.slots[worker.0 as usize].started {
                    self.m
                        .fetch_secs
                        .record(now.saturating_since(started).as_secs_f64());
                }
                self.slots[worker.0 as usize].fetch_done = Some(now);
                let evicted = self.worker(worker).store.insert(r.id, r.bytes, now);
                self.note_replica_insert(worker, r.id, r.bytes, evicted);
                self.note_trace(job.id, worker, TraceKind::Fetched);
                self.begin_processing(worker);
            }
            Ev::PeerFetchArrive { worker, epoch } => {
                if !self.active[worker.0 as usize] || epoch != self.epochs[worker.0 as usize] {
                    return;
                }
                let now = self.q.now();
                let job = self.slots[worker.0 as usize]
                    .current
                    .clone()
                    .expect("peer fetch without job");
                let r = job.resource.expect("peer fetch without resource");
                let from = self.slots[worker.0 as usize]
                    .fetch_from
                    .take()
                    .expect("peer fetch without source");
                self.note_sched(
                    Some(worker),
                    Some(job.id),
                    SchedEventKind::FetchOk {
                        object: r.id.0,
                        from,
                    },
                );
                if let Some(started) = self.slots[worker.0 as usize].started {
                    self.m
                        .fetch_secs
                        .record(now.saturating_since(started).as_secs_f64());
                }
                self.slots[worker.0 as usize].fetch_done = Some(now);
                let node = self.worker(worker);
                // The lookup in `maybe_start` counted a cold miss;
                // the bytes came from a peer, so reclassify it.
                node.store.note_peer_fetch();
                let evicted = node.store.insert(r.id, r.bytes, now);
                self.note_replica_insert(worker, r.id, r.bytes, evicted);
                self.note_trace(job.id, worker, TraceKind::Fetched);
                self.begin_processing(worker);
            }
            Ev::PeerFetchTimeout {
                worker,
                epoch,
                attempt,
            } => {
                if !self.active[worker.0 as usize] || epoch != self.epochs[worker.0 as usize] {
                    return;
                }
                let job = self.slots[worker.0 as usize]
                    .current
                    .clone()
                    .expect("peer fetch timeout without job");
                let r = job.resource.expect("peer fetch without resource");
                let from = self.slots[worker.0 as usize]
                    .fetch_from
                    .take()
                    .expect("peer fetch without source");
                self.note_sched(
                    Some(worker),
                    Some(job.id),
                    SchedEventKind::FetchFail {
                        object: r.id.0,
                        from,
                        attempt,
                    },
                );
                self.m.peer_retries.inc();
                let next = attempt + 1;
                if next >= self.cfg.replication.max_fetch_attempts {
                    // Every replica attempt is spent: degrade to the
                    // master data plane, which always delivers.
                    self.master_fetch(worker);
                    return;
                }
                // Seeded backoff before rotating to the next replica.
                let seed = self.retry_seed(job.id, r.id.0);
                let d = self
                    .cfg
                    .netfaults
                    .retry
                    .delay_secs(seed, attempt.min(self.cfg.netfaults.retry.max_attempts - 1))
                    .unwrap_or(self.cfg.netfaults.retry.base_secs);
                self.q.schedule_in(
                    SimDuration::from_secs_f64(d),
                    Ev::PeerFetchRetry {
                        worker,
                        epoch,
                        attempt: next,
                    },
                );
            }
            Ev::PeerFetchRetry {
                worker,
                epoch,
                attempt,
            } => {
                if !self.active[worker.0 as usize] || epoch != self.epochs[worker.0 as usize] {
                    return;
                }
                self.start_peer_fetch(worker, attempt);
            }
            Ev::RepairArrive { object, dest } => {
                let Some(&cur) = self.repairs.get(&object) else {
                    return;
                };
                if cur != dest {
                    return;
                }
                if !self.active[dest.0 as usize] {
                    // The destination died mid-copy. Re-route the same
                    // committed repair to a fresh destination — no
                    // second `repair_start` (that would double-count
                    // the decision).
                    let bytes = self.replicas.bytes(object);
                    match (self.repair_dest(object), bytes) {
                        (Some(nd), Some(bytes)) => {
                            self.repairs.insert(object, nd);
                            self.queue_repair_copy(object, bytes, nd);
                        }
                        _ => {
                            // No destination (or the data is gone):
                            // retry once somebody recovers.
                            let d =
                                SimDuration::from_secs_f64(self.cfg.replication.fetch_timeout_secs);
                            self.q.schedule_in(d, Ev::RepairArrive { object, dest });
                        }
                    }
                    return;
                }
                self.repairs.remove(&object);
                let now = self.q.now();
                let bytes = self.replicas.bytes(object).unwrap_or(0);
                let evicted = self.worker(dest).store.insert(object, bytes, now);
                self.note_sched(
                    Some(dest),
                    None,
                    SchedEventKind::RepairDone { object: object.0 },
                );
                self.m.repairs_completed.inc();
                self.note_replica_insert(dest, object, bytes, evicted);
                if self.replicas.count(object) < self.replicas.factor() as usize {
                    self.start_repair(object);
                }
            }
            Ev::ProcDone { worker, epoch } => {
                if !self.active[worker.0 as usize] || epoch != self.epochs[worker.0 as usize] {
                    return;
                }
                let now = self.q.now();
                let job = self.slots[worker.0 as usize]
                    .current
                    .take()
                    .expect("done without job");
                let started = self.slots[worker.0 as usize]
                    .started
                    .take()
                    .expect("done without start time");
                // Processing phase: from fetch completion (or physical
                // start when the data was local) until now.
                let proc_from = self.slots[worker.0 as usize]
                    .fetch_done
                    .take()
                    .unwrap_or(started);
                self.m
                    .proc_secs
                    .record(now.saturating_since(proc_from).as_secs_f64());
                let est = self.nodes[worker.0 as usize]
                    .unfinished_est
                    .get(&job.id)
                    .copied()
                    .unwrap_or(0.0);
                let actual = now.saturating_since(started).as_secs_f64();
                self.policies[worker.0 as usize].on_job_finished(est, actual);
                self.note_trace(job.id, worker, TraceKind::Finished);
                {
                    let node = self.worker(worker);
                    node.finish(job.id);
                    node.activity = WorkerActivity::Idle;
                    node.busy.set(now, 0.0);
                }
                // Report the result to the master (Listing 2 line 14):
                // one control message carrying the completed job.
                self.m.control_messages.inc();
                let d = self.cfg.control.delay(&mut self.rng_control);
                if self.net_active {
                    // `Done` crosses the lossy link; keep a copy for
                    // retransmission until the master acks it.
                    self.pending_done[worker.0 as usize].insert(job.id, job.clone());
                    let job_id = job.id;
                    self.deliver_lossy(false, worker, d, Ev::Done { worker, job });
                    let retry = self.cfg.netfaults.retry;
                    let seed = self.retry_seed(job_id, u64::MAX);
                    if let Some(rd) = retry.delay_secs(seed, 0) {
                        let due = self.epochs[worker.0 as usize];
                        self.q.schedule_in(
                            SimDuration::from_secs_f64(rd),
                            Ev::DoneRetry {
                                worker,
                                job: job_id,
                                epoch: due,
                                attempt: 0,
                            },
                        );
                    }
                } else {
                    self.q.schedule_in(d, Ev::Done { worker, job });
                }
                // If the queue drained, the worker announces idleness
                // (the Baseline's next pull).
                if self.nodes[worker.0 as usize].queue.is_empty() {
                    self.send_to_master(worker, WorkerToMaster::Idle, SimDuration::ZERO);
                }
                self.maybe_start(worker);
                self.maybe_finish_drain(worker);
            }
            Ev::Done { worker, job } => {
                if self.net_active {
                    // Ack every delivery — including semantic
                    // duplicates, whose sender is still retransmitting.
                    let d = self.cfg.control.delay(&mut self.rng_control);
                    self.deliver_lossy(
                        true,
                        worker,
                        d,
                        Ev::DoneAck {
                            worker,
                            job: job.id,
                        },
                    );
                    if self.done_ids.contains(&job.id) {
                        // A lease bounce or duplicate delivery: the
                        // job's side effects were already applied.
                        return;
                    }
                    self.done_ids.insert(job.id);
                    if self
                        .outstanding_net
                        .get(&job.id)
                        .is_some_and(|o| o.worker == worker)
                    {
                        self.outstanding_net.remove(&job.id);
                    }
                }
                self.complete_at_master(worker, job);
            }
            Ev::Redispatch(job) => {
                if self.net_active && self.done_ids.contains(&job.id) {
                    // A late bounce of a job that completed elsewhere.
                    return;
                }
                if self.dag.is_cancelled(job.id) {
                    // A cancelled losing attempt stranded by a crash:
                    // its accounting happened at `SpecCancel`, so it
                    // must not re-enter allocation.
                    return;
                }
                let placeable = (0..self.active.len()).any(|i| self.active[i] && !self.draining[i]);
                if placeable {
                    self.m.jobs_redistributed.inc();
                    self.note_sched(None, Some(job.id), SchedEventKind::Redistributed);
                    self.run_master(|m, ctx| m.on_job(job, ctx));
                } else {
                    // Nobody alive: wait for a recovery.
                    self.bounce(job);
                }
            }
            Ev::Fault(FaultEvent::Crash(w)) => self.crash(w),
            Ev::Fault(FaultEvent::Recover(w)) => self.recover(w),
            Ev::Membership(e) => match e.action {
                MembershipAction::Join => self.join_worker(e.worker),
                MembershipAction::Drain => self.drain_worker(e.worker),
                MembershipAction::Remove => self.remove_worker(e.worker),
            },
            Ev::NetDeliver { env, inner } => {
                if self.seen_envs.insert(env) {
                    self.handle(*inner);
                } else {
                    self.m.net_dedup_hits.inc();
                }
            }
            Ev::AssignAck { worker, job, seq } => {
                let matches = self
                    .outstanding_net
                    .get(&job)
                    .is_some_and(|o| o.worker == worker && o.seq == seq && !o.acked);
                if matches {
                    self.outstanding_net.get_mut(&job).unwrap().acked = true;
                    self.m.acks_received.inc();
                    self.note_sched(Some(worker), Some(job), SchedEventKind::AssignAcked);
                }
            }
            Ev::AssignRetry { job, seq, attempt } => {
                let due = self
                    .outstanding_net
                    .get(&job)
                    .filter(|o| o.seq == seq && !o.acked)
                    .map(|o| (o.worker, o.job.clone(), o.offer));
                if let Some((worker, job_clone, offer)) = due {
                    self.m.net_retries.inc();
                    self.note_sched(Some(worker), Some(job), SchedEventKind::Resent { attempt });
                    let msg = if offer {
                        MasterToWorker::Offer {
                            job: job_clone,
                            seq,
                        }
                    } else {
                        MasterToWorker::Assign {
                            job: job_clone,
                            seq,
                        }
                    };
                    self.send_to_worker(worker, msg);
                    let retry = self.cfg.netfaults.retry;
                    if let Some(d) = retry.delay_secs(self.retry_seed(job, seq), attempt + 1) {
                        self.q.schedule_in(
                            SimDuration::from_secs_f64(d),
                            Ev::AssignRetry {
                                job,
                                seq,
                                attempt: attempt + 1,
                            },
                        );
                    }
                    // Exhaustion is not an error: the lease decides.
                }
            }
            Ev::LeaseCheck { job, seq } => {
                let expired = self
                    .outstanding_net
                    .get(&job)
                    .filter(|o| o.seq == seq && !o.acked)
                    .map(|o| (o.worker, o.job.clone()));
                if let Some((worker, job_clone)) = expired {
                    self.outstanding_net.remove(&job);
                    self.m.lease_expired.inc();
                    self.note_sched(Some(worker), Some(job), SchedEventKind::LeaseExpired);
                    if !self.done_ids.contains(&job) && !self.dag.is_cancelled(job) {
                        self.run_master(|m, ctx| m.on_job(job_clone, ctx));
                    }
                }
            }
            Ev::DoneAck { worker, job } => {
                self.pending_done[worker.0 as usize].remove(&job);
                // A draining worker must not depart while a completion
                // report is still unacknowledged; this ack may have
                // been the last thing holding the drain open.
                self.maybe_finish_drain(worker);
            }
            Ev::DoneRetry {
                worker,
                job,
                epoch,
                attempt,
            } => {
                if epoch != self.epochs[worker.0 as usize]
                    || !self.pending_done[worker.0 as usize].contains_key(&job)
                {
                    return;
                }
                let job_clone = self.pending_done[worker.0 as usize][&job].clone();
                self.m.net_retries.inc();
                self.note_sched(Some(worker), Some(job), SchedEventKind::Resent { attempt });
                self.m.control_messages.inc();
                let d = self.cfg.control.delay(&mut self.rng_control);
                self.deliver_lossy(
                    false,
                    worker,
                    d,
                    Ev::Done {
                        worker,
                        job: job_clone,
                    },
                );
                // `Done` retransmits until acked — past the configured
                // attempts the backoff just stays at its cap.
                let retry = self.cfg.netfaults.retry;
                let capped = (attempt + 1).min(retry.max_attempts.saturating_sub(1));
                if let Some(d) = retry.delay_secs(self.retry_seed(job, u64::MAX), capped) {
                    self.q.schedule_in(
                        SimDuration::from_secs_f64(d),
                        Ev::DoneRetry {
                            worker,
                            job,
                            epoch,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
            Ev::IdleBeat(worker) => {
                let w = worker.0 as usize;
                if self.active[w]
                    && !self.draining[w]
                    && self.nodes[w].queue.is_empty()
                    && self.nodes[w].activity == WorkerActivity::Idle
                {
                    self.send_to_master(worker, WorkerToMaster::Idle, SimDuration::ZERO);
                }
                // A departed worker never comes back — let its beat die.
                if !self.departed[w] && (self.active[w] || !self.cfg.faults.is_empty()) {
                    let beat = self.cfg.netfaults.retry.heartbeat_secs;
                    self.q
                        .schedule_in(SimDuration::from_secs_f64(beat), Ev::IdleBeat(worker));
                }
            }
            Ev::SpecCheck => {
                if !self.dag.is_active() {
                    // Every DAG drained; a later atomized arrival
                    // re-arms the sweep.
                    self.spec_check_armed = false;
                    return;
                }
                let now_secs = self.q.now().as_secs_f64();
                if let Some(sp) = self.dag.straggler(now_secs) {
                    self.submit_task_job(sp.root, sp.task, sp.spec, true);
                }
                let d = SimDuration::from_secs_f64(self.cfg.atomize.spec_check_secs);
                self.q.schedule_in(d, Ev::SpecCheck);
            }
        }
    }

    fn crash(&mut self, w: WorkerId) {
        if !self.active[w.0 as usize] {
            return;
        }
        let now = self.q.now();
        self.active[w.0 as usize] = false;
        self.roster_dirty = true;
        self.epochs[w.0 as usize] += 1;
        self.m.worker_crashes.inc();
        self.down_since[w.0 as usize] = Some(now);
        self.note_sched(Some(w), None, SchedEventKind::Crash);
        let mut stranded: Vec<Job> = Vec::new();
        if let Some(job) = self.slots[w.0 as usize].current.take() {
            stranded.push(job);
        }
        {
            let node = self.worker(w);
            stranded.extend(node.queue.drain(..));
            node.clear_backlog();
            node.enqueued_at.clear();
            node.activity = WorkerActivity::Idle;
            node.busy.set(now, 0.0);
            // The disk dies with the instance; accounting of what was
            // downloaded before the crash is retained.
            node.store.clear();
        }
        // The control plane repairs the data plane: diff the dead
        // worker's resident set against the replica registry and
        // re-replicate everything now under its target factor.
        self.drop_worker_replicas(w);
        if self.net_active {
            // The worker's protocol memory dies with it.
            self.accepted[w.0 as usize].clear();
            self.offer_outcomes[w.0 as usize].clear();
            self.pending_done[w.0 as usize].clear();
            // Placements at the dead worker: anything that made it
            // into the queue/slot bounces with the stranded set above
            // — including *unacked* deliveries whose ack the link ate.
            // Only a placement that never arrived (not stranded)
            // bounces here; the removed entry keeps the dead-addressee
            // path and the stale lease from bouncing either kind
            // again. Sorted so the redispatch order (and every rng
            // draw after it) is deterministic.
            let stranded_ids: HashSet<JobId> = stranded.iter().map(|j| j.id).collect();
            let mut mine: Vec<JobId> = self
                .outstanding_net
                .iter()
                .filter(|(_, o)| o.worker == w)
                .map(|(id, _)| *id)
                .collect();
            mine.sort_unstable_by_key(|id| id.0);
            for id in mine {
                let o = self.outstanding_net.remove(&id).expect("collected above");
                if !o.acked && !stranded_ids.contains(&id) {
                    self.bounce(o.job);
                }
            }
        }
        for job in stranded {
            self.bounce(job);
        }
        self.run_master(|m, ctx| m.on_worker_failed(w, ctx));
    }

    fn recover(&mut self, w: WorkerId) {
        // A departed worker left the cluster for good; a scheduled
        // recovery must not revive it.
        if self.active[w.0 as usize] || self.departed[w.0 as usize] {
            return;
        }
        self.active[w.0 as usize] = true;
        self.roster_dirty = true;
        self.epochs[w.0 as usize] += 1;
        self.m.worker_recoveries.inc();
        if let Some(since) = self.down_since[w.0 as usize].take() {
            self.downtime_secs += self.q.now().saturating_since(since).as_secs_f64();
        }
        self.note_sched(Some(w), None, SchedEventKind::Recover);
        self.run_master(|m, ctx| m.on_worker_recovered(w, ctx));
        // The fresh worker announces itself idle (the initial pull).
        self.send_to_master(w, WorkerToMaster::Idle, SimDuration::ZERO);
        // A worker that crashed mid-drain recovers with an empty queue
        // (the crash bounced everything); its drain completes here.
        self.maybe_finish_drain(w);
    }

    /// A deferred worker joins the cluster: it enters the roster,
    /// announces itself idle, and (under the net-fault layer) starts
    /// its idle heartbeat. Scheduler-visible via the same hook as a
    /// recovery — to the allocation policy a join *is* the first
    /// appearance of a fresh worker.
    fn join_worker(&mut self, w: WorkerId) {
        let i = w.0 as usize;
        if self.active[i] || self.departed[i] {
            return;
        }
        self.active[i] = true;
        self.draining[i] = false;
        self.roster_dirty = true;
        self.epochs[i] += 1;
        self.note_sched(Some(w), None, SchedEventKind::WorkerJoined);
        self.run_master(|m, ctx| m.on_worker_recovered(w, ctx));
        self.send_to_master(w, WorkerToMaster::Idle, SimDuration::ZERO);
        if self.net_active {
            let beat = SimDuration::from_secs_f64(self.cfg.netfaults.retry.heartbeat_secs);
            self.q.schedule_in(beat, Ev::IdleBeat(w));
        }
    }

    /// Begin draining a worker: it leaves the roster immediately (no
    /// new placements, no bid solicitations) but keeps working through
    /// its queue; `WorkerRemoved` is logged when the last job — and,
    /// under the net-fault layer, the last unacked completion report —
    /// clears.
    fn drain_worker(&mut self, w: WorkerId) {
        let i = w.0 as usize;
        if self.draining[i] || self.departed[i] {
            return;
        }
        self.draining[i] = true;
        self.roster_dirty = true;
        self.note_sched(Some(w), None, SchedEventKind::WorkerDraining);
        self.maybe_finish_drain(w);
    }

    /// Complete a drain if nothing holds it open: empty slot, empty
    /// queue, and no completion report awaiting its ack. Called from
    /// every site that could clear the last obligation.
    fn maybe_finish_drain(&mut self, w: WorkerId) {
        let i = w.0 as usize;
        if !self.draining[i] || self.departed[i] || !self.active[i] {
            return;
        }
        if self.slots[i].current.is_some() || !self.nodes[i].queue.is_empty() {
            return;
        }
        if self.net_active && !self.pending_done[i].is_empty() {
            return;
        }
        self.draining[i] = false;
        self.departed[i] = true;
        self.active[i] = false;
        self.roster_dirty = true;
        self.epochs[i] += 1;
        self.note_sched(Some(w), None, SchedEventKind::WorkerRemoved);
        // The departed worker's copies leave the cluster with it.
        self.drop_worker_replicas(w);
        self.run_master(|m, ctx| m.on_worker_failed(w, ctx));
    }

    /// Administrative removal: the worker leaves *now*. Unlike a crash
    /// there is no failure-detection delay — the control plane knows,
    /// so stranded work re-enters allocation immediately — and unlike a
    /// drain the queue does not finish; it is reclaimed. A removed
    /// worker never returns (a scheduled `Recover` is ignored).
    fn remove_worker(&mut self, w: WorkerId) {
        let i = w.0 as usize;
        if self.departed[i] {
            return;
        }
        let now = self.q.now();
        let was_active = self.active[i];
        self.active[i] = false;
        self.departed[i] = true;
        self.draining[i] = false;
        self.roster_dirty = true;
        self.epochs[i] += 1;
        // Removal ends any crash-recovery wait; the downtime clock
        // stops here rather than running to the makespan.
        if let Some(since) = self.down_since[i].take() {
            self.downtime_secs += now.saturating_since(since).as_secs_f64();
        }
        self.note_sched(Some(w), None, SchedEventKind::WorkerRemoved);
        let mut stranded: Vec<Job> = Vec::new();
        if was_active {
            if let Some(job) = self.slots[i].current.take() {
                stranded.push(job);
            }
            let node = self.worker(w);
            stranded.extend(node.queue.drain(..));
            node.clear_backlog();
            node.enqueued_at.clear();
            node.activity = WorkerActivity::Idle;
            node.busy.set(now, 0.0);
            node.store.clear();
        }
        // Same data-plane hook as a crash: an administratively removed
        // worker takes its copies with it.
        self.drop_worker_replicas(w);
        if self.net_active {
            self.accepted[i].clear();
            self.offer_outcomes[i].clear();
            self.pending_done[i].clear();
            // Same bookkeeping as a crash: placements that never
            // arrived re-enter allocation; placements already in the
            // stranded set must not re-enter twice.
            let stranded_ids: HashSet<JobId> = stranded.iter().map(|j| j.id).collect();
            let mut mine: Vec<JobId> = self
                .outstanding_net
                .iter()
                .filter(|(_, o)| o.worker == w)
                .map(|(id, _)| *id)
                .collect();
            mine.sort_unstable_by_key(|id| id.0);
            for id in mine {
                let o = self.outstanding_net.remove(&id).expect("collected above");
                if !o.acked && !stranded_ids.contains(&id) {
                    stranded.push(o.job);
                }
            }
        }
        for job in stranded {
            self.q.schedule_at(now, Ev::Redispatch(job));
        }
        self.run_master(|m, ctx| m.on_worker_failed(w, ctx));
    }

    fn complete_at_master(&mut self, worker: WorkerId, job: Job) {
        let now = self.q.now();
        if self.dag.is_cancelled(job.id) {
            // The losing attempt of a decided speculation race: its
            // accounting happened when `SpecCancel` committed, so the
            // late completion report is swallowed — no `Completed`
            // entry, no counter bump, no downstream effects.
            self.jobs_inflight.remove(&job.id);
            return;
        }
        self.completed += 1;
        self.note_sched(Some(worker), Some(job.id), SchedEventKind::Completed);
        self.jobs_inflight.remove(&job.id);
        self.m.jobs_completed.inc();
        self.last_completion = self.last_completion.max(now);
        match self.dag.on_done(job.id, now.as_secs_f64()) {
            DoneOutcome::NotTask => {
                // Run the task logic, spawning downstream jobs.
                let mut out: Vec<JobSpec> = Vec::new();
                let ctx = TaskCtx { now, worker };
                self.workflow
                    .logic_mut(job.task)
                    .process(&job, &ctx, &mut out);
                for spec in out {
                    debug_assert!(self.workflow.contains(spec.task), "unknown task target");
                    debug_assert!(
                        self.workflow.allows(job.task, spec.task),
                        "task {:?} emitted a job for {:?} outside the declared channels",
                        job.task,
                        spec.task
                    );
                    let id = self.alloc_job_id();
                    self.created += 1;
                    self.note_sched(None, Some(id), SchedEventKind::Submitted);
                    let new_job = spec.into_job(id);
                    if !self.cfg.master_faults.is_empty() {
                        self.jobs_inflight.insert(id, new_job.clone());
                    }
                    self.run_master(|m, c| m.on_job(new_job, c));
                }
            }
            // A second completion of an already-done task in the same
            // instant (both attempts raced to Done): only the first
            // was effective. Unreachable in the sim — the winner's
            // `SpecCancel` commits before the loser's report is
            // handled — but harmless to tolerate.
            DoneOutcome::Swallowed => {}
            DoneOutcome::Effective {
                root,
                task,
                output,
                released,
                losers,
            } => {
                if !self.note_sched(
                    Some(worker),
                    Some(job.id),
                    SchedEventKind::TaskDone { root, task },
                ) {
                    return;
                }
                // The task's output artifact materializes on the
                // executing worker — downstream bids price against it.
                let evicted = self
                    .worker(worker)
                    .store
                    .insert(output.id, output.bytes, now);
                self.note_replica_insert(worker, output.id, output.bytes, evicted);
                for loser in losers {
                    // The loser's `SpecCancel` is its terminal
                    // accounting event: once committed, the attempt
                    // counts as complete and its eventual report (or a
                    // crash bounce) is swallowed.
                    if self.note_sched(None, Some(loser), SchedEventKind::SpecCancel { root, task })
                    {
                        self.dag.cancel(loser);
                        self.completed += 1;
                        self.jobs_inflight.remove(&loser);
                    }
                }
                for (idx, tspec) in released {
                    self.submit_task_job(root, idx, tspec, false);
                }
            }
        }
        self.run_master(|m, c| m.on_job_done(worker, &job, c));
    }

    /// Elect a standby replica after a leader crash: replay the
    /// committed log into a [`crate::replog::SchedState`], draft a
    /// fresh scheduler from the allocator, and re-enter everything the
    /// state says is unfinished — open contests are re-offered from
    /// scratch, unplaced jobs re-enter allocation, and idle workers
    /// re-announce themselves so pull-based schedulers resume.
    fn do_failover(&mut self) {
        self.failover_pending = false;
        let now = self.q.now();
        let Some(log) = &mut self.sched_log else {
            unreachable!("failover without a replicated log");
        };
        let (_term, state, entries) = log.failover(now);
        self.m.master_failovers.inc();
        self.m.replay_entries.add(entries);
        // The dead leader's contest tallies would vanish with its
        // scheduler instance; carry them into the run totals.
        let stats = self.master.stats();
        self.stats_carry_timed_out += stats.contests_timed_out;
        self.stats_carry_fallback += stats.contests_fallback;
        self.master = self.allocator.master();
        // Contests open at crash time were decided by nobody: the
        // engine forgets them and the standby re-opens contests for
        // the jobs when they re-enter allocation below.
        self.open_contests.clear();
        // Replayed rejection routing (Baseline's "avoid the rejector
        // on re-offer") survives the failover.
        for (job, w) in state.rejections() {
            self.master.restore_rejection(job, w);
        }
        // Live, drained workers re-announce themselves so the pull
        // loop restarts under the new leader.
        for i in 0..self.nodes.len() {
            if self.active[i]
                && !self.draining[i]
                && self.nodes[i].queue.is_empty()
                && self.nodes[i].activity == WorkerActivity::Idle
            {
                self.q.schedule_at(
                    now,
                    Ev::MasterRecv {
                        from: WorkerId(i as u32),
                        msg: WorkerToMaster::Idle,
                    },
                );
            }
        }
        // Jobs the committed log proves submitted-but-unplaced re-enter
        // allocation exactly once. Placed jobs are left alone: their
        // worker (or the engine's lease/retry machinery) still owns
        // them, and completions route to the new leader unchanged.
        for id in state.unplaced_jobs() {
            let job = self
                .jobs_inflight
                .get(&id)
                .cloned()
                .expect("unplaced job without a retained payload");
            self.run_master(|m, ctx| m.on_job(job, ctx));
        }
        // Resume the data-plane repair obligation. Copies already in
        // flight stay in `repairs` (commit-before-copy: their
        // `repair_start` is committed, so re-issuing would double-
        // copy); anything under-replicated with no copy in flight —
        // e.g. a repair whose decision truncated with the dead leader
        // — is re-issued by the new leader here.
        self.schedule_repairs();
    }
}

/// Execute `arrivals` through `workflow` on `cluster` under
/// `allocator`. Per-run worker state is reset first; caches and
/// learned speeds persist (use a fresh [`Cluster`] for a cold run).
pub fn run_workflow(
    cluster: &mut Cluster,
    workflow: &mut Workflow,
    allocator: &dyn Allocator,
    arrivals: Vec<Arrival>,
    cfg: &EngineConfig,
    meta: &RunMeta,
) -> RunOutput {
    assert!(!cluster.is_empty(), "cannot run on an empty cluster");
    for n in &mut cluster.nodes {
        n.reset_for_iteration();
    }
    let seq = SeedSequence::new(meta.seed);
    let n_workers = cluster.nodes.len();
    let handles: Vec<WorkerHandle> = cluster
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| WorkerHandle {
            id: WorkerId(i as u32),
            name: n.spec.name.clone(),
        })
        .collect();

    // Pre-size for the arrival stream plus the startup pulls; the
    // steady-state event population stays within the same order.
    let mut q = EventQueue::with_capacity(arrivals.len() + n_workers + 16);
    let arrivals_total = arrivals.len() as u64;
    for a in arrivals {
        q.schedule_at(a.at, Ev::Arrival(a.spec));
    }
    for (at, ev) in cfg.faults.events() {
        q.schedule_at(*at, Ev::Fault(*ev));
    }
    for e in cfg.membership.events() {
        q.schedule_at(e.at, Ev::Membership(*e));
    }
    // Workers announce themselves idle at startup (the initial pull).
    // A worker whose membership timeline starts with a join is dormant
    // until the join fires — no announcement, no heartbeat.
    for i in 0..n_workers {
        if cfg.membership.is_deferred(WorkerId(i as u32)) {
            continue;
        }
        q.schedule_at(
            SimTime::ZERO,
            Ev::MasterRecv {
                from: WorkerId(i as u32),
                msg: WorkerToMaster::Idle,
            },
        );
    }

    let mut engine = Engine {
        cfg,
        q,
        nodes: &mut cluster.nodes,
        slots: (0..n_workers)
            .map(|_| Slot {
                current: None,
                started: None,
                fetch_done: None,
                fetch_from: None,
            })
            .collect(),
        active: (0..n_workers)
            .map(|i| !cfg.membership.is_deferred(WorkerId(i as u32)))
            .collect(),
        draining: vec![false; n_workers],
        departed: vec![false; n_workers],
        epochs: vec![0; n_workers],
        assignments: Vec::new(),
        trace: if cfg.trace { Some(Trace::new()) } else { None },
        sched_log: if cfg.trace || !cfg.master_faults.is_empty() {
            Some(ReplicatedLog::new(&cfg.master_faults))
        } else {
            None
        },
        policies: (0..n_workers).map(|_| allocator.worker_policy()).collect(),
        master: allocator.master(),
        allocator,
        failover_pending: false,
        jobs_inflight: HashMap::new(),
        stats_carry_timed_out: 0,
        stats_carry_fallback: 0,
        handles,
        roster: Vec::with_capacity(n_workers),
        roster_dirty: true,
        workflow,
        dag: DagState::new(cfg.atomize),
        spec_check_armed: false,
        rng_control: seq.stream(0),
        rng_master: seq.stream(1),
        rng_workers: (0..n_workers).map(|i| seq.stream(100 + i as u64)).collect(),
        next_job_id: 0,
        next_token: 0,
        created: 0,
        completed: 0,
        arrivals_total,
        arrivals_seen: 0,
        last_completion: SimTime::ZERO,
        down_since: vec![None; n_workers],
        downtime_secs: 0.0,
        m: RuntimeMetrics::from_sink(cfg.metrics.clone()),
        open_contests: HashMap::new(),
        net_active: cfg.netfaults.is_active(),
        rng_net: SeedSequence::new(cfg.netfaults.seed).stream(0x4E37),
        next_env: 0,
        seen_envs: HashSet::new(),
        next_seq: 1,
        outstanding_net: HashMap::new(),
        done_ids: HashSet::new(),
        accepted: vec![HashSet::new(); n_workers],
        offer_outcomes: vec![HashMap::new(); n_workers],
        pending_done: vec![HashMap::new(); n_workers],
        repl_active: cfg.replication.enabled,
        replicas: ReplicaMap::new(cfg.replication.factor),
        repairs: HashMap::new(),
    };
    if engine.repl_active {
        // Warm caches from earlier iterations seed the registry (no
        // log events — this is pre-run state, not a decision), and
        // sole copies are pinned from the start.
        let mut seeded: Vec<ObjectId> = Vec::new();
        for i in 0..n_workers {
            let resident: Vec<(ObjectId, u64)> = engine.nodes[i]
                .store
                .resident()
                .map(|o| (o, engine.nodes[i].store.size_of(o).unwrap_or(0)))
                .collect();
            for (obj, bytes) in resident {
                engine.replicas.add(obj, i as u32, bytes);
                seeded.push(obj);
            }
        }
        seeded.sort_unstable();
        seeded.dedup();
        for obj in seeded {
            engine.sync_pins(obj);
        }
    }
    if engine.net_active {
        // Idle heartbeats: a dropped `Idle` must only delay the pull
        // loop, never wedge it.
        let beat = SimDuration::from_secs_f64(cfg.netfaults.retry.heartbeat_secs);
        for i in 0..n_workers {
            if cfg.membership.is_deferred(WorkerId(i as u32)) {
                continue;
            }
            engine.q.schedule_in(beat, Ev::IdleBeat(WorkerId(i as u32)));
        }
    }

    // A shared sink accumulates across iterations; the per-run record
    // reports deltas from these baselines.
    let base_control = engine.m.control_messages.get();
    let base_redistributed = engine.m.jobs_redistributed.get();
    let base_crashes = engine.m.worker_crashes.get();

    while let Some((_t, ev)) = engine.q.pop() {
        engine.handle(ev);
        // A leader crash observed while handling `ev` elects a standby
        // before the next event is delivered (the election happens
        // "between" engine events; its virtual cost is the control
        // latency of the re-announcements it schedules).
        if engine.failover_pending {
            engine.do_failover();
        }
        if engine.arrivals_seen == engine.arrivals_total
            && engine.created > 0
            && engine.completed == engine.created
            && engine.repairs.is_empty()
        {
            // A committed repair must complete before the run ends —
            // the copies are in flight on the data plane and the
            // oracle holds the log to that promise.
            break;
        }
        if engine.q.events_delivered() >= cfg.max_events {
            panic!(
                "engine exceeded max_events={} (scheduler livelock?)",
                cfg.max_events
            );
        }
    }
    assert_eq!(
        engine.completed, engine.created,
        "conservation violated: {} created vs {} completed",
        engine.created, engine.completed
    );

    let makespan = engine.last_completion;
    let events = engine.q.events_delivered();
    // A nonzero clamp count means some event was scheduled into the
    // past and virtual time was silently rewritten; the run finished,
    // but its timing cannot be trusted. Count it and report it as an
    // anomaly instead of letting release builds hide it.
    let clamped = engine.q.clamped();
    engine.m.sim_clamped_events.add(clamped);
    let mut anomalies = Vec::new();
    if clamped > 0 {
        anomalies.push(format!(
            "event queue clamped {clamped} past-time event(s) to `now`; virtual timing is suspect"
        ));
    }
    let completed = engine.completed;
    let mut sched_stats = engine.master.stats();
    sched_stats.contests_timed_out += engine.stats_carry_timed_out;
    sched_stats.contests_fallback += engine.stats_carry_fallback;
    let assignments = std::mem::take(&mut engine.assignments);
    let trace = engine.trace.take().unwrap_or_default();
    let sched_log = engine
        .sched_log
        .take()
        .map(ReplicatedLog::into_log)
        .unwrap_or_default();
    let m = engine.m.clone();
    // Workers still down when the run ends are charged until the
    // makespan (or until their crash instant, whichever is later).
    let mut recovery_secs = engine.downtime_secs;
    for since in engine.down_since.iter().flatten() {
        recovery_secs += makespan.saturating_since(*since).as_secs_f64();
    }
    let kind: SchedulerKind = allocator.kind();
    let replicas = engine.repl_active.then(|| engine.replicas.clone());
    drop(engine);

    let mut misses = 0;
    let mut hits = 0;
    let mut peer_fetches = 0;
    let mut evictions = 0;
    let mut bytes = 0u64;
    let mut wait = Welford::new();
    let mut busy = Vec::with_capacity(n_workers);
    for (i, n) in cluster.nodes.iter().enumerate() {
        let s = n.store.stats();
        misses += s.misses;
        hits += s.hits;
        peer_fetches += s.peer_fetches;
        evictions += s.evictions;
        bytes += s.bytes_admitted;
        wait.merge(&n.wait);
        let frac = n.busy.average(makespan);
        m.set_worker_busy_frac(i, frac);
        busy.push(frac);
    }
    m.cache_misses.add(misses);
    m.cache_hits.add(hits);
    m.peer_fetches.add(peer_fetches);
    m.cache_evictions.add(evictions);
    m.set_makespan_secs(makespan.as_secs_f64());
    m.set_data_load_mb(bytes as f64 / 1e6);

    RunOutput {
        record: RunRecord {
            scheduler: kind,
            worker_config: meta.worker_config.clone(),
            job_config: meta.job_config.clone(),
            iteration: meta.iteration,
            seed: meta.seed,
            makespan_secs: makespan.as_secs_f64(),
            data_load_mb: bytes as f64 / 1e6,
            cache_misses: misses,
            cache_hits: hits,
            evictions,
            jobs_completed: completed,
            control_messages: m.control_messages.get() - base_control,
            contests_timed_out: sched_stats.contests_timed_out,
            contests_fallback: sched_stats.contests_fallback,
            mean_queue_wait_secs: wait.mean(),
            worker_busy_frac: busy,
            jobs_redistributed: m.jobs_redistributed.get() - base_redistributed,
            worker_crashes: m.worker_crashes.get() - base_crashes,
            recovery_secs,
        },
        events,
        assignments,
        trace,
        sched_log,
        metrics: m.snapshot(),
        anomalies,
        replicas,
    }
}
