//! Jobs — the unit of allocation.
//!
//! The paper defines a job as "a piece of data required to process a
//! task" (§2): e.g. the pair *(library `l1`, repository `r1`)* for the
//! `RepositorySearcher` task. A [`Job`] therefore carries an
//! application payload, names the [`TaskId`] that will process it, and
//! optionally references the data [`ResourceRef`] (the repository) the
//! processing worker must hold locally.

use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;
use serde::{Deserialize, Serialize};

use crate::atomize::TaskDag;

/// Identifier of a federation shard (one master + its worker pool).
/// Single-master runs are shard 0 throughout.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ShardId(pub u16);

/// Unique job identifier, allocated by the master.
///
/// In a federation the id is shard-qualified: the top 16 bits name the
/// *home* shard (where the job was submitted) and the low 48 bits are
/// the home master's sequence number. A job spilled to a peer keeps
/// its home-qualified id, so it can never collide with an id the
/// receiving master allocates itself — the receiver's own ids carry
/// the receiver's shard in the top bits. Plain single-master runs
/// allocate sequentially from 0, which is exactly `in_shard(ShardId(0), seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl JobId {
    /// Bits reserved for the home-shard qualifier.
    pub const SHARD_BITS: u32 = 16;
    /// Bits left for the per-shard sequence number.
    pub const SEQ_BITS: u32 = 64 - Self::SHARD_BITS;
    /// Mask selecting the sequence-number bits.
    pub const SEQ_MASK: u64 = (1 << Self::SEQ_BITS) - 1;
    /// First sequence number of the *local-spawn band*. When a
    /// federation router pre-assigns arrival ids (sequence numbers
    /// counted from 0), a runtime that also spawns downstream jobs
    /// allocates them from this band upward so router-assigned and
    /// runtime-allocated sequence numbers can never collide.
    pub const SPAWN_BAND: u64 = 1 << 40;

    /// Compose a shard-qualified id from a home shard and the home
    /// master's sequence number.
    pub fn in_shard(shard: ShardId, seq: u64) -> JobId {
        debug_assert!(seq <= Self::SEQ_MASK, "job sequence overflows 48 bits");
        JobId(((shard.0 as u64) << Self::SEQ_BITS) | (seq & Self::SEQ_MASK))
    }

    /// The home shard encoded in this id (shard 0 for plain runs).
    pub fn shard(self) -> ShardId {
        ShardId((self.0 >> Self::SEQ_BITS) as u16)
    }

    /// The home master's sequence number.
    pub fn local_seq(self) -> u64 {
        self.0 & Self::SEQ_MASK
    }
}

/// Identifier of a task (processing stage) within a workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Identifier of a worker node (zero-based).
///
/// Within one runtime a worker id is a dense index into that master's
/// pool. When federation merges shard logs into one federation-wide
/// log, each worker id is shard-qualified (top 16 bits = shard, low 16
/// bits = local index) so workers of different shards stay distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Bits reserved for the shard qualifier in a merged log.
    pub const SHARD_BITS: u32 = 16;
    /// Mask selecting the local-index bits.
    pub const LOCAL_MASK: u32 = (1 << (32 - Self::SHARD_BITS)) - 1;

    /// Shard-qualify a local worker index for a merged federation log.
    pub fn in_shard(shard: ShardId, local: u32) -> WorkerId {
        debug_assert!(local <= Self::LOCAL_MASK, "worker index overflows 16 bits");
        WorkerId(((shard.0 as u32) << (32 - Self::SHARD_BITS)) | (local & Self::LOCAL_MASK))
    }

    /// The shard encoded in a qualified id (shard 0 for plain runs).
    pub fn shard(self) -> ShardId {
        ShardId((self.0 >> (32 - Self::SHARD_BITS)) as u16)
    }

    /// The shard-local worker index.
    pub fn local_index(self) -> u32 {
        self.0 & Self::LOCAL_MASK
    }
}

/// The data resource a job needs locally (a repository clone in the
/// MSR scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRef {
    /// Identity of the resource in worker stores.
    pub id: ObjectId,
    /// Size in bytes (drives both transfer and processing cost).
    pub bytes: u64,
}

/// Small application payload carried through the pipeline. Rich
/// application state lives in task logic; the payload only needs to
/// identify what to do (e.g. which library × repository pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Payload {
    /// No payload.
    #[default]
    None,
    /// A single index (e.g. a library id).
    Index(u64),
    /// A pair of indices (e.g. library id × repository id).
    Pair(u64, u64),
    /// A short text payload.
    Text(String),
}

/// A schedulable job instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id (allocated by the master when the job enters the
    /// system).
    pub id: JobId,
    /// Task that will process this job.
    pub task: TaskId,
    /// Data the job needs locally, if any.
    pub resource: Option<ResourceRef>,
    /// Bytes the processing step reads/writes (usually the resource
    /// size — "the processing time ... could be computed by dividing
    /// the repository size by the current read/write speed", §5).
    pub work_bytes: u64,
    /// Fixed CPU seconds on a nominal-speed worker, independent of
    /// data size (e.g. API query time).
    pub cpu_secs: f64,
    /// Application payload.
    pub payload: Payload,
}

impl Job {
    /// Bytes that would need to be transferred if the resource is not
    /// local (0 for resource-free jobs).
    pub fn resource_bytes(&self) -> u64 {
        self.resource.map_or(0, |r| r.bytes)
    }
}

/// Federation identity of a job: the federation-wide id pre-assigned
/// by the routing tier, and — for a job spilled across shards — the
/// home shard it was handed off from. Carried on a [`JobSpec`] so the
/// executing runtime logs the job under its federation-wide id (and as
/// a `SpillIn` rather than a fresh submission when it crossed shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FedIdentity {
    /// Federation-wide, shard-qualified job id.
    pub id: JobId,
    /// `Some(home)` when the job was spilled in from another shard.
    pub spilled_from: Option<ShardId>,
}

/// A job *description* produced by the application (task logic or
/// workload generator) before the master assigns it an id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Target task.
    pub task: TaskId,
    /// Required resource, if any.
    pub resource: Option<ResourceRef>,
    /// Bytes processed.
    pub work_bytes: u64,
    /// Fixed CPU seconds.
    pub cpu_secs: f64,
    /// Application payload.
    pub payload: Payload,
    /// Federation identity, if the routing tier pre-assigned one.
    /// `None` (the default) lets the master allocate ids as before.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub origin: Option<FedIdentity>,
    /// Task DAG to atomize into. `Some` turns arrival into
    /// atomization: the master never submits this spec as one job —
    /// it allocates a root id and releases the DAG's source tasks as
    /// individual jobs instead (`crate::atomize`). The spec's own
    /// `resource`/`work_bytes`/`cpu_secs` are ignored in that case.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dag: Option<TaskDag>,
}

impl JobSpec {
    /// A job for `task` that needs `resource` locally and whose
    /// processing scans the whole resource.
    pub fn scanning(task: TaskId, resource: ResourceRef, payload: Payload) -> Self {
        JobSpec {
            task,
            resource: Some(resource),
            work_bytes: resource.bytes,
            cpu_secs: 0.0,
            payload,
            origin: None,
            dag: None,
        }
    }

    /// A pure-CPU job with no data dependency.
    pub fn compute(task: TaskId, cpu_secs: f64, payload: Payload) -> Self {
        JobSpec {
            task,
            resource: None,
            work_bytes: 0,
            cpu_secs,
            payload,
            origin: None,
            dag: None,
        }
    }

    /// A job that atomizes into `dag` on arrival: its tasks become the
    /// schedulable units, each targeting workflow stage `task`.
    pub fn atomized(task: TaskId, dag: TaskDag) -> Self {
        JobSpec {
            task,
            resource: None,
            work_bytes: 0,
            cpu_secs: 0.0,
            payload: Payload::None,
            origin: None,
            dag: Some(dag),
        }
    }

    /// Stamp a federation identity onto the spec (routing tier).
    pub fn with_origin(mut self, origin: FedIdentity) -> Self {
        self.origin = Some(origin);
        self
    }

    /// Materialize into a [`Job`] with the given id.
    pub fn into_job(self, id: JobId) -> Job {
        Job {
            id,
            task: self.task,
            resource: self.resource,
            work_bytes: self.work_bytes,
            cpu_secs: self.cpu_secs,
            payload: self.payload,
        }
    }
}

/// An externally arriving job: enters the master at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival instant.
    pub at: SimTime,
    /// What arrives.
    pub spec: JobSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(id: u64, bytes: u64) -> ResourceRef {
        ResourceRef {
            id: ObjectId(id),
            bytes,
        }
    }

    #[test]
    fn scanning_spec_scans_whole_resource() {
        let s = JobSpec::scanning(TaskId(1), res(9, 5000), Payload::Pair(1, 9));
        assert_eq!(s.work_bytes, 5000);
        assert_eq!(s.resource.unwrap().id, ObjectId(9));
        let j = s.into_job(JobId(3));
        assert_eq!(j.id, JobId(3));
        assert_eq!(j.resource_bytes(), 5000);
    }

    #[test]
    fn compute_spec_has_no_resource() {
        let s = JobSpec::compute(TaskId(0), 2.5, Payload::Index(4));
        assert!(s.resource.is_none());
        assert_eq!(s.work_bytes, 0);
        let j = s.into_job(JobId(0));
        assert_eq!(j.resource_bytes(), 0);
        assert_eq!(j.cpu_secs, 2.5);
    }

    #[test]
    fn payload_default_is_none() {
        assert_eq!(Payload::default(), Payload::None);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(JobId(1) < JobId(2));
        assert!(WorkerId(0) < WorkerId(4));
        assert!(TaskId(0) < TaskId(1));
    }

    #[test]
    fn shard_qualified_job_ids_round_trip() {
        let id = JobId::in_shard(ShardId(3), 42);
        assert_eq!(id.shard(), ShardId(3));
        assert_eq!(id.local_seq(), 42);
        // Shard 0 is the plain sequential id space.
        assert_eq!(JobId::in_shard(ShardId(0), 7), JobId(7));
        assert_eq!(JobId(7).shard(), ShardId(0));
    }

    #[test]
    fn shard_qualified_ids_never_collide_across_shards() {
        let a = JobId::in_shard(ShardId(1), 5);
        let b = JobId::in_shard(ShardId(2), 5);
        assert_ne!(a, b);
        let wa = WorkerId::in_shard(ShardId(1), 0);
        let wb = WorkerId::in_shard(ShardId(2), 0);
        assert_ne!(wa, wb);
        assert_eq!(wa.local_index(), wb.local_index());
        assert_eq!(wa.shard(), ShardId(1));
    }

    #[test]
    fn origin_defaults_to_none_and_stamps() {
        let s = JobSpec::compute(TaskId(0), 1.0, Payload::None);
        assert!(s.origin.is_none());
        let fed = FedIdentity {
            id: JobId::in_shard(ShardId(2), 9),
            spilled_from: Some(ShardId(0)),
        };
        let s = s.with_origin(fed);
        assert_eq!(s.origin, Some(fed));
    }
}
