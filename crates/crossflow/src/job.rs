//! Jobs — the unit of allocation.
//!
//! The paper defines a job as "a piece of data required to process a
//! task" (§2): e.g. the pair *(library `l1`, repository `r1`)* for the
//! `RepositorySearcher` task. A [`Job`] therefore carries an
//! application payload, names the [`TaskId`] that will process it, and
//! optionally references the data [`ResourceRef`] (the repository) the
//! processing worker must hold locally.

use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;
use serde::{Deserialize, Serialize};

/// Unique job identifier, allocated by the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Identifier of a task (processing stage) within a workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Identifier of a worker node (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// The data resource a job needs locally (a repository clone in the
/// MSR scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRef {
    /// Identity of the resource in worker stores.
    pub id: ObjectId,
    /// Size in bytes (drives both transfer and processing cost).
    pub bytes: u64,
}

/// Small application payload carried through the pipeline. Rich
/// application state lives in task logic; the payload only needs to
/// identify what to do (e.g. which library × repository pair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Payload {
    /// No payload.
    #[default]
    None,
    /// A single index (e.g. a library id).
    Index(u64),
    /// A pair of indices (e.g. library id × repository id).
    Pair(u64, u64),
    /// A short text payload.
    Text(String),
}

/// A schedulable job instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id (allocated by the master when the job enters the
    /// system).
    pub id: JobId,
    /// Task that will process this job.
    pub task: TaskId,
    /// Data the job needs locally, if any.
    pub resource: Option<ResourceRef>,
    /// Bytes the processing step reads/writes (usually the resource
    /// size — "the processing time ... could be computed by dividing
    /// the repository size by the current read/write speed", §5).
    pub work_bytes: u64,
    /// Fixed CPU seconds on a nominal-speed worker, independent of
    /// data size (e.g. API query time).
    pub cpu_secs: f64,
    /// Application payload.
    pub payload: Payload,
}

impl Job {
    /// Bytes that would need to be transferred if the resource is not
    /// local (0 for resource-free jobs).
    pub fn resource_bytes(&self) -> u64 {
        self.resource.map_or(0, |r| r.bytes)
    }
}

/// A job *description* produced by the application (task logic or
/// workload generator) before the master assigns it an id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Target task.
    pub task: TaskId,
    /// Required resource, if any.
    pub resource: Option<ResourceRef>,
    /// Bytes processed.
    pub work_bytes: u64,
    /// Fixed CPU seconds.
    pub cpu_secs: f64,
    /// Application payload.
    pub payload: Payload,
}

impl JobSpec {
    /// A job for `task` that needs `resource` locally and whose
    /// processing scans the whole resource.
    pub fn scanning(task: TaskId, resource: ResourceRef, payload: Payload) -> Self {
        JobSpec {
            task,
            resource: Some(resource),
            work_bytes: resource.bytes,
            cpu_secs: 0.0,
            payload,
        }
    }

    /// A pure-CPU job with no data dependency.
    pub fn compute(task: TaskId, cpu_secs: f64, payload: Payload) -> Self {
        JobSpec {
            task,
            resource: None,
            work_bytes: 0,
            cpu_secs,
            payload,
        }
    }

    /// Materialize into a [`Job`] with the given id.
    pub fn into_job(self, id: JobId) -> Job {
        Job {
            id,
            task: self.task,
            resource: self.resource,
            work_bytes: self.work_bytes,
            cpu_secs: self.cpu_secs,
            payload: self.payload,
        }
    }
}

/// An externally arriving job: enters the master at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival instant.
    pub at: SimTime,
    /// What arrives.
    pub spec: JobSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(id: u64, bytes: u64) -> ResourceRef {
        ResourceRef {
            id: ObjectId(id),
            bytes,
        }
    }

    #[test]
    fn scanning_spec_scans_whole_resource() {
        let s = JobSpec::scanning(TaskId(1), res(9, 5000), Payload::Pair(1, 9));
        assert_eq!(s.work_bytes, 5000);
        assert_eq!(s.resource.unwrap().id, ObjectId(9));
        let j = s.into_job(JobId(3));
        assert_eq!(j.id, JobId(3));
        assert_eq!(j.resource_bytes(), 5000);
    }

    #[test]
    fn compute_spec_has_no_resource() {
        let s = JobSpec::compute(TaskId(0), 2.5, Payload::Index(4));
        assert!(s.resource.is_none());
        assert_eq!(s.work_bytes, 0);
        let j = s.into_job(JobId(0));
        assert_eq!(j.resource_bytes(), 0);
        assert_eq!(j.cpu_secs, 2.5);
    }

    #[test]
    fn payload_default_is_none() {
        assert_eq!(Payload::default(), Payload::None);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(JobId(1) < JobId(2));
        assert!(WorkerId(0) < WorkerId(4));
        assert!(TaskId(0) < TaskId(1));
    }
}
