//! Worker node specifications and runtime state.
//!
//! A worker is characterized by its network speed, read/write speed,
//! CPU factor and local storage — exactly the dimensions the paper's
//! worker configurations vary ("one worker's internet and read/write
//! speeds are significantly faster…", §4; presets in §6.3.1). The
//! *believed* speeds (used for estimates/bids) start at the nominal
//! spec values and, with §6.4's speed learning enabled, are updated to
//! the historic average of observed speeds after every transfer and
//! scan.

use std::collections::{HashMap, HashSet, VecDeque};

use crossbid_net::{Bandwidth, Link, NoiseModel};
use crossbid_simcore::{SimDuration, SimTime, TimeWeighted, Welford};
use crossbid_storage::{EvictionPolicy, LocalStore, ObjectId};

use crate::job::{Job, JobId};

/// Static description of a worker node.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Display name (e.g. `w0`, `fast`).
    pub name: String,
    /// Nominal network (download) speed.
    pub net: Bandwidth,
    /// Nominal read/write (scan) speed.
    pub rw: Bandwidth,
    /// Multiplier on pure-CPU job components (1.0 = nominal; >1 is a
    /// slower CPU).
    pub cpu_factor: f64,
    /// Local store capacity in bytes.
    pub storage_bytes: u64,
    /// Cache eviction policy.
    pub eviction: EvictionPolicy,
    /// Per-worker override of the engine-wide noise scheme — models a
    /// machine whose *actual* behaviour deviates from its configured
    /// speeds in its own way (e.g. a secretly throttled instance).
    /// `None` uses the engine default.
    pub noise_override: Option<NoiseModel>,
}

impl WorkerSpec {
    /// Start building a spec with the paper's "average" calibration
    /// (20 MB/s network, 100 MB/s read/write, 4 GB store, LRU).
    pub fn builder<S: Into<String>>(name: S) -> WorkerSpecBuilder {
        WorkerSpecBuilder {
            spec: WorkerSpec {
                name: name.into(),
                net: Bandwidth::mb_per_sec(20.0),
                rw: Bandwidth::mb_per_sec(100.0),
                cpu_factor: 1.0,
                storage_bytes: 4_000_000_000,
                eviction: EvictionPolicy::Lru,
                noise_override: None,
            },
        }
    }
}

/// Fluent builder for [`WorkerSpec`].
#[derive(Debug, Clone)]
pub struct WorkerSpecBuilder {
    spec: WorkerSpec,
}

impl WorkerSpecBuilder {
    /// Set the nominal network speed in MB/s.
    pub fn net_mbps(mut self, mbps: f64) -> Self {
        self.spec.net = Bandwidth::mb_per_sec(mbps);
        self
    }

    /// Set the nominal read/write speed in MB/s.
    pub fn rw_mbps(mut self, mbps: f64) -> Self {
        self.spec.rw = Bandwidth::mb_per_sec(mbps);
        self
    }

    /// Set the CPU factor.
    pub fn cpu_factor(mut self, f: f64) -> Self {
        self.spec.cpu_factor = f;
        self
    }

    /// Set storage capacity in bytes.
    pub fn storage_bytes(mut self, b: u64) -> Self {
        self.spec.storage_bytes = b;
        self
    }

    /// Set storage capacity in GB (decimal).
    pub fn storage_gb(self, gb: f64) -> Self {
        let b = (gb * 1e9) as u64;
        self.storage_bytes(b)
    }

    /// Set the eviction policy.
    pub fn eviction(mut self, p: EvictionPolicy) -> Self {
        self.spec.eviction = p;
        self
    }

    /// Give this worker its own noise scheme (see
    /// [`WorkerSpec::noise_override`]).
    pub fn noise(mut self, n: NoiseModel) -> Self {
        self.spec.noise_override = Some(n);
        self
    }

    /// Scale both speeds by a factor (convenience for fast/slow
    /// presets).
    pub fn speed_factor(mut self, k: f64) -> Self {
        self.spec.net = self.spec.net.scaled(k);
        self.spec.rw = self.spec.rw.scaled(k);
        self
    }

    /// Finish building.
    pub fn build(self) -> WorkerSpec {
        self.spec
    }
}

/// Historic-average speed tracker (paper §6.4: "calculating the
/// historic average for all speeds determined for previous jobs").
#[derive(Debug, Clone, Default)]
pub struct SpeedTracker {
    observed: Welford,
}

impl SpeedTracker {
    /// Record one observed speed in MB/s.
    pub fn observe(&mut self, mb_per_sec: f64) {
        if mb_per_sec.is_finite() && mb_per_sec > 0.0 {
            self.observed.push(mb_per_sec);
        }
    }

    /// Historic-average speed, or `None` before any observation.
    pub fn believed(&self) -> Option<Bandwidth> {
        if self.observed.count() == 0 {
            None
        } else {
            Some(Bandwidth::mb_per_sec(self.observed.mean()))
        }
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.observed.count()
    }
}

/// What a worker is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerActivity {
    /// Waiting for work.
    Idle,
    /// Downloading the resource for a job.
    Fetching(JobId),
    /// Scanning/processing a job.
    Processing(JobId),
}

/// Full runtime state of one worker node inside the simulation
/// engine.
///
/// Persistent across session iterations: `spec`, `store`, `link`,
/// speed trackers. Per-run: queue, activity, declined set, backlog
/// accounting, busy statistics.
pub struct WorkerNode {
    /// Static configuration.
    pub spec: WorkerSpec,
    /// Local resource cache (persists across iterations — §6.3.1
    /// "workers have files saved from previous executions").
    pub store: LocalStore,
    /// Data-plane link to the repository host.
    pub link: Link,
    /// Noise applied to the read/write speed during actual scans.
    pub rw_noise: crossbid_net::noise::NoiseSampler,
    /// Historic network-speed observations (§6.4).
    pub net_tracker: SpeedTracker,
    /// Historic read/write-speed observations (§6.4).
    pub rw_tracker: SpeedTracker,

    /// FIFO queue of jobs won/assigned but not yet started.
    pub queue: VecDeque<Job>,
    /// Current activity.
    pub activity: WorkerActivity,
    /// Jobs this worker has declined once (Baseline's reject-once
    /// bookkeeping: "workers are required to keep track of any jobs
    /// they have previously declined", §4).
    pub declined: HashSet<JobId>,
    /// Estimated cost (seconds) of each unfinished job, keyed by id —
    /// `totalCostOfUnfinishedJobs()` from Listing 2.
    pub unfinished_est: HashMap<JobId, f64>,
    /// Running total of `unfinished_est` values, so a bid reads the
    /// backlog in O(1) instead of summing the whole queue (which made
    /// bidding quadratic once an overloaded cluster's queues grew).
    /// Resets to exactly 0.0 whenever the map empties, so removal
    /// round-off can never accumulate across the run.
    backlog_est: f64,
    /// When each queued job was enqueued (for wait-time stats).
    pub enqueued_at: HashMap<JobId, SimTime>,
    /// Busy (fetching or processing) indicator over time.
    pub busy: TimeWeighted,
    /// Per-job queue-wait observations, seconds.
    pub wait: Welford,
}

impl WorkerNode {
    /// Create a fresh node from its spec. `data_latency` is the
    /// per-transfer setup cost; `noise` disturbs both network and
    /// read/write speeds during execution.
    pub fn new(spec: WorkerSpec, data_latency: SimDuration, noise: &NoiseModel) -> Self {
        let noise = spec.noise_override.clone().unwrap_or_else(|| noise.clone());
        let store = LocalStore::new(spec.storage_bytes, spec.eviction);
        let link = Link::new(spec.net, data_latency, noise.clone());
        WorkerNode {
            store,
            link,
            rw_noise: noise.sampler(),
            net_tracker: SpeedTracker::default(),
            rw_tracker: SpeedTracker::default(),
            queue: VecDeque::new(),
            activity: WorkerActivity::Idle,
            declined: HashSet::new(),
            unfinished_est: HashMap::new(),
            backlog_est: 0.0,
            enqueued_at: HashMap::new(),
            busy: TimeWeighted::new(),
            wait: Welford::new(),
            spec,
        }
    }

    /// Reset per-run state, keeping the persistent pieces (store,
    /// learned speeds, link noise state).
    pub fn reset_for_iteration(&mut self) {
        self.queue.clear();
        self.activity = WorkerActivity::Idle;
        self.declined.clear();
        self.unfinished_est.clear();
        self.backlog_est = 0.0;
        self.enqueued_at.clear();
        self.busy = TimeWeighted::new();
        self.wait = Welford::new();
        self.store.reset_stats();
    }

    /// The network speed estimates are computed from: learned historic
    /// average if enabled and available, else the nominal spec speed.
    pub fn believed_net(&self, learning: bool) -> Bandwidth {
        if learning {
            self.net_tracker.believed().unwrap_or(self.spec.net)
        } else {
            self.spec.net
        }
    }

    /// The read/write speed estimates are computed from (see
    /// [`believed_net`](Self::believed_net)).
    pub fn believed_rw(&self, learning: bool) -> Bandwidth {
        if learning {
            self.rw_tracker.believed().unwrap_or(self.spec.rw)
        } else {
            self.spec.rw
        }
    }

    /// Estimated seconds to obtain `job`'s resource: zero if it is in
    /// the local store, else latency + size / believed network speed
    /// (Listing 2 line 4).
    pub fn est_fetch_secs(&self, job: &Job, learning: bool) -> f64 {
        match job.resource {
            None => 0.0,
            Some(r) if self.store.peek(r.id) => 0.0,
            Some(r) => {
                let bw = self.believed_net(learning);
                self.link.latency().as_secs_f64() + bw.time_for(r.bytes).as_secs_f64()
            }
        }
    }

    /// Estimated seconds to process `job`: work bytes / believed
    /// read-write speed × CPU factor + fixed CPU seconds (Listing 2
    /// line 5).
    pub fn est_proc_secs(&self, job: &Job, learning: bool) -> f64 {
        let scan = if job.work_bytes == 0 {
            0.0
        } else {
            self.believed_rw(learning)
                .time_for(job.work_bytes)
                .as_secs_f64()
        };
        scan * self.spec.cpu_factor + job.cpu_secs * self.spec.cpu_factor
    }

    /// `totalCostOfUnfinishedJobs()` — the backlog component of a bid
    /// (Listing 2 line 2).
    pub fn backlog_secs(&self) -> f64 {
        self.backlog_est
    }

    /// Account a newly enqueued job at `now` with estimate `est`.
    pub fn enqueue(&mut self, job: Job, now: SimTime, est: f64) {
        if let Some(old) = self.unfinished_est.insert(job.id, est) {
            self.backlog_est -= old;
        }
        self.backlog_est += est;
        self.enqueued_at.insert(job.id, now);
        self.queue.push_back(job);
    }

    /// Account a finished job.
    pub fn finish(&mut self, id: JobId) {
        if let Some(est) = self.unfinished_est.remove(&id) {
            self.backlog_est -= est;
        }
        if self.unfinished_est.is_empty() {
            self.backlog_est = 0.0;
        }
        self.enqueued_at.remove(&id);
    }

    /// Drop all backlog accounting (a crash wipes the queue).
    pub fn clear_backlog(&mut self) {
        self.unfinished_est.clear();
        self.backlog_est = 0.0;
    }

    /// True iff the worker holds `job`'s resource locally (or the job
    /// needs none).
    pub fn has_data(&self, job: &Job) -> bool {
        match job.resource {
            None => true,
            Some(r) => self.store.peek(r.id),
        }
    }

    /// Record a queue-wait observation when a job starts at `now`.
    pub fn note_start(&mut self, id: JobId, now: SimTime) {
        if let Some(t0) = self.enqueued_at.get(&id) {
            self.wait.push(now.saturating_since(*t0).as_secs_f64());
        }
    }

    /// Number of resources held locally.
    pub fn cached_objects(&self) -> usize {
        self.store.len()
    }

    /// Convenience for tests: is a specific object cached?
    pub fn holds(&self, id: ObjectId) -> bool {
        self.store.peek(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Payload, ResourceRef, TaskId};

    fn job(id: u64, res_bytes: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: Some(ResourceRef {
                id: ObjectId(id * 10),
                bytes: res_bytes,
            }),
            work_bytes: res_bytes,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn node() -> WorkerNode {
        let spec = WorkerSpec::builder("w")
            .net_mbps(10.0)
            .rw_mbps(100.0)
            .storage_gb(1.0)
            .build();
        WorkerNode::new(spec, SimDuration::ZERO, &NoiseModel::None)
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let s = WorkerSpec::builder("fast").speed_factor(5.0).build();
        assert!((s.net.as_mb_per_sec() - 100.0).abs() < 1e-9);
        assert!((s.rw.as_mb_per_sec() - 500.0).abs() < 1e-9);
        assert_eq!(s.cpu_factor, 1.0);
        assert_eq!(s.eviction, EvictionPolicy::Lru);
    }

    #[test]
    fn fetch_estimate_is_zero_when_cached() {
        let mut n = node();
        let j = job(1, 100_000_000); // 100 MB
        assert!((n.est_fetch_secs(&j, false) - 10.0).abs() < 1e-9);
        n.store
            .insert(j.resource.unwrap().id, 100_000_000, SimTime::ZERO);
        assert_eq!(n.est_fetch_secs(&j, false), 0.0);
        assert!(n.has_data(&j));
    }

    #[test]
    fn proc_estimate_uses_rw_and_cpu_factor() {
        let mut n = node();
        let j = job(1, 200_000_000); // 200 MB at 100 MB/s = 2 s
        assert!((n.est_proc_secs(&j, false) - 2.0).abs() < 1e-9);
        n.spec.cpu_factor = 3.0;
        assert!((n.est_proc_secs(&j, false) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn backlog_tracks_unfinished_jobs() {
        let mut n = node();
        assert_eq!(n.backlog_secs(), 0.0);
        n.enqueue(job(1, 0), SimTime::ZERO, 5.0);
        n.enqueue(job(2, 0), SimTime::ZERO, 7.0);
        assert!((n.backlog_secs() - 12.0).abs() < 1e-9);
        n.finish(JobId(1));
        assert!((n.backlog_secs() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn speed_learning_switches_believed_speeds() {
        let mut n = node();
        assert_eq!(n.believed_net(true), n.spec.net);
        n.net_tracker.observe(4.0);
        n.net_tracker.observe(6.0);
        assert!((n.believed_net(true).as_mb_per_sec() - 5.0).abs() < 1e-9);
        // Learning disabled: still the nominal speed.
        assert_eq!(n.believed_net(false), n.spec.net);
    }

    #[test]
    fn tracker_ignores_garbage() {
        let mut t = SpeedTracker::default();
        t.observe(f64::NAN);
        t.observe(-1.0);
        t.observe(0.0);
        assert_eq!(t.count(), 0);
        assert!(t.believed().is_none());
    }

    #[test]
    fn reset_keeps_store_but_clears_run_state() {
        let mut n = node();
        n.store.insert(ObjectId(5), 1000, SimTime::ZERO);
        n.enqueue(job(1, 10), SimTime::ZERO, 1.0);
        n.declined.insert(JobId(9));
        n.reset_for_iteration();
        assert!(n.holds(ObjectId(5)));
        assert!(n.queue.is_empty());
        assert!(n.declined.is_empty());
        assert_eq!(n.backlog_secs(), 0.0);
        assert_eq!(n.activity, WorkerActivity::Idle);
    }

    #[test]
    fn wait_statistics() {
        let mut n = node();
        n.enqueue(job(1, 0), SimTime::from_secs(10), 1.0);
        n.note_start(JobId(1), SimTime::from_secs(14));
        assert_eq!(n.wait.count(), 1);
        assert!((n.wait.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn resource_free_job_always_has_data() {
        let n = node();
        let j = Job {
            resource: None,
            ..job(1, 0)
        };
        assert!(n.has_data(&j));
        assert_eq!(n.est_fetch_secs(&j, false), 0.0);
    }
}
