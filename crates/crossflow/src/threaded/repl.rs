//! Shared state of the replicated data plane in the threaded runtime.
//!
//! The simulation engine owns every structure and mutates them inline;
//! here the plane is concurrent. A single [`ReplState`] behind a mutex
//! carries the cluster-wide replica registry, a journal of data-plane
//! events awaiting commit, the pin directives each worker applies to
//! its own store, and the in-flight repair set.
//!
//! **Lock order** (deadlock freedom): a thread that needs both locks
//! takes its own `WorkerShared` *first*, then `ReplState`. The master
//! only ever holds one worker's shared state at a time and never takes
//! a shared lock while holding the repl lock — free-byte snapshots for
//! repair-destination choice are collected before locking `ReplState`.
//!
//! **Event ordering**: every registry mutation and its matching
//! journal entry happen in the same critical section, so the journal
//! is a faithful serialization of the data plane. The master drains it
//! each loop iteration and commits the entries through the replicated
//! scheduler log in order — the oracle's stale-source check and the
//! replay property both ride on that order being exact.

use std::collections::HashMap;
use std::time::Instant;

use crossbid_simcore::rng::splitmix64;
use crossbid_simcore::SimTime;
use crossbid_storage::{LocalStore, ObjectId, ReplicaMap};

use crate::engine::ReplicationConfig;
use crate::faults::NetFaultPlan;
use crate::job::{JobId, WorkerId};
use crate::trace::SchedEventKind;

/// One journaled data-plane event awaiting commit by the master:
/// `(worker, job, kind)`.
pub(crate) type JournalEntry = (u32, Option<JobId>, SchedEventKind);

/// Deterministic data-plane loss for one peer transfer attempt — the
/// exact sampler the simulation engine uses (hash of net seed, object,
/// endpoint, attempt), so a (seed, plan) pair replays the same drops
/// on both runtimes. Composes the replication plane's own
/// `peer_drop_prob` with any active link loss as independent failures.
pub(crate) fn peer_dropped(
    cfg: &ReplicationConfig,
    net: &NetFaultPlan,
    obj: ObjectId,
    w: u32,
    attempt: u32,
) -> bool {
    let keep = (1.0 - cfg.peer_drop_prob) * (1.0 - net.to_worker.drop_prob);
    let p = 1.0 - keep;
    if p <= 0.0 {
        return false;
    }
    let mut s = net
        .seed
        .wrapping_add(obj.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(((w as u64) << 32) | attempt as u64);
    let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
    u < p
}

/// Attempt key separating repair-copy loss samples from fetch-attempt
/// samples of the same (object, worker) pair — same constant as the
/// engine's.
pub(crate) const REPAIR_ATTEMPT_KEY: u32 = 0x8000_0000;

pub(crate) struct ReplState {
    /// Effective config (mutation sabotage flags already folded in).
    pub cfg: ReplicationConfig,
    /// Cluster-wide artifact → live replica set; the source of truth.
    pub map: ReplicaMap,
    /// Data-plane events produced under this lock, committed in order
    /// by the master loop.
    pub journal: Vec<JournalEntry>,
    /// Pin directives per worker `(object, pin?)`. A worker (or the
    /// master inserting a repair copy on its behalf) drains its own
    /// queue under both locks immediately before any store insert —
    /// the only moment that store can evict — so a queued pin always
    /// lands before the eviction it must prevent.
    pin_ops: Vec<Vec<(ObjectId, bool)>>,
    /// In-flight re-replication copies: object → destination worker.
    /// Committed (`repair_start`) before the copy begins; removed on
    /// `repair_done`; the run does not end while one is in flight.
    pub repairs: HashMap<ObjectId, u32>,
    /// Liveness mirror maintained by the master (crashes, recoveries,
    /// joins, removals) for source filtering on the worker side.
    pub alive: Vec<bool>,
    /// Net-fault plan: partition windows block peer links, link loss
    /// composes into the drop sampler, and the retry policy paces the
    /// fetch backoff.
    pub netfaults: NetFaultPlan,
    /// Run-start instant mapping wall time onto the virtual clock the
    /// partition windows are expressed in.
    pub start: Instant,
    /// Real seconds per virtual second.
    pub time_scale: f64,
}

impl ReplState {
    pub fn new(cfg: ReplicationConfig, netfaults: NetFaultPlan, n: usize, time_scale: f64) -> Self {
        ReplState {
            map: ReplicaMap::new(cfg.factor),
            cfg,
            journal: Vec::new(),
            pin_ops: vec![Vec::new(); n],
            repairs: HashMap::new(),
            alive: vec![true; n],
            netfaults,
            start: Instant::now(),
            time_scale,
        }
    }

    /// Current virtual time, for partition-window checks.
    fn vnow(&self) -> SimTime {
        SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() / self.time_scale)
    }

    /// Is the `a`↔`b` peer link cut by a partition right now?
    pub fn link_blocked(&self, a: u32, b: u32) -> bool {
        self.netfaults
            .link_blocked(WorkerId(a), WorkerId(b), self.vnow())
    }

    /// Deterministic loss sample for one peer transfer attempt.
    pub fn peer_lost(&self, obj: ObjectId, w: u32, attempt: u32) -> bool {
        peer_dropped(&self.cfg, &self.netfaults, obj, w, attempt)
    }

    /// Live peers currently holding `obj` (ascending id), excluding
    /// `exclude` — the candidate sources for a peer fetch.
    pub fn peer_sources(&self, obj: ObjectId, exclude: u32) -> Vec<u32> {
        self.map
            .replicas(obj)
            .filter(|&h| h != exclude && self.alive[h as usize])
            .collect()
    }

    /// Seeded backoff before rotating to the next replica — the
    /// engine's recipe, keyed on (net seed, job, object, attempt).
    pub fn fetch_backoff_secs(&self, job: JobId, obj: ObjectId, attempt: u32) -> f64 {
        let retry = self.netfaults.retry;
        let seed = self
            .netfaults
            .seed
            .wrapping_add(job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(obj.0);
        retry
            .delay_secs(seed, attempt.min(retry.max_attempts.saturating_sub(1)))
            .unwrap_or(retry.base_secs)
    }

    /// Apply every pending pin directive for worker `me` to its store.
    /// Callers hold `me`'s `WorkerShared` lock and this lock together,
    /// and call this *before* the insert the directives must protect.
    pub fn apply_pin_ops(&mut self, me: u32, store: &mut LocalStore) {
        for (obj, pin) in self.pin_ops[me as usize].drain(..) {
            if pin {
                store.pin(obj);
            } else {
                store.unpin(obj);
            }
        }
    }

    /// Re-derive eviction pins for `obj`: its sole surviving copy is
    /// pinned (eviction must never destroy data the cluster cannot
    /// re-create); once a second copy exists the pins are released.
    /// Directives are queued per holder and land before that holder's
    /// next insert — its earliest eviction opportunity.
    pub fn sync_pins(&mut self, obj: ObjectId) {
        let holders: Vec<u32> = self.map.replicas(obj).collect();
        if holders.len() == 1 {
            if !self.cfg.evict_last_copy {
                self.pin_ops[holders[0] as usize].push((obj, true));
            }
        } else {
            for h in holders {
                self.pin_ops[h as usize].push((obj, false));
            }
        }
    }

    /// Post-insert replica bookkeeping, mirroring the engine's
    /// `note_replica_insert`: journal a `replica_drop` for every
    /// eviction the insert caused, a `replica_add` if the object was
    /// retained and is a new copy, and re-derive pins. Top-up repairs
    /// are the master's job — its under-replication scan runs after
    /// every journal drain that changed a replica set.
    pub fn note_insert(
        &mut self,
        me: u32,
        store: &LocalStore,
        obj: ObjectId,
        bytes: u64,
        evicted: Vec<ObjectId>,
    ) {
        for gone in evicted {
            if self.map.drop_replica(gone, me) {
                self.journal.push((
                    me,
                    None,
                    SchedEventKind::ReplicaDrop {
                        object: gone.0,
                        evicted: true,
                    },
                ));
                self.sync_pins(gone);
            }
        }
        // An insert that passed through (pins or capacity blocked
        // admission) did not create a copy.
        if store.peek(obj) && self.map.add(obj, me, bytes) {
            self.journal
                .push((me, None, SchedEventKind::ReplicaAdd { object: obj.0 }));
            self.sync_pins(obj);
        }
    }

    /// Crash/removal/drain-departure hook: `w`'s copies leave the
    /// replica set. Journals one `replica_drop` per object
    /// (`evicted: false` — a failure, not cache pressure) and
    /// re-derives pins. The master's scan schedules the repairs.
    pub fn drop_worker(&mut self, w: u32) {
        self.alive[w as usize] = false;
        self.pin_ops[w as usize].clear();
        for obj in self.map.drop_node(w) {
            self.journal.push((
                w,
                None,
                SchedEventKind::ReplicaDrop {
                    object: obj.0,
                    evicted: false,
                },
            ));
            self.sync_pins(obj);
        }
    }
}
