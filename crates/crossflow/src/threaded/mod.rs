//! The real-threaded runtime — the paper's §6.4 "non-simulated"
//! configuration.
//!
//! Where [`engine`](crate::engine) replays the distributed system on a
//! virtual clock, this runtime actually *is* a concurrent system:
//!
//! * one **master thread** running the scheduler (bidding contests
//!   with real wall-clock deadlines, or the Baseline's pull protocol);
//! * per worker, an **executor thread** that processes jobs serially
//!   (transfer and scan durations are realized as scaled
//!   `thread::sleep`s) and a **bidder thread** that answers bid
//!   requests and offers concurrently — the paper: "we envision the
//!   bidding process to be handled by a separate thread";
//! * crossbeam channels as the messaging fabric.
//!
//! Durations are *virtual seconds* scaled by
//! [`ThreadedConfig::time_scale`] into real sleeps, so a 3000-virtual-
//! second MSR run takes ~3 real seconds at the default scale. Races,
//! message interleavings and late bids are real, which is exactly what
//! this runtime exists to exercise; workers learn their speeds from
//! observed transfers (historic averages, §6.4).

mod chaos;
mod master;
mod repl;
mod worker;

pub use chaos::{ChaosConfig, DeliveryEntry, DeliveryLog, DeliveryLogHandle, ProtocolMutation};
pub(crate) use master::run_threaded_with_shareds;
pub use master::{run_threaded_output, ThreadedConfig, ThreadedScheduler};
pub(crate) use worker::WorkerShared;

use crate::job::Job;

/// Messages workers send to the threaded master. `Clone` exists for
/// the chaos layer's duplicate-delivery injection.
#[derive(Debug, Clone)]
pub(crate) enum ToMaster {
    /// A bid for an open contest.
    Bid {
        /// Bidding worker.
        worker: u32,
        /// Contested job.
        job: crate::job::JobId,
        /// Estimated completion seconds (virtual).
        estimate_secs: f64,
    },
    /// Baseline: the worker declined the offered job.
    Reject {
        /// Declining worker.
        worker: u32,
        /// The job, returned for someone else.
        job: Job,
        /// Placement sequence number of the Offer being declined (0
        /// when the reliability layer is off), so a stale reject
        /// cannot cancel a newer placement.
        seq: u64,
    },
    /// The worker's executor has drained its queue.
    Idle {
        /// Idle worker.
        worker: u32,
    },
    /// A job finished; results flow back through the master. The
    /// phase breakdown rides along so the master can synthesize the
    /// same per-job trace the simulation engine records.
    Done {
        /// Executing worker.
        worker: u32,
        /// The finished job.
        job: Job,
        /// Virtual seconds the job waited in the worker queue.
        wait_secs: f64,
        /// Virtual seconds spent transferring the resource (0 when
        /// the data was already local).
        fetch_secs: f64,
        /// Virtual seconds spent processing.
        proc_secs: f64,
    },
    /// Reliability layer: the worker confirms it received (and queued
    /// or already holds) placement `seq` of `job`. Stops the master's
    /// retransmission timer and satisfies the lease.
    AckAssign {
        /// Acking worker.
        worker: u32,
        /// Placed job.
        job: crate::job::JobId,
        /// Placement sequence number being confirmed.
        seq: u64,
    },
}

/// Messages the threaded master sends to a worker's bidder thread.
/// `Clone` exists for the net-fault layer's duplicate/retransmit
/// delivery; `seq` is the placement sequence number the reliability
/// layer acks and dedups on (0 when the layer is off).
#[derive(Debug, Clone)]
pub(crate) enum ToWorker {
    /// Estimate and bid on this job.
    BidRequest(Job),
    /// Baseline: consider this job (may reject once).
    Offer {
        /// The offered job.
        job: Job,
        /// Placement sequence number (reliability layer).
        seq: u64,
    },
    /// You won / were assigned: queue it for execution.
    Assign {
        /// The assigned job.
        job: Job,
        /// Placement sequence number (reliability layer).
        seq: u64,
    },
    /// Reliability layer: the master saw this job's `Done` — stop
    /// resending it.
    AckDone(crate::job::JobId),
    /// Run terminated; exit threads.
    Shutdown,
}
