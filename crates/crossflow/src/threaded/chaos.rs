//! Controlled-interleaving hooks for the threaded runtime.
//!
//! The threaded master normally consumes its intake channel in arrival
//! order, so one process run explores exactly one interleaving of the
//! protocol messages. [`ChaosConfig`] turns the intake into a *virtual
//! scheduler* in the spirit of loom/madsim: a seeded fraction of
//! incoming messages is parked in a hold buffer and re-released in
//! seeded-random order (bounded delay, bounded reordering), and
//! messages can be duplicated — the two perturbations that produce the
//! late-bid / duplicate-delivery races the bidding protocol must
//! tolerate. Every delivery decision is recorded in a [`DeliveryLog`]
//! so a failing exploration can print the exact interleaving.
//!
//! [`ProtocolMutation`] is the second half of the checker story: each
//! variant re-introduces one protocol bug fixed in PR 1, behind the
//! `protocol-mutation` cargo feature, so the test suite can prove the
//! invariant oracle actually detects that class of bug. Without the
//! feature the mutations are inert and the runtime refuses to run with
//! one selected.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError};
use crossbid_simcore::{RngStream, SeedSequence, SimTime};
use parking_lot::Mutex;

use crate::faults::NetFaultPlan;
use crate::job::WorkerId;
use crate::obs::RuntimeMetrics;

use super::ToMaster;

/// Shared handle to the recorded delivery schedule of one run.
pub type DeliveryLogHandle = Arc<Mutex<DeliveryLog>>;

/// Seeded perturbation of master-intake message delivery.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the delivery-order decisions. Independent of the run
    /// seed so the explorer can sweep interleavings of one scenario.
    pub seed: u64,
    /// Probability an incoming message is parked in the hold buffer
    /// instead of delivered immediately.
    pub hold_prob: f64,
    /// Probability an incoming message is *duplicated*: the extra copy
    /// goes through the hold buffer and arrives again later.
    pub dup_prob: f64,
    /// Hold-buffer capacity; at capacity, messages pass through.
    pub max_held: usize,
    /// Force-release age: no message is held longer than this (real
    /// time), which bounds the reordering and keeps the run live.
    pub max_hold: Duration,
    /// Worker-side: maximum extra real-time delay a bidder sleeps
    /// before answering a bid request (seeded per worker). Turns the
    /// "all bids beat the window" fast path into genuine late-bid
    /// races. `Duration::ZERO` disables.
    pub max_bid_delay: Duration,
    /// Probability an incoming bid's estimate is corrupted to NaN — a
    /// garbage message the master's intake guard must drop. Workers
    /// never produce non-finite estimates themselves, so this is the
    /// only way to exercise that guard end to end.
    pub nan_bid_prob: f64,
    /// When set, every delivery decision of the run is appended here.
    pub delivery_log: Option<DeliveryLogHandle>,
}

impl ChaosConfig {
    /// A chaos scheme exercising reordering, duplication and late bids
    /// at rates that perturb most runs without stalling them.
    pub fn aggressive(seed: u64) -> Self {
        ChaosConfig {
            seed,
            hold_prob: 0.35,
            dup_prob: 0.10,
            max_held: 8,
            max_hold: Duration::from_millis(4),
            max_bid_delay: Duration::from_millis(2),
            nan_bid_prob: 0.05,
            delivery_log: None,
        }
    }

    /// Attach a fresh delivery log and return its handle.
    pub fn with_delivery_log(mut self) -> (Self, DeliveryLogHandle) {
        let h: DeliveryLogHandle = Arc::new(Mutex::new(DeliveryLog::default()));
        self.delivery_log = Some(Arc::clone(&h));
        (self, h)
    }
}

/// One delivered message in the recorded schedule.
#[derive(Debug, Clone)]
pub struct DeliveryEntry {
    /// Position of the message in channel-arrival order (0-based).
    pub intake_seq: u64,
    /// Whether this delivery is a chaos-injected duplicate copy.
    pub duplicate: bool,
    /// Whether the message sat in the hold buffer before delivery.
    pub was_held: bool,
    /// Compact message description, e.g. `bid(w1,j3)`.
    pub tag: String,
}

/// The recorded delivery schedule of one run: the interleaving the
/// chaos layer actually produced, in delivery order.
#[derive(Debug, Default, Clone)]
pub struct DeliveryLog {
    /// Deliveries, in the order the master consumed them.
    pub entries: Vec<DeliveryEntry>,
}

impl DeliveryLog {
    /// Render the schedule for a failure report: one delivery per
    /// line, flagging reordered and duplicated messages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut high_water = 0u64;
        for (pos, e) in self.entries.iter().enumerate() {
            let mut flags = String::new();
            if e.duplicate {
                flags.push_str(" [dup]");
            }
            if e.was_held {
                flags.push_str(" [held]");
            }
            if e.intake_seq < high_water {
                flags.push_str(" [reordered]");
            }
            high_water = high_water.max(e.intake_seq);
            out.push_str(&format!(
                "#{pos:04} intake {:>4} {}{}\n",
                e.intake_seq, e.tag, flags
            ));
        }
        out
    }

    /// How many deliveries were reordered past a later-arrived one.
    pub fn inversions(&self) -> usize {
        let mut high_water = 0u64;
        let mut n = 0;
        for e in &self.entries {
            if e.intake_seq < high_water {
                n += 1;
            }
            high_water = high_water.max(e.intake_seq);
        }
        n
    }
}

fn tag(msg: &ToMaster) -> String {
    match msg {
        ToMaster::Bid {
            worker,
            job,
            estimate_secs,
        } if !estimate_secs.is_finite() => format!("bid(w{},j{},nan)", worker, job.0),
        ToMaster::Bid { worker, job, .. } => format!("bid(w{},j{})", worker, job.0),
        ToMaster::Reject { worker, job, .. } => format!("reject(w{},j{})", worker, job.id.0),
        ToMaster::Idle { worker } => format!("idle(w{worker})"),
        ToMaster::Done { worker, job, .. } => format!("done(w{},j{})", worker, job.id.0),
        ToMaster::AckAssign { worker, job, seq } => format!("ack(w{},j{},s{seq})", worker, job.0),
    }
}

/// Which worker a `ToMaster` message came from — the net-fault layer
/// needs the sender to honor per-worker partitions.
fn sender_of(msg: &ToMaster) -> u32 {
    match msg {
        ToMaster::Bid { worker, .. }
        | ToMaster::Reject { worker, .. }
        | ToMaster::Idle { worker }
        | ToMaster::Done { worker, .. }
        | ToMaster::AckAssign { worker, .. } => *worker,
    }
}

struct Held {
    seq: u64,
    since: Instant,
    duplicate: bool,
    msg: ToMaster,
}

/// The master's intake: a transparent wrapper over the `ToMaster`
/// receiver that, under chaos, holds/reorders/duplicates messages,
/// and, under an active [`NetFaultPlan`], models the worker→master
/// half of the lossy link (drop/duplicate/delay/partition). The net
/// layer sits *beneath* chaos — closest to the wire — so chaos
/// reorders only traffic that survived the link.
pub(crate) struct Intake {
    rx: Receiver<ToMaster>,
    chaos: Option<ChaosState>,
    net: Option<NetIntake>,
    /// The sender side hung up; only held/delayed messages remain.
    disconnected: bool,
}

struct ChaosState {
    cfg: ChaosConfig,
    rng: RngStream,
    held: VecDeque<Held>,
    next_seq: u64,
}

/// Worker→master half of the lossy link, applied at the intake.
pub(crate) struct NetIntake {
    plan: NetFaultPlan,
    rng: RngStream,
    /// Run start, for mapping wall time onto the partition windows.
    start: Instant,
    time_scale: f64,
    /// In-flight messages the link has delayed: `(due, msg)`.
    delayed: Vec<(Instant, ToMaster)>,
    metrics: RuntimeMetrics,
}

impl NetIntake {
    pub fn new(
        plan: NetFaultPlan,
        start: Instant,
        time_scale: f64,
        metrics: RuntimeMetrics,
    ) -> Self {
        let rng = SeedSequence::new(plan.seed).stream(0x4E38);
        NetIntake {
            plan,
            rng,
            start,
            time_scale,
            delayed: Vec::new(),
            metrics,
        }
    }

    /// Pass `msg` through the link. `None` means it was dropped (or
    /// fully delayed); survivors due *now* come back for delivery.
    fn filter(&mut self, msg: ToMaster, now: Instant) -> Option<ToMaster> {
        let vnow =
            SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() / self.time_scale.max(1e-12));
        let from = WorkerId(sender_of(&msg));
        let link = self.plan.to_master;
        if self.plan.partitioned(from, vnow) || self.rng.chance(link.drop_prob) {
            self.metrics.net_dropped.inc();
            return None;
        }
        if self.rng.chance(link.dup_prob) {
            self.metrics.net_duplicated.inc();
            let d = self.sample_delay();
            self.delayed.push((now + d, msg.clone()));
        }
        let d = self.sample_delay();
        if d > Duration::ZERO {
            self.delayed.push((now + d, msg));
            return None;
        }
        Some(msg)
    }

    fn sample_delay(&mut self) -> Duration {
        let link = self.plan.to_master;
        if link.delay_max_secs <= 0.0 {
            return Duration::ZERO;
        }
        let v = self.rng.uniform(link.delay_min_secs, link.delay_max_secs);
        Duration::from_secs_f64((v * self.time_scale).max(0.0))
    }
}

/// How long the chaotic intake waits for fresh traffic before
/// releasing a held message instead.
const MIX_SLICE: Duration = Duration::from_micros(300);

impl Intake {
    pub fn new(rx: Receiver<ToMaster>, chaos: Option<ChaosConfig>, net: Option<NetIntake>) -> Self {
        let chaos = chaos.map(|cfg| ChaosState {
            rng: SeedSequence::new(cfg.seed).stream(0xC4A05),
            held: VecDeque::new(),
            next_seq: 0,
            cfg,
        });
        Intake {
            rx,
            chaos,
            net,
            disconnected: false,
        }
    }

    /// Chaos admission of one link-delivered message: corrupt,
    /// duplicate or park it per the chaos scheme. `None` = parked in
    /// the hold buffer, to surface later.
    fn admit(
        chaos_opt: &mut Option<ChaosState>,
        mut msg: ToMaster,
        now: Instant,
    ) -> Option<ToMaster> {
        let Some(chaos) = chaos_opt else {
            return Some(msg);
        };
        if let ToMaster::Bid { estimate_secs, .. } = &mut msg {
            if chaos.rng.chance(chaos.cfg.nan_bid_prob) {
                *estimate_secs = f64::NAN;
            }
        }
        let seq = chaos.next_seq;
        chaos.next_seq += 1;
        if chaos.rng.chance(chaos.cfg.dup_prob) && chaos.held.len() < chaos.cfg.max_held {
            chaos.held.push_back(Held {
                seq,
                since: now,
                duplicate: true,
                msg: msg.clone(),
            });
        }
        if chaos.rng.chance(chaos.cfg.hold_prob) && chaos.held.len() < chaos.cfg.max_held {
            chaos.held.push_back(Held {
                seq,
                since: now,
                duplicate: false,
                msg,
            });
            return None;
        }
        record(chaos, seq, false, false, &msg);
        Some(msg)
    }

    /// Receive the next message, honoring `deadline` (`None` blocks
    /// until traffic or disconnect). Semantics match
    /// `Receiver::recv_deadline` / `recv`: `Timeout` only ever fires
    /// when a deadline was given.
    pub fn recv(&mut self, deadline: Option<Instant>) -> Result<ToMaster, RecvTimeoutError> {
        loop {
            let now = Instant::now();
            // Matured link-delayed deliveries surface first (and still
            // pass through the chaos layer above them). Removal must be
            // order-stable (`remove`, not `swap_remove`): equally-due
            // messages have to surface in the order the link delayed
            // them, or a (run, chaos, net) seed triple stops replaying
            // the same delivery schedule.
            if let Some(net) = &mut self.net {
                if let Some(pos) = net.delayed.iter().position(|(at, _)| *at <= now) {
                    let (_, msg) = net.delayed.remove(pos);
                    match Self::admit(&mut self.chaos, msg, now) {
                        Some(out) => return Ok(out),
                        None => continue,
                    }
                }
            }
            // Liveness: anything held past its age bound goes out now,
            // oldest first.
            if let Some(chaos) = &mut self.chaos {
                if let Some(pos) = chaos
                    .held
                    .iter()
                    .position(|h| now.saturating_duration_since(h.since) >= chaos.cfg.max_hold)
                {
                    return Ok(release(chaos, pos));
                }
            }
            if self.disconnected {
                // Teardown: flush what is still in flight (remaining
                // link delay is moot once every sender is gone), then
                // report the hangup.
                if let Some(net) = &mut self.net {
                    if !net.delayed.is_empty() {
                        let (_, msg) = net.delayed.remove(0);
                        match Self::admit(&mut self.chaos, msg, now) {
                            Some(out) => return Ok(out),
                            None => continue,
                        }
                    }
                }
                if let Some(chaos) = &mut self.chaos {
                    if !chaos.held.is_empty() {
                        return Ok(release_random(chaos));
                    }
                }
                return Err(RecvTimeoutError::Disconnected);
            }
            // Wait for fresh traffic, but never past the caller's
            // deadline, a forced chaos release or a due link delivery
            // — and only briefly while messages are held (they must
            // keep mixing).
            let forced = self
                .chaos
                .as_ref()
                .and_then(|c| c.held.iter().map(|h| h.since + c.cfg.max_hold).min());
            let slice = self
                .chaos
                .as_ref()
                .filter(|c| !c.held.is_empty())
                .map(|_| now + MIX_SLICE);
            let due = self
                .net
                .as_ref()
                .and_then(|n| n.delayed.iter().map(|(at, _)| *at).min());
            let wait_until = [deadline, forced, slice, due].into_iter().flatten().min();
            let got = match wait_until {
                Some(d) => self.rx.recv_deadline(d),
                None => self.rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
            };
            match got {
                Ok(msg) => {
                    let msg = match &mut self.net {
                        Some(net) => match net.filter(msg, now) {
                            Some(m) => m,
                            None => continue,
                        },
                        None => msg,
                    };
                    match Self::admit(&mut self.chaos, msg, now) {
                        Some(out) => return Ok(out),
                        None => continue,
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    // A mix slice (or forced release) expired without
                    // fresh traffic: deliver something held.
                    if let Some(chaos) = &mut self.chaos {
                        if !chaos.held.is_empty() {
                            return Ok(release_random(chaos));
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.disconnected = true;
                }
            }
        }
    }

    /// Everything deliverable *right now*, without blocking: matured
    /// link-delayed traffic, age-expired held messages, and whatever
    /// already sits in the channel. Returns `None` once nothing more
    /// is immediately available (messages may still be parked in the
    /// hold buffer or in link flight — a later [`Intake::recv`] will
    /// surface them). The master uses this to drain one wakeup's
    /// worth of intake in a single batch.
    pub fn try_recv(&mut self) -> Option<ToMaster> {
        loop {
            let now = Instant::now();
            if let Some(net) = &mut self.net {
                if let Some(pos) = net.delayed.iter().position(|(at, _)| *at <= now) {
                    let (_, msg) = net.delayed.remove(pos);
                    match Self::admit(&mut self.chaos, msg, now) {
                        Some(out) => return Some(out),
                        None => continue,
                    }
                }
            }
            if let Some(chaos) = &mut self.chaos {
                if let Some(pos) = chaos
                    .held
                    .iter()
                    .position(|h| now.saturating_duration_since(h.since) >= chaos.cfg.max_hold)
                {
                    return Some(release(chaos, pos));
                }
            }
            match self.rx.try_recv() {
                Ok(msg) => {
                    let msg = match &mut self.net {
                        Some(net) => match net.filter(msg, now) {
                            Some(m) => m,
                            None => continue,
                        },
                        None => msg,
                    };
                    match Self::admit(&mut self.chaos, msg, now) {
                        Some(out) => return Some(out),
                        None => continue,
                    }
                }
                // `Disconnected` is left for `recv` to observe: it owns
                // the teardown flush of held/delayed messages.
                Err(_) => return None,
            }
        }
    }
}

fn record(chaos: &mut ChaosState, seq: u64, duplicate: bool, was_held: bool, msg: &ToMaster) {
    if let Some(log) = &chaos.cfg.delivery_log {
        log.lock().entries.push(DeliveryEntry {
            intake_seq: seq,
            duplicate,
            was_held,
            tag: tag(msg),
        });
    }
}

fn release(chaos: &mut ChaosState, pos: usize) -> ToMaster {
    let h = chaos.held.remove(pos).expect("position in range");
    record(chaos, h.seq, h.duplicate, true, &h.msg);
    h.msg
}

fn release_random(chaos: &mut ChaosState) -> ToMaster {
    let pos = chaos.rng.below(chaos.held.len() as u64) as usize;
    release(chaos, pos)
}

/// One reintroduced PR 1 protocol bug, for checker self-validation.
///
/// The variants exist unconditionally so configuration code compiles
/// everywhere, but their *effects* are only compiled under the
/// `protocol-mutation` cargo feature; without it the threaded runtime
/// panics on any selection other than [`ProtocolMutation::None`]
/// rather than silently running unmutated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolMutation {
    /// The correct protocol.
    #[default]
    None,
    /// Drop the intake guard on non-finite bid estimates: a NaN/∞ bid
    /// is recorded into the contest like any other.
    AcceptNonFiniteBids,
    /// Drop the duplicate-bid short-circuit: a second bid from the
    /// same worker is recorded again and can close the contest.
    AcceptDuplicateBids,
    /// Honor bids that arrive after their contest closed: the late
    /// bidder steals the job with a second assignment.
    AcceptLateBids,
    /// Baseline: re-offer a rejected job straight back to the worker
    /// that just rejected it even when another idle worker exists.
    ReofferToRejector,
    /// Reliability layer: drop the master's completed-job dedup — a
    /// duplicated `Done` delivery counts (and runs the workflow's
    /// downstream logic) twice.
    DropDedup,
    /// Reliability layer: the master records incoming placement acks
    /// but its retry/lease machinery ignores them — leases expire and
    /// bounce placements the worker already confirmed.
    IgnoreAcks,
    /// Reliability layer: disable the placement lease — a lost,
    /// retries-exhausted Assign/Offer is never bounced back to the
    /// scheduler and its job is silently lost.
    NoLeases,
    /// Atomization: release every DAG task at registration, ignoring
    /// predecessor gating — successors are offered before the tasks
    /// they depend on have completed.
    OfferBeforePredecessor,
    /// Atomization: drop the launched-once guard on the straggler
    /// detector — a task that already has a speculative replica is
    /// speculated again on every sweep.
    DoubleSpeculate,
    /// Replicated data plane: commit `repair_start` but never perform
    /// the copy — the oracle must flag the unmatched start as
    /// `RepairNeverCompleted`.
    SkipRepair,
    /// Replicated data plane: never pin sole surviving copies, so
    /// cache pressure may destroy the last live replica — the oracle
    /// must flag an `EvictedLastCopy` violation.
    EvictLastCopy,
}

impl ProtocolMutation {
    /// Is this the unmutated protocol?
    pub fn is_none(self) -> bool {
        self == ProtocolMutation::None
    }

    pub(crate) fn accepts_non_finite(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::AcceptNonFiniteBids
    }

    pub(crate) fn accepts_duplicates(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::AcceptDuplicateBids
    }

    pub(crate) fn accepts_late_bids(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::AcceptLateBids
    }

    pub(crate) fn reoffers_to_rejector(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::ReofferToRejector
    }

    pub(crate) fn drops_dedup(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::DropDedup
    }

    pub(crate) fn ignores_acks(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::IgnoreAcks
    }

    pub(crate) fn no_leases(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::NoLeases
    }

    pub(crate) fn ignores_dag_gating(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::OfferBeforePredecessor
    }

    pub(crate) fn double_speculates(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::DoubleSpeculate
    }

    pub(crate) fn skips_repair(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::SkipRepair
    }

    pub(crate) fn evicts_last_copy(self) -> bool {
        cfg!(feature = "protocol-mutation") && self == ProtocolMutation::EvictLastCopy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::LinkFault;
    use crate::obs::RuntimeMetrics;

    /// Regression: the delayed-message buffer used `swap_remove`, so
    /// equally-due messages could surface out of the order the link
    /// delayed them — and a recorded (run seed, net seed) pair stopped
    /// replaying the same delivery schedule. A constant-delay link
    /// keeps due times in arrival order, so delivery must be FIFO.
    #[test]
    fn constant_delay_link_preserves_fifo_order() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let link = LinkFault {
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_min_secs: 0.002,
            delay_max_secs: 0.002,
        };
        let plan = NetFaultPlan {
            to_master: link,
            ..NetFaultPlan::none()
        };
        let net = NetIntake::new(plan, Instant::now(), 1.0, RuntimeMetrics::from_sink(None));
        let mut intake = Intake::new(rx, None, Some(net));
        for w in 0..12 {
            tx.send(ToMaster::Idle { worker: w }).unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(msg) = intake.recv(None) {
            got.push(sender_of(&msg));
        }
        assert_eq!(got, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn try_recv_drains_whats_deliverable_without_blocking() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut intake = Intake::new(rx, None, None);
        assert!(intake.try_recv().is_none(), "empty channel: nothing now");
        for w in 0..5 {
            tx.send(ToMaster::Idle { worker: w }).unwrap();
        }
        let mut got = Vec::new();
        while let Some(msg) = intake.try_recv() {
            got.push(sender_of(&msg));
        }
        assert_eq!(got, (0..5).collect::<Vec<u32>>());
        // Hangup is `recv`'s business (it owns the teardown flush);
        // `try_recv` just reports that nothing is deliverable now.
        drop(tx);
        assert!(intake.try_recv().is_none());
        assert!(matches!(
            intake.recv(None),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn delivery_log_counts_inversions_and_renders_flags() {
        let log = DeliveryLog {
            entries: vec![
                DeliveryEntry {
                    intake_seq: 1,
                    duplicate: false,
                    was_held: false,
                    tag: "bid(w0,j0)".into(),
                },
                DeliveryEntry {
                    intake_seq: 0,
                    duplicate: false,
                    was_held: true,
                    tag: "idle(w1)".into(),
                },
                DeliveryEntry {
                    intake_seq: 0,
                    duplicate: true,
                    was_held: true,
                    tag: "idle(w1)".into(),
                },
            ],
        };
        assert_eq!(log.inversions(), 2);
        let text = log.render();
        assert!(text.contains("[reordered]"), "{text}");
        assert!(text.contains("[dup]"), "{text}");
        assert!(text.contains("[held]"), "{text}");
    }

    #[test]
    fn mutations_are_inert_without_the_feature_flag() {
        let m = ProtocolMutation::AcceptDuplicateBids;
        assert_eq!(
            m.accepts_duplicates(),
            cfg!(feature = "protocol-mutation"),
            "mutation effects must track the cargo feature"
        );
        assert!(ProtocolMutation::None.is_none());
        assert!(!ProtocolMutation::default().accepts_late_bids());
    }
}
