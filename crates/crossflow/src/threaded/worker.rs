//! Worker-side threads of the threaded runtime.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use crossbid_net::noise::NoiseSampler;
use crossbid_net::{Bandwidth, NoiseModel};
use crossbid_simcore::{RngStream, SimTime};
use crossbid_storage::LocalStore;
use parking_lot::Mutex;

use crate::faults::RetryPolicy;
use crate::job::{Job, JobId, ResourceRef, WorkerId};
use crate::obs::RuntimeMetrics;
use crate::worker::{SpeedTracker, WorkerSpec};

use super::repl::ReplState;
use super::{ToMaster, ToWorker};

/// State shared between a worker's bidder and executor threads —
/// "their internal state, i.e. their opinions".
pub(crate) struct WorkerShared {
    pub spec: WorkerSpec,
    /// Fault-injection switch: while `false` the worker is crashed —
    /// the bidder goes silent and the executor abandons its work.
    pub alive: bool,
    /// Incarnation counter, bumped on every crash *and* recovery.
    /// Queued work is tagged with the epoch it was accepted in; the
    /// executor discards anything from an older incarnation (a
    /// crashed instance's queue does not survive into the next one).
    pub epoch: u64,
    pub store: LocalStore,
    /// Sum of estimated virtual seconds of accepted-but-unfinished
    /// jobs (`totalCostOfUnfinishedJobs`).
    pub committed_secs: f64,
    /// Jobs declined once (Baseline bookkeeping).
    pub declined: std::collections::HashSet<crate::job::JobId>,
    /// Observed network speeds (historic average, §6.4).
    pub net_tracker: SpeedTracker,
    /// Observed read/write speeds (historic average, §6.4).
    pub rw_tracker: SpeedTracker,
    /// Virtual clock for store recency: advances with executed work.
    pub vclock: SimTime,
    /// Busy virtual seconds accumulated by the executor.
    pub busy_secs: f64,
}

impl WorkerShared {
    pub fn new(spec: WorkerSpec) -> Self {
        WorkerShared {
            alive: true,
            epoch: 0,
            store: LocalStore::new(spec.storage_bytes, spec.eviction),
            committed_secs: 0.0,
            declined: Default::default(),
            net_tracker: SpeedTracker::default(),
            rw_tracker: SpeedTracker::default(),
            vclock: SimTime::ZERO,
            busy_secs: 0.0,
            spec,
        }
    }

    pub fn believed_net(&self, learning: bool) -> Bandwidth {
        if learning {
            self.net_tracker.believed().unwrap_or(self.spec.net)
        } else {
            self.spec.net
        }
    }

    pub fn believed_rw(&self, learning: bool) -> Bandwidth {
        if learning {
            self.rw_tracker.believed().unwrap_or(self.spec.rw)
        } else {
            self.spec.rw
        }
    }

    /// The cost of `job` alone: transfer + processing, *excluding* the
    /// backlog. This is what joins `committed_secs` when the job is
    /// accepted.
    pub fn marginal_cost_secs(&self, job: &Job, learning: bool) -> f64 {
        let fetch = match job.resource {
            Some(r) if !self.store.peek(r.id) => {
                self.believed_net(learning).time_for(r.bytes).as_secs_f64()
            }
            _ => 0.0,
        };
        let scan = if job.work_bytes == 0 {
            0.0
        } else {
            self.believed_rw(learning)
                .time_for(job.work_bytes)
                .as_secs_f64()
        };
        fetch + scan * self.spec.cpu_factor + job.cpu_secs * self.spec.cpu_factor
    }

    /// Listing 2's estimate: backlog + transfer + processing.
    pub fn estimate_secs(&self, job: &Job, learning: bool) -> f64 {
        self.committed_secs + self.marginal_cost_secs(job, learning)
    }

    /// Has the data (or needs none)?
    pub fn has_data(&self, job: &Job) -> bool {
        match job.resource {
            None => true,
            Some(r) => self.store.peek(r.id),
        }
    }

    /// Reset per-run state between session iterations: the cache
    /// contents and learned speeds persist (warm iterations, §6.3.1);
    /// commitments, decline memory, busy time and store *statistics*
    /// start fresh. The epoch bump invalidates any stale queue items.
    pub fn reset_for_run(&mut self) {
        self.alive = true;
        self.epoch += 1;
        self.committed_secs = 0.0;
        self.declined.clear();
        self.busy_secs = 0.0;
        self.store.reset_stats();
    }
}

pub(crate) struct WorkerThreads {
    pub bidder: std::thread::JoinHandle<()>,
    pub executor: std::thread::JoinHandle<()>,
}

/// Which protocol the bidder thread speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Protocol {
    Bidding,
    Baseline,
}

struct ExecItem {
    job: Job,
    est_secs: f64,
    enqueued: Instant,
    /// Incarnation that accepted the job; stale items are discarded.
    epoch: u64,
}

/// A completion whose `Done` has not been acked by the master yet;
/// the bidder retransmits it on a backoff schedule until the
/// [`ToWorker::AckDone`] arrives. At-least-once on the wire,
/// exactly-once in effect (the master dedups by job id).
struct PendingDone {
    job: Job,
    wait_secs: f64,
    fetch_secs: f64,
    proc_secs: f64,
    next: Instant,
    attempt: u32,
}

/// Worker half of the `Done` reliability loop, shared between the
/// executor (which registers completions) and the bidder (which
/// retransmits them).
struct DoneRelay {
    retry: RetryPolicy,
    seed: u64,
    pending: Arc<Mutex<Vec<PendingDone>>>,
}

/// Per-(worker, job) jitter seed for `Done` retransmission backoff.
fn done_retry_seed(seed: u64, job: JobId) -> u64 {
    seed.wrapping_add(job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Spawn one worker's bidder + executor threads.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_worker(
    id: u32,
    shared: Arc<Mutex<WorkerShared>>,
    rx_control: Receiver<ToWorker>,
    to_master: Sender<ToMaster>,
    protocol: Protocol,
    time_scale: f64,
    noise: NoiseModel,
    speed_learning: bool,
    seed: u64,
    metrics: RuntimeMetrics,
    // Chaos hook: maximum extra real-time delay before answering a
    // bid request (seeded, uniform). `Duration::ZERO` disables.
    bid_delay: Duration,
    // Reliability layer (net-fault runs): ack placements, dedup
    // retransmitted deliveries, resend unacked `Done`s and heartbeat
    // idleness. `None` leaves the worker exactly as before.
    reliability: Option<RetryPolicy>,
    // Replicated data plane: peer-aware bid pricing and worker→worker
    // fetches. `None` keeps the historic master-fetch path.
    repl: Option<Arc<Mutex<ReplState>>>,
) -> WorkerThreads {
    let (tx_exec, rx_exec) = crossbeam_channel::unbounded::<ExecItem>();
    let virt = move |v: f64| Duration::from_secs_f64((v * time_scale).max(0.0));
    let pending: Arc<Mutex<Vec<PendingDone>>> = Arc::new(Mutex::new(Vec::new()));

    // ---------------- bidder thread ----------------
    let bidder = {
        let shared = Arc::clone(&shared);
        let to_master = to_master.clone();
        let tx_exec = tx_exec.clone();
        let metrics = metrics.clone();
        let pending = Arc::clone(&pending);
        let repl = repl.clone();
        std::thread::Builder::new()
            .name(format!("bidder-{id}"))
            .spawn(move || {
                let mut delay_rng = RngStream::from_seed(seed ^ 0xB1D_DE1A);
                // Reliability state, all scoped to the current
                // incarnation (cleared on an epoch change): placement
                // seq → accepted?, so retransmitted deliveries replay
                // their outcome; job-id-level accept memory, so a
                // re-placement after a lost ack is confirmed without
                // a second execution.
                let mut placements: HashMap<u64, bool> = HashMap::new();
                let mut accepted_jobs: HashSet<JobId> = HashSet::new();
                let mut seen_epoch = u64::MAX;
                let tick = reliability.map(|r| virt(r.base_secs).max(Duration::from_millis(1)));
                loop {
                    let msg = match tick {
                        Some(t) => match rx_control.recv_timeout(t) {
                            Ok(m) => Some(m),
                            Err(RecvTimeoutError::Timeout) => None,
                            Err(RecvTimeoutError::Disconnected) => break,
                        },
                        None => match rx_control.recv() {
                            Ok(m) => Some(m),
                            Err(_) => break,
                        },
                    };
                    // Retransmit completions the master has not acked
                    // yet (at-least-once `Done`; unbounded attempts —
                    // past the configured max the backoff stays at
                    // its cap).
                    if let Some(r) = reliability {
                        let now = Instant::now();
                        let mut p = pending.lock();
                        for d in p.iter_mut() {
                            if d.next > now {
                                continue;
                            }
                            metrics.net_retries.inc();
                            let _ = to_master.send(ToMaster::Done {
                                worker: id,
                                job: d.job.clone(),
                                wait_secs: d.wait_secs,
                                fetch_secs: d.fetch_secs,
                                proc_secs: d.proc_secs,
                            });
                            d.attempt += 1;
                            let capped = d.attempt.min(r.max_attempts.saturating_sub(1));
                            let delay = r
                                .delay_secs(done_retry_seed(seed, d.job.id), capped)
                                .unwrap_or(r.cap_secs);
                            d.next = now + virt(delay);
                        }
                    }
                    let Some(msg) = msg else { continue };
                    match msg {
                        ToWorker::Shutdown => break,
                        ToWorker::BidRequest(job) => {
                            // A crashed worker is silent: the request
                            // simply goes unanswered and the contest
                            // resolves by timeout.
                            let est = {
                                let s = shared.lock();
                                if !s.alive {
                                    continue;
                                }
                                let mut est = s.estimate_secs(&job, speed_learning);
                                // Replica-aware pricing: a worker that
                                // would fetch from a live peer replica
                                // bids the cheaper intra-cluster
                                // transfer, spreading locality pressure
                                // over the whole replica set.
                                if let (Some(rp), Some(r)) = (repl.as_ref(), job.resource) {
                                    if !s.store.peek(r.id) {
                                        let rp = rp.lock();
                                        if !rp.peer_sources(r.id, id).is_empty() {
                                            let fetch = s
                                                .believed_net(speed_learning)
                                                .time_for(r.bytes)
                                                .as_secs_f64();
                                            est -=
                                                fetch * (1.0 - 1.0 / rp.cfg.peer_bandwidth_scale);
                                        }
                                    }
                                }
                                est
                            };
                            if bid_delay > Duration::ZERO {
                                // Chaos: think about it for a while —
                                // some bids now genuinely race the
                                // contest window.
                                std::thread::sleep(bid_delay.mul_f64(delay_rng.uniform(0.0, 1.0)));
                            }
                            let _ = to_master.send(ToMaster::Bid {
                                worker: id,
                                job: job.id,
                                estimate_secs: est,
                            });
                        }
                        ToWorker::Offer { job, seq } => {
                            let (accept, est, epoch) = {
                                let mut s = shared.lock();
                                if !s.alive {
                                    continue;
                                }
                                if reliability.is_some() {
                                    if s.epoch != seen_epoch {
                                        seen_epoch = s.epoch;
                                        placements.clear();
                                        accepted_jobs.clear();
                                    }
                                    match placements.get(&seq) {
                                        // Retransmitted/duplicated
                                        // delivery: replay the recorded
                                        // outcome, don't re-run the
                                        // policy (no double-insert, no
                                        // double-reject).
                                        Some(true) => {
                                            drop(s);
                                            let _ = to_master.send(ToMaster::AckAssign {
                                                worker: id,
                                                job: job.id,
                                                seq,
                                            });
                                            continue;
                                        }
                                        Some(false) => {
                                            drop(s);
                                            let _ = to_master.send(ToMaster::Reject {
                                                worker: id,
                                                job,
                                                seq,
                                            });
                                            continue;
                                        }
                                        None => {}
                                    }
                                    if accepted_jobs.contains(&job.id) {
                                        // A lost ack bounced the job
                                        // back to us under a new seq:
                                        // confirm the placement, the
                                        // queued copy runs once.
                                        placements.insert(seq, true);
                                        drop(s);
                                        let _ = to_master.send(ToMaster::AckAssign {
                                            worker: id,
                                            job: job.id,
                                            seq,
                                        });
                                        continue;
                                    }
                                }
                                let accept = s.has_data(&job) || s.declined.contains(&job.id);
                                if accept {
                                    let est = s.marginal_cost_secs(&job, speed_learning);
                                    s.committed_secs += est;
                                    (true, est, s.epoch)
                                } else {
                                    s.declined.insert(job.id);
                                    (false, 0.0, s.epoch)
                                }
                            };
                            if accept {
                                if reliability.is_some() {
                                    placements.insert(seq, true);
                                    accepted_jobs.insert(job.id);
                                    let _ = to_master.send(ToMaster::AckAssign {
                                        worker: id,
                                        job: job.id,
                                        seq,
                                    });
                                }
                                metrics.assignments.inc();
                                let _ = tx_exec.send(ExecItem {
                                    job,
                                    est_secs: est,
                                    enqueued: Instant::now(),
                                    epoch,
                                });
                            } else {
                                if reliability.is_some() {
                                    placements.insert(seq, false);
                                }
                                let _ = to_master.send(ToMaster::Reject {
                                    worker: id,
                                    job,
                                    seq,
                                });
                            }
                        }
                        ToWorker::Assign { job, seq } => {
                            let (est, epoch) = {
                                let mut s = shared.lock();
                                if !s.alive {
                                    continue;
                                }
                                if reliability.is_some() {
                                    if s.epoch != seen_epoch {
                                        seen_epoch = s.epoch;
                                        placements.clear();
                                        accepted_jobs.clear();
                                    }
                                    if placements.contains_key(&seq)
                                        || accepted_jobs.contains(&job.id)
                                    {
                                        // Duplicate delivery or a
                                        // re-placement of a job we
                                        // already hold: re-ack only.
                                        placements.insert(seq, true);
                                        drop(s);
                                        let _ = to_master.send(ToMaster::AckAssign {
                                            worker: id,
                                            job: job.id,
                                            seq,
                                        });
                                        continue;
                                    }
                                }
                                let est = s.marginal_cost_secs(&job, speed_learning);
                                s.committed_secs += est;
                                (est, s.epoch)
                            };
                            if reliability.is_some() {
                                placements.insert(seq, true);
                                accepted_jobs.insert(job.id);
                                let _ = to_master.send(ToMaster::AckAssign {
                                    worker: id,
                                    job: job.id,
                                    seq,
                                });
                            }
                            metrics.assignments.inc();
                            let _ = tx_exec.send(ExecItem {
                                job,
                                est_secs: est,
                                enqueued: Instant::now(),
                                epoch,
                            });
                        }
                        ToWorker::AckDone(job_id) => {
                            pending.lock().retain(|d| d.job.id != job_id);
                        }
                    }
                }
            })
            .expect("spawn bidder")
    };

    // ---------------- executor thread ----------------
    let executor = std::thread::Builder::new()
        .name(format!("exec-{id}"))
        .spawn(move || {
            drop(tx_exec); // executor only receives
            let mut rng = RngStream::from_seed(seed);
            let mut net_noise = noise.sampler();
            let mut rw_noise = noise.sampler();
            let relay = reliability.map(|retry| DoneRelay {
                retry,
                seed,
                pending,
            });
            // Periodic idle re-announcement under the reliability
            // layer: a dropped `Idle` must only delay the pull loop,
            // not stall it for good.
            let heartbeat =
                reliability.map(|r| virt(r.heartbeat_secs).max(Duration::from_millis(5)));
            // Announce initial idleness (the first pull).
            let _ = to_master.send(ToMaster::Idle { worker: id });
            loop {
                let item = match heartbeat {
                    Some(hb) => match rx_exec.recv_timeout(hb) {
                        Ok(i) => i,
                        Err(RecvTimeoutError::Timeout) => {
                            let alive = shared.lock().alive;
                            if alive && rx_exec.is_empty() {
                                let _ = to_master.send(ToMaster::Idle { worker: id });
                            }
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    },
                    None => match rx_exec.recv() {
                        Ok(i) => i,
                        Err(_) => break,
                    },
                };
                // A crash bumps the epoch: anything accepted by the
                // previous incarnation is the dead instance's queue
                // and evaporates here.
                {
                    let s = shared.lock();
                    if !s.alive || s.epoch != item.epoch {
                        continue;
                    }
                }
                let wait_secs = item.enqueued.elapsed().as_secs_f64() / time_scale.max(1e-12);
                metrics.queue_wait_secs.record(wait_secs);
                let completed = execute_one(
                    id,
                    &shared,
                    &to_master,
                    item.job,
                    item.est_secs,
                    item.epoch,
                    wait_secs,
                    time_scale,
                    &mut net_noise,
                    &mut rw_noise,
                    &mut rng,
                    &metrics,
                    relay.as_ref(),
                    repl.as_ref(),
                );
                if completed && rx_exec.is_empty() {
                    let _ = to_master.send(ToMaster::Idle { worker: id });
                }
            }
            let _ = protocol; // protocol differences live master-side + in Offer handling
        })
        .expect("spawn executor");

    WorkerThreads { bidder, executor }
}

/// Execute one job. Returns `false` if the worker crashed mid-job
/// (epoch moved on): the job is abandoned without a completion — the
/// master's detection machinery will redistribute it.
#[allow(clippy::too_many_arguments)]
fn execute_one(
    id: u32,
    shared: &Arc<Mutex<WorkerShared>>,
    to_master: &Sender<ToMaster>,
    job: Job,
    est_secs: f64,
    epoch: u64,
    wait_secs: f64,
    time_scale: f64,
    net_noise: &mut NoiseSampler,
    rw_noise: &mut NoiseSampler,
    rng: &mut RngStream,
    metrics: &RuntimeMetrics,
    relay: Option<&DoneRelay>,
    repl: Option<&Arc<Mutex<ReplState>>>,
) -> bool {
    let stale = |s: &WorkerShared| !s.alive || s.epoch != epoch;
    // ---- fetch phase ----
    let mut fetch_secs = 0.0;
    let mut fetched = false;
    let miss = {
        let mut s = shared.lock();
        if stale(&s) {
            return false;
        }
        match job.resource {
            Some(r) => {
                let now = s.vclock;
                !s.store.lookup(r.id, now)
            }
            None => false,
        }
    };
    if miss {
        let r = job.resource.expect("miss implies a resource");
        fetched = true;
        if let Some(rp) = repl {
            // Replicated data plane: rotate over live peer replicas
            // with timeout + backoff, degrading to a master fetch.
            match peer_fetch(
                id, shared, rp, &job, r, epoch, time_scale, net_noise, rng, metrics,
            ) {
                Some(secs) => fetch_secs = secs,
                None => return false,
            }
        } else {
            let secs = {
                let mut s = shared.lock();
                if stale(&s) {
                    return false;
                }
                let m = net_noise.sample(rng);
                let speed = s.spec.net.scaled(m);
                let secs = speed.time_for(r.bytes).as_secs_f64();
                if secs > 0.0 {
                    let mbps = r.bytes as f64 / 1e6 / secs;
                    s.net_tracker.observe(mbps);
                }
                secs
            };
            if secs > 0.0 {
                sleep_virtual(secs, time_scale);
            }
            let mut s = shared.lock();
            if stale(&s) {
                // Crashed during the transfer: the bytes never landed.
                return false;
            }
            let now = s.vclock + crossbid_simcore::SimDuration::from_secs_f64(secs);
            s.store.insert(r.id, r.bytes, now);
            fetch_secs = secs;
        }
    }

    // ---- processing phase ----
    let proc_secs = {
        let mut s = shared.lock();
        if stale(&s) {
            return false;
        }
        let m = rw_noise.sample(rng);
        let rw = s.spec.rw.scaled(m);
        let scan = rw.time_for(job.work_bytes).as_secs_f64();
        if job.work_bytes > 0 && scan > 0.0 {
            s.rw_tracker.observe(job.work_bytes as f64 / 1e6 / scan);
        }
        scan * s.spec.cpu_factor + job.cpu_secs * s.spec.cpu_factor
    };
    if proc_secs > 0.0 {
        sleep_virtual(proc_secs, time_scale);
    }

    // ---- bookkeeping + completion ----
    {
        let mut s = shared.lock();
        if stale(&s) {
            // Crashed during processing: the result dies with the
            // instance, no completion is reported.
            return false;
        }
        s.committed_secs = (s.committed_secs - est_secs).max(0.0);
        s.busy_secs += fetch_secs + proc_secs;
        s.vclock += crossbid_simcore::SimDuration::from_secs_f64(fetch_secs + proc_secs);
    }
    if fetched {
        // One fetch-histogram sample per actual transfer, mirroring
        // the engine's per-FetchDone recording (count == misses).
        metrics.fetch_secs.record(fetch_secs);
    }
    metrics.proc_secs.record(proc_secs);
    if let Some(rel) = relay {
        // Keep a copy for retransmission until the master acks the
        // completion: the `Done` below crosses a lossy link.
        let d = rel
            .retry
            .delay_secs(done_retry_seed(rel.seed, job.id), 0)
            .unwrap_or(rel.retry.base_secs);
        rel.pending.lock().push(PendingDone {
            job: job.clone(),
            wait_secs,
            fetch_secs,
            proc_secs,
            next: Instant::now() + Duration::from_secs_f64((d * time_scale).max(0.0)),
            attempt: 0,
        });
    }
    let _ = to_master.send(ToMaster::Done {
        worker: id,
        job,
        wait_secs,
        fetch_secs,
        proc_secs,
    });
    true
}

/// One step of the peer-fetch protocol, decided under both locks.
enum FetchStep {
    /// Transfer from peer `from`: either the bytes arrive after
    /// `secs`, or the attempt is `lost` and the worker notices via
    /// `timeout_secs`.
    Peer {
        from: u32,
        secs: f64,
        lost: bool,
        timeout_secs: f64,
    },
    /// Degraded master fetch (no live replica, or budget spent):
    /// always succeeds at nominal link speed.
    Master { secs: f64 },
}

/// Resolve a cache miss through the replicated data plane: rotate
/// over live replica holders with deterministic loss sampling, a
/// timeout + seeded backoff between attempts, and a degraded master
/// fetch once the attempt budget is spent or no replica is live.
///
/// Returns the total virtual seconds the resolution took (timeouts
/// and backoffs included), or `None` if the worker crashed mid-fetch.
#[allow(clippy::too_many_arguments)]
fn peer_fetch(
    id: u32,
    shared: &Arc<Mutex<WorkerShared>>,
    repl: &Arc<Mutex<ReplState>>,
    job: &Job,
    r: ResourceRef,
    epoch: u64,
    time_scale: f64,
    net_noise: &mut NoiseSampler,
    rng: &mut RngStream,
    metrics: &RuntimeMetrics,
) -> Option<f64> {
    let stale = |s: &WorkerShared| !s.alive || s.epoch != epoch;
    let mut total = 0.0;
    let mut attempt = 0u32;
    loop {
        // Source choice, loss sample and the `fetch_req` journal entry
        // happen in one critical section, so the committed log never
        // shows a fetch from a source that was already dropped.
        let step = {
            let mut s = shared.lock();
            if stale(&s) {
                return None;
            }
            let mut rp = repl.lock();
            rp.apply_pin_ops(id, &mut s.store);
            let sources = rp.peer_sources(r.id, id);
            if sources.is_empty() || attempt >= rp.cfg.max_fetch_attempts {
                let m = net_noise.sample(rng);
                let speed = s.spec.net.scaled(m);
                let secs = speed.time_for(r.bytes).as_secs_f64();
                if secs > 0.0 {
                    let mbps = r.bytes as f64 / 1e6 / secs;
                    s.net_tracker.observe(mbps);
                }
                FetchStep::Master { secs }
            } else {
                let from = sources[attempt as usize % sources.len()];
                rp.journal.push((
                    id,
                    Some(job.id),
                    crate::trace::SchedEventKind::FetchReq {
                        object: r.id.0,
                        from: WorkerId(from),
                    },
                ));
                let lost = rp.link_blocked(from, id) || rp.peer_lost(r.id, id, attempt);
                let m = net_noise.sample(rng);
                let speed = s.spec.net.scaled(m);
                FetchStep::Peer {
                    from,
                    secs: speed.time_for(r.bytes).as_secs_f64() / rp.cfg.peer_bandwidth_scale,
                    lost,
                    timeout_secs: rp.cfg.fetch_timeout_secs,
                }
            }
        };
        match step {
            FetchStep::Master { secs } => {
                if secs > 0.0 {
                    sleep_virtual(secs, time_scale);
                }
                total += secs;
                let mut s = shared.lock();
                if stale(&s) {
                    return None;
                }
                let mut rp = repl.lock();
                rp.apply_pin_ops(id, &mut s.store);
                let now = s.vclock + crossbid_simcore::SimDuration::from_secs_f64(total);
                let evicted = s.store.insert(r.id, r.bytes, now);
                rp.note_insert(id, &s.store, r.id, r.bytes, evicted);
                return Some(total);
            }
            FetchStep::Peer {
                from,
                secs,
                lost,
                timeout_secs,
            } => {
                if lost {
                    // The transfer is lost in flight; the worker
                    // notices via timeout, records the failure and
                    // backs off before rotating to the next replica.
                    sleep_virtual(timeout_secs, time_scale);
                    total += timeout_secs;
                    metrics.peer_retries.inc();
                    let backoff = {
                        let s = shared.lock();
                        if stale(&s) {
                            return None;
                        }
                        let mut rp = repl.lock();
                        rp.journal.push((
                            id,
                            Some(job.id),
                            crate::trace::SchedEventKind::FetchFail {
                                object: r.id.0,
                                from: WorkerId(from),
                                attempt,
                            },
                        ));
                        rp.fetch_backoff_secs(job.id, r.id, attempt)
                    };
                    sleep_virtual(backoff, time_scale);
                    total += backoff;
                    attempt += 1;
                    continue;
                }
                sleep_virtual(secs, time_scale);
                total += secs;
                let mut s = shared.lock();
                if stale(&s) {
                    return None;
                }
                let mut rp = repl.lock();
                rp.apply_pin_ops(id, &mut s.store);
                rp.journal.push((
                    id,
                    Some(job.id),
                    crate::trace::SchedEventKind::FetchOk {
                        object: r.id.0,
                        from: WorkerId(from),
                    },
                ));
                // The lookup counted a cold miss; the bytes came from
                // a peer, so reclassify it.
                s.store.note_peer_fetch();
                let now = s.vclock + crossbid_simcore::SimDuration::from_secs_f64(total);
                let evicted = s.store.insert(r.id, r.bytes, now);
                rp.note_insert(id, &s.store, r.id, r.bytes, evicted);
                return Some(total);
            }
        }
    }
}

fn sleep_virtual(virtual_secs: f64, time_scale: f64) {
    let real = virtual_secs * time_scale;
    if real > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(real.min(30.0)));
    }
}
