//! The threaded master: job injection, scheduling, completion routing.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crossbid_metrics::{RunRecord, SchedulerKind};
use crossbid_net::NoiseModel;
use crossbid_simcore::{RngStream, SeedSequence, Welford};
use parking_lot::Mutex;

use crate::engine::RunMeta;
use crate::job::{Arrival, Job, JobId, JobSpec, WorkerId};
use crate::task::TaskCtx;
use crate::worker::WorkerSpec;
use crate::workflow::Workflow;

use super::worker::{spawn_worker, Protocol, WorkerShared};
use super::{ToMaster, ToWorker};

/// Which allocation protocol the threaded runtime runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThreadedScheduler {
    /// The Bidding Scheduler with the given contest window in
    /// *virtual* seconds (the paper's 1 s).
    Bidding {
        /// Contest window, virtual seconds.
        window_secs: f64,
    },
    /// The Crossflow Baseline (pull + reject-once).
    Baseline,
}

/// Configuration of the threaded runtime.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Real seconds per virtual second. The default `1e-3` compresses
    /// the paper's ~3500 s MSR runs into a few real seconds.
    pub time_scale: f64,
    /// Noise scheme on actual speeds.
    pub noise: NoiseModel,
    /// §6.4 speed learning (historic averages); the non-simulated
    /// experiments have it on.
    pub speed_learning: bool,
    /// The protocol under test.
    pub scheduler: ThreadedScheduler,
    /// Root seed (workload noise etc.).
    pub seed: u64,
    /// Floor on the *real* duration of a bidding window. Aggressive
    /// time compression can shrink the scaled window below OS
    /// scheduling jitter, making every contest "time out" before the
    /// bids physically arrive; the floor keeps the contest mechanism
    /// meaningful under compression. Contests still normally close on
    /// the full bid set long before either limit.
    pub min_real_window: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            time_scale: 1e-3,
            noise: NoiseModel::evaluation_default(),
            speed_learning: true,
            scheduler: ThreadedScheduler::Bidding { window_secs: 1.0 },
            seed: 0,
            min_real_window: Duration::from_millis(2),
        }
    }
}

struct Contest {
    job: Job,
    bids: Vec<(u32, f64)>,
    deadline: Instant,
}

struct MasterState {
    // Bidding. Contests run one at a time: a burst of simultaneous
    // contests would let one worker win them all with the same stale
    // backlog (its bids cannot reflect wins it has not learned about
    // yet). Serializing matches Listing 1's per-job contest and lets
    // each Assign reach the winner's bidder (FIFO channel) before the
    // next contest's bid request does.
    contests: HashMap<JobId, Contest>,
    contest_queue: VecDeque<Job>,
    timed_out: u64,
    fallback: u64,
    // Baseline.
    ready: VecDeque<Job>,
    idle: VecDeque<u32>,
    // Common.
    created: u64,
    completed: u64,
    control_messages: u64,
    next_job_id: u64,
}

impl MasterState {
    fn alloc_id(&mut self) -> JobId {
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        id
    }
}

/// Run `arrivals` through `workflow` on real threads. Returns the run
/// record with the same §6.1 metrics as the simulation engine.
///
/// Unlike the simulated engine this function is *not* deterministic:
/// thread interleavings, late bids and real queueing are part of what
/// it measures (§6.4's role in the paper).
pub fn run_threaded(
    specs: &[WorkerSpec],
    cfg: &ThreadedConfig,
    workflow: &mut Workflow,
    arrivals: Vec<Arrival>,
    meta: &RunMeta,
) -> RunRecord {
    assert!(!specs.is_empty(), "need at least one worker");
    assert!(cfg.time_scale > 0.0, "time_scale must be positive");
    let n = specs.len();
    let protocol = match cfg.scheduler {
        ThreadedScheduler::Bidding { .. } => Protocol::Bidding,
        ThreadedScheduler::Baseline => Protocol::Baseline,
    };
    let seq = SeedSequence::new(cfg.seed);
    let mut rng_master = seq.stream(1);

    let (to_master_tx, to_master_rx): (Sender<ToMaster>, Receiver<ToMaster>) = unbounded();
    let mut worker_txs: Vec<Sender<ToWorker>> = Vec::with_capacity(n);
    let mut shareds: Vec<Arc<Mutex<WorkerShared>>> = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (i, spec) in specs.iter().enumerate() {
        let (tx, rx) = unbounded::<ToWorker>();
        let shared = Arc::new(Mutex::new(WorkerShared::new(spec.clone())));
        let worker_noise = spec
            .noise_override
            .clone()
            .unwrap_or_else(|| cfg.noise.clone());
        let threads = spawn_worker(
            i as u32,
            Arc::clone(&shared),
            rx,
            to_master_tx.clone(),
            protocol,
            cfg.time_scale,
            worker_noise,
            cfg.speed_learning,
            seq.seed_for(100 + i as u64),
        );
        worker_txs.push(tx);
        shareds.push(shared);
        handles.push(threads);
    }
    drop(to_master_tx);

    let start = Instant::now();
    let virt = |v: f64| Duration::from_secs_f64((v * cfg.time_scale).max(0.0));
    // Arrival schedule in real time.
    let mut pending_arrivals: VecDeque<(Instant, JobSpec)> = arrivals
        .into_iter()
        .map(|a| (start + virt(a.at.as_secs_f64()), a.spec))
        .collect();
    let total_arrivals = pending_arrivals.len() as u64;
    let mut arrivals_seen = 0u64;

    let mut st = MasterState {
        contests: HashMap::new(),
        contest_queue: VecDeque::new(),
        timed_out: 0,
        fallback: 0,
        ready: VecDeque::new(),
        idle: VecDeque::new(),
        created: 0,
        completed: 0,
        control_messages: 0,
        next_job_id: 0,
    };
    let mut wait_stats = Welford::new();
    let mut last_completion = start;

    // Open the next queued contest if none is running.
    let open_next_contest = |st: &mut MasterState, txs: &[Sender<ToWorker>], window_secs: f64| {
        if !st.contests.is_empty() {
            return;
        }
        let Some(job) = st.contest_queue.pop_front() else {
            return;
        };
        let deadline = Instant::now() + virt(window_secs).max(cfg.min_real_window);
        for w in 0..txs.len() as u32 {
            st.control_messages += 1;
            let _ = txs[w as usize].send(ToWorker::BidRequest(job.clone()));
        }
        st.contests.insert(
            job.id,
            Contest {
                job,
                bids: Vec::new(),
                deadline,
            },
        );
    };

    // Dispatch a new job according to the protocol.
    let dispatch = |st: &mut MasterState,
                    txs: &[Sender<ToWorker>],
                    cfg: &ThreadedConfig,
                    job: Job| match cfg.scheduler {
        ThreadedScheduler::Bidding { window_secs } => {
            st.contest_queue.push_back(job);
            open_next_contest(st, txs, window_secs);
        }
        ThreadedScheduler::Baseline => {
            st.ready.push_back(job);
        }
    };

    let baseline_pump = |st: &mut MasterState, txs: &[Sender<ToWorker>]| {
        while !st.ready.is_empty() && !st.idle.is_empty() {
            let job = st.ready.pop_front().expect("non-empty");
            let w = st.idle.pop_front().expect("non-empty");
            st.control_messages += 1;
            let _ = txs[w as usize].send(ToWorker::Offer(job));
        }
    };

    let close_contest = |st: &mut MasterState,
                         txs: &[Sender<ToWorker>],
                         rng: &mut RngStream,
                         id: JobId,
                         timed_out: bool| {
        let Some(c) = st.contests.remove(&id) else {
            return;
        };
        if timed_out {
            st.timed_out += 1;
        }
        let winner = c
            .bids
            .iter()
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .map(|(w, _)| *w);
        let w = match winner {
            Some(w) => w,
            None => {
                st.fallback += 1;
                rng.below(txs.len() as u64) as u32
            }
        };
        st.control_messages += 1;
        let _ = txs[w as usize].send(ToWorker::Assign(c.job));
    };

    let window_secs = match cfg.scheduler {
        ThreadedScheduler::Bidding { window_secs } => window_secs,
        ThreadedScheduler::Baseline => 0.0,
    };

    loop {
        // Fire due arrivals.
        let now = Instant::now();
        while pending_arrivals.front().is_some_and(|(at, _)| *at <= now) {
            let (_, spec) = pending_arrivals.pop_front().expect("non-empty");
            arrivals_seen += 1;
            let id = st.alloc_id();
            st.created += 1;
            dispatch(&mut st, &worker_txs, cfg, spec.into_job(id));
        }
        baseline_pump(&mut st, &worker_txs);
        // Close expired contests.
        let due: Vec<JobId> = st
            .contests
            .iter()
            .filter(|(_, c)| c.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            close_contest(&mut st, &worker_txs, &mut rng_master, id, true);
        }
        open_next_contest(&mut st, &worker_txs, window_secs);

        // Are we done?
        if arrivals_seen == total_arrivals && st.created > 0 && st.completed == st.created {
            break;
        }
        if total_arrivals == 0 {
            break;
        }

        // Wait for the next event.
        let next_deadline = pending_arrivals
            .front()
            .map(|(at, _)| *at)
            .into_iter()
            .chain(st.contests.values().map(|c| c.deadline))
            .min();
        let msg = match next_deadline {
            Some(d) => match to_master_rx.recv_deadline(d) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match to_master_rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break,
            },
        };
        let Some(msg) = msg else { continue };
        match msg {
            ToMaster::Bid {
                worker,
                job,
                estimate_secs,
            } => {
                st.control_messages += 1;
                let full = if let Some(c) = st.contests.get_mut(&job) {
                    if !c.bids.iter().any(|(w, _)| *w == worker) {
                        c.bids.push((worker, estimate_secs));
                    }
                    c.bids.len() >= n
                } else {
                    false
                };
                if full {
                    close_contest(&mut st, &worker_txs, &mut rng_master, job, false);
                    open_next_contest(&mut st, &worker_txs, window_secs);
                }
            }
            ToMaster::Reject { worker, job } => {
                st.control_messages += 1;
                if !st.idle.contains(&worker) {
                    st.idle.push_back(worker);
                }
                st.ready.push_front(job);
                baseline_pump(&mut st, &worker_txs);
            }
            ToMaster::Idle { worker } => {
                st.control_messages += 1;
                if !st.idle.contains(&worker) {
                    st.idle.push_back(worker);
                }
                baseline_pump(&mut st, &worker_txs);
            }
            ToMaster::Done {
                worker,
                job,
                wait_secs,
            } => {
                st.control_messages += 1;
                st.completed += 1;
                last_completion = Instant::now();
                wait_stats.push(wait_secs.max(0.0));
                let mut out: Vec<JobSpec> = Vec::new();
                let ctx = TaskCtx {
                    now: crossbid_simcore::SimTime::from_secs_f64(
                        start.elapsed().as_secs_f64() / cfg.time_scale,
                    ),
                    worker: WorkerId(worker),
                };
                workflow.logic_mut(job.task).process(&job, &ctx, &mut out);
                for spec in out {
                    let id = st.alloc_id();
                    st.created += 1;
                    dispatch(&mut st, &worker_txs, cfg, spec.into_job(id));
                }
                baseline_pump(&mut st, &worker_txs);
            }
        }
    }

    // Shutdown and join.
    for tx in &worker_txs {
        let _ = tx.send(ToWorker::Shutdown);
    }
    drop(worker_txs);
    for h in handles {
        let _ = h.bidder.join();
        let _ = h.executor.join();
    }

    let makespan_secs = last_completion
        .saturating_duration_since(start)
        .as_secs_f64()
        / cfg.time_scale;
    let mut misses = 0;
    let mut hits = 0;
    let mut evictions = 0;
    let mut bytes = 0u64;
    let mut busy = Vec::with_capacity(n);
    for s in &shareds {
        let s = s.lock();
        let st2 = s.store.stats();
        misses += st2.misses;
        hits += st2.hits;
        evictions += st2.evictions;
        bytes += st2.bytes_admitted;
        busy.push(if makespan_secs > 0.0 {
            (s.busy_secs / makespan_secs).min(1.0)
        } else {
            0.0
        });
    }

    RunRecord {
        scheduler: match cfg.scheduler {
            ThreadedScheduler::Bidding { .. } => SchedulerKind::Bidding,
            ThreadedScheduler::Baseline => SchedulerKind::Baseline,
        },
        worker_config: meta.worker_config.clone(),
        job_config: meta.job_config.clone(),
        iteration: meta.iteration,
        seed: meta.seed,
        makespan_secs,
        data_load_mb: bytes as f64 / 1e6,
        cache_misses: misses,
        cache_hits: hits,
        evictions,
        jobs_completed: st.completed,
        control_messages: st.control_messages,
        contests_timed_out: st.timed_out,
        contests_fallback: st.fallback,
        mean_queue_wait_secs: wait_stats.mean(),
        worker_busy_frac: busy,
    }
}
