//! The threaded master: job injection, scheduling, completion routing,
//! and — mirroring the simulation engine — fault injection with
//! detection-delayed redistribution.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crossbid_metrics::{Registry, RunRecord, SchedulerKind};
use crossbid_net::NoiseModel;
use crossbid_simcore::{RngStream, SeedSequence, SimDuration, SimTime, Welford};
use parking_lot::Mutex;

use crossbid_storage::ObjectId;

use crate::atomize::{AtomizeConfig, DagState, DoneOutcome};
use crate::engine::{ReplicationConfig, RunMeta, RunOutput};
use crate::faults::{
    FaultEvent, FaultPlan, MasterFaultPlan, MembershipAction, MembershipEvent, MembershipPlan,
    NetFaultPlan,
};
use crate::idle::IdlePool;
use crate::job::{Arrival, Job, JobId, JobSpec, ShardId, WorkerId};
use crate::obs::RuntimeMetrics;
use crate::replog::{AppendOutcome, ReplicatedLog};
use crate::task::TaskCtx;
use crate::trace::{SchedEvent, SchedEventKind, Trace, TraceEvent, TraceKind};
use crate::worker::WorkerSpec;
use crate::workflow::Workflow;

use super::chaos::{ChaosConfig, Intake, NetIntake, ProtocolMutation};
use super::repl::{peer_dropped, ReplState, REPAIR_ATTEMPT_KEY};
use super::worker::{spawn_worker, Protocol, WorkerShared};
use super::{ToMaster, ToWorker};

/// Which allocation protocol the threaded runtime runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThreadedScheduler {
    /// The Bidding Scheduler with the given contest window in
    /// *virtual* seconds (the paper's 1 s).
    Bidding {
        /// Contest window, virtual seconds.
        window_secs: f64,
    },
    /// The Crossflow Baseline (pull + reject-once).
    Baseline,
}

/// Configuration of the threaded runtime.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Real seconds per virtual second. The default `1e-3` compresses
    /// the paper's ~3500 s MSR runs into a few real seconds.
    pub time_scale: f64,
    /// Noise scheme on actual speeds.
    pub noise: NoiseModel,
    /// §6.4 speed learning (historic averages); the non-simulated
    /// experiments have it on.
    pub speed_learning: bool,
    /// The protocol under test.
    pub scheduler: ThreadedScheduler,
    /// Root seed (workload noise etc.).
    pub seed: u64,
    /// Floor on the *real* duration of a bidding window. Aggressive
    /// time compression can shrink the scaled window below OS
    /// scheduling jitter, making every contest "time out" before the
    /// bids physically arrive; the floor keeps the contest mechanism
    /// meaningful under compression. Contests still normally close on
    /// the full bid set long before either limit.
    pub min_real_window: Duration,
    /// Scheduled worker crashes/recoveries, with the monitoring
    /// layer's detection delay. Instants are virtual seconds from run
    /// start, like arrivals. Default: no faults.
    pub faults: FaultPlan,
    /// Synthesize a per-job lifecycle [`Trace`] from the phase
    /// breakdowns workers report with each completion, matching the
    /// engine's trace vocabulary. The scheduler event log is always
    /// collected regardless.
    pub trace: bool,
    /// Shared metrics sink. When `None` the runtime collects into a
    /// private [`Registry`]; a snapshot is returned in
    /// [`RunOutput::metrics`] either way.
    pub metrics: Option<Registry>,
    /// Test-only seeded delivery-order perturbation of the master's
    /// intake (hold/reorder/duplicate). `None` delivers in arrival
    /// order, as before.
    pub chaos: Option<ChaosConfig>,
    /// Test-only reintroduction of one PR 1 protocol bug, for checker
    /// self-validation. Only effective under the `protocol-mutation`
    /// cargo feature; selecting a mutation without it panics at run
    /// start.
    pub mutation: ProtocolMutation,
    /// Lossy-link fault plan on the master↔worker channels. When
    /// inactive (the default) the reliability layer — acks, retries,
    /// leases, heartbeats — is fully disabled and the runtime behaves
    /// exactly as before.
    pub netfaults: NetFaultPlan,
    /// Scheduled *master* crashes at replicated-log append indices; an
    /// elected standby rebuilds the scheduler state in place by log
    /// replay (workers and channels keep running). Empty by default.
    pub master_faults: MasterFaultPlan,
    /// Elastic-membership schedule: deferred joins, graceful drains
    /// and administrative removals, mirroring the engine's semantics.
    /// Empty by default.
    pub membership: MembershipPlan,
    /// Home shard of this master: freshly allocated job ids carry it
    /// in their top bits. `ShardId(0)` reproduces the historical
    /// single-master ids bit-for-bit.
    pub shard: ShardId,
    /// Job atomization (task DAGs, per-task bidding, speculative
    /// straggler re-bidding — see [`crate::atomize`]). Consulted only
    /// for arrivals whose [`JobSpec::dag`] is set.
    pub atomize: AtomizeConfig,
    /// Replicated, self-healing data plane (replica registry, peer
    /// fetch, crash-triggered re-replication), mirroring the engine's
    /// semantics. Disabled by default.
    pub replication: ReplicationConfig,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            time_scale: 1e-3,
            noise: NoiseModel::evaluation_default(),
            speed_learning: true,
            scheduler: ThreadedScheduler::Bidding { window_secs: 1.0 },
            seed: 0,
            min_real_window: Duration::from_millis(2),
            faults: FaultPlan::none(),
            trace: false,
            metrics: None,
            chaos: None,
            mutation: ProtocolMutation::None,
            netfaults: NetFaultPlan::none(),
            master_faults: MasterFaultPlan::none(),
            membership: MembershipPlan::none(),
            shard: ShardId(0),
            atomize: AtomizeConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }
}

struct Contest {
    job: Job,
    bids: Vec<(u32, f64)>,
    opened: Instant,
    deadline: Instant,
}

/// A job handed to a worker whose completion has not come back yet.
/// The reliability fields are inert (seq 0, acked, no timers) unless a
/// [`NetFaultPlan`] is active.
struct Outstanding {
    job: Job,
    worker: u32,
    assigned_at: Instant,
    /// Placement sequence number stamped on the Assign/Offer.
    seq: u64,
    /// Was this placement delivered as a Baseline Offer (vs. Assign)?
    offer: bool,
    /// The worker confirmed receipt; retries and the lease stand down.
    acked: bool,
    /// Retransmissions sent so far.
    attempt: u32,
    /// Next retransmission instant; `None` once acked or exhausted.
    next_retry: Option<Instant>,
    /// Lease expiry: an unacked placement past this bounces back to
    /// the scheduler.
    lease_deadline: Option<Instant>,
}

/// Master→worker half of the lossy link plus the reliability-layer
/// sequencing state. Present only while a [`NetFaultPlan`] is active.
struct NetMaster {
    plan: NetFaultPlan,
    rng: RngStream,
    /// Messages the link has delayed: `(due, worker, msg)`. Drained
    /// by the main loop; the earliest due feeds the wait deadline.
    delayed: Vec<(Instant, u32, ToWorker)>,
}

struct MasterState {
    // Bidding. Contests run one at a time: a burst of simultaneous
    // contests would let one worker win them all with the same stale
    // backlog (its bids cannot reflect wins it has not learned about
    // yet). Serializing matches Listing 1's per-job contest and lets
    // each Assign reach the winner's bidder (FIFO channel) before the
    // next contest's bid request does.
    contests: HashMap<JobId, Contest>,
    contest_queue: VecDeque<Job>,
    timed_out: u64,
    fallback: u64,
    // Baseline.
    ready: VecDeque<Job>,
    idle: IdlePool,
    /// Who rejected a job last (Baseline): the next offer prefers a
    /// different idle worker when one exists.
    rejected_by: HashMap<JobId, u32>,
    // Fault masking. `known_live` is the master's *belief*: it only
    // flips to `false` once the detection delay has elapsed after a
    // crash, so for a while the master keeps scheduling against a
    // stale roster — exactly the masking window the contest timeout
    // covers. Deferred-join workers start out `false` and flip on
    // their membership event.
    known_live: Vec<bool>,
    /// Gracefully draining: still live (queued work finishes) but out
    /// of the allocation roster; new bids and idle pulls are ignored.
    draining: Vec<bool>,
    /// Permanently departed (drain completed, or removed outright):
    /// never returns, unlike a crashed worker awaiting recovery.
    departed: Vec<bool>,
    /// Assigned-but-unfinished jobs, for redistribution on failure.
    outstanding: HashMap<JobId, Outstanding>,
    /// Completed job ids: de-duplicates a redistribution racing a
    /// completion that was already in flight.
    done_ids: HashSet<JobId>,
    /// The scheduler log behind the replication discipline: every
    /// entry is quorum-committed before the master acts on it, and an
    /// elected standby rebuilds from it after a leader crash.
    log: ReplicatedLog,
    /// The leader crashed: decision closures stand down until the
    /// main loop runs the election + replay takeover.
    failover_pending: bool,
    /// Payloads of submitted-but-uncompleted jobs, kept only while
    /// master faults are armed so an elected standby can re-enter
    /// unplaced jobs (the log records ids, not payloads).
    job_payloads: HashMap<JobId, Job>,
    // Common.
    created: u64,
    completed: u64,
    /// Home shard stamped into freshly allocated job ids.
    shard: ShardId,
    next_job_id: u64,
    /// Next placement sequence number (reliability layer; starts at 1
    /// so 0 unambiguously means "layer off").
    next_seq: u64,
    /// Lossy-link state; `None` leaves every send untouched.
    net: Option<NetMaster>,
    /// Shared DAG bookkeeping for atomized jobs (gating, speculation,
    /// output crediting); inert unless an arrival carried a DAG.
    dag: DagState,
    /// Registry-backed tallies shared with the worker threads.
    m: RuntimeMetrics,
}

impl MasterState {
    fn alloc_id(&mut self) -> JobId {
        let id = JobId::in_shard(self.shard, self.next_job_id);
        self.next_job_id += 1;
        id
    }

    /// Id for an arriving spec: a router-preassigned federation id is
    /// honoured verbatim (local allocation moves to the spawn band so
    /// downstream jobs can never collide with it); otherwise a fresh
    /// shard-qualified id.
    fn intake_id(&mut self, spec: &JobSpec) -> JobId {
        match spec.origin {
            Some(o) => {
                self.next_job_id = self.next_job_id.max(JobId::SPAWN_BAND);
                o.id
            }
            None => self.alloc_id(),
        }
    }

    fn live_count(&self) -> usize {
        self.known_live.iter().filter(|l| **l).count()
    }

    /// May this worker be *allocated to*? Live and not draining.
    fn eligible(&self, w: u32) -> bool {
        self.known_live[w as usize] && !self.draining[w as usize]
    }

    fn eligible_count(&self) -> usize {
        (0..self.known_live.len() as u32)
            .filter(|w| self.eligible(*w))
            .count()
    }

    /// Commit one scheduler event through the replicated log; returns
    /// `true` when the caller may act on it. A `false` return means
    /// the entry was truncated with the crashing leader — the decision
    /// must perform no side effects. Either crash outcome arms
    /// `failover_pending`.
    fn commit(&mut self, ev: SchedEvent) -> bool {
        match self.log.append(ev) {
            AppendOutcome::Committed => true,
            AppendOutcome::LeaderCrashed { truncated } => {
                self.failover_pending = true;
                if truncated {
                    self.m.replog_truncated.inc();
                }
                !truncated
            }
        }
    }

    /// Placement hook for DAG task jobs: commits the `TaskAssign`
    /// decision alongside the `Assigned`/`Offered` entry and starts
    /// the attempt's straggler clock (`at` is the virtual placement
    /// instant). A no-op (`true`) for plain jobs.
    fn commit_task_assign(&mut self, at: SimTime, w: u32, job: JobId) -> bool {
        let Some((root, task, speculative)) = self.dag.task_of(job) else {
            return true;
        };
        if !self.commit(SchedEvent {
            at,
            worker: Some(WorkerId(w)),
            job: Some(job),
            kind: SchedEventKind::TaskAssign {
                root,
                task,
                speculative,
            },
        }) {
            return false;
        }
        self.dag.on_placed(job, at.as_secs_f64());
        true
    }

    /// Per-(job, placement) retry jitter seed — same recipe as the
    /// simulation engine's.
    fn retry_seed(&self, job: JobId, seq: u64) -> u64 {
        self.net
            .as_ref()
            .map(|n| n.plan.seed)
            .unwrap_or(0)
            .wrapping_add(job.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(seq)
    }
}

/// Send `msg` to worker `w` across the (possibly lossy) link: the
/// message can be eaten by a partition or a drop, duplicated, or
/// parked in the delay queue the main loop drains.
fn send_worker(
    st: &mut MasterState,
    txs: &[Sender<ToWorker>],
    w: u32,
    msg: ToWorker,
    now: Instant,
    vnow: SimTime,
    time_scale: f64,
) {
    let Some(net) = &mut st.net else {
        let _ = txs[w as usize].send(msg);
        return;
    };
    let link = net.plan.to_worker;
    if net.plan.partitioned(WorkerId(w), vnow) || net.rng.chance(link.drop_prob) {
        st.m.net_dropped.inc();
        return;
    }
    let copies = if net.rng.chance(link.dup_prob) {
        st.m.net_duplicated.inc();
        2
    } else {
        1
    };
    for _ in 0..copies {
        let d = if link.delay_max_secs > 0.0 {
            net.rng.uniform(link.delay_min_secs, link.delay_max_secs)
        } else {
            0.0
        };
        if d > 0.0 {
            let due = now + Duration::from_secs_f64((d * time_scale).max(0.0));
            net.delayed.push((due, w, msg.clone()));
        } else {
            let _ = txs[w as usize].send(msg.clone());
        }
    }
}

/// Allocate a placement seq and arm the retry + lease timers for a
/// fresh Assign/Offer. Inert (seq 0, acked) when the net layer is off.
fn arm_outstanding(
    st: &mut MasterState,
    id: JobId,
    now: Instant,
    virt: &impl Fn(f64) -> Duration,
) -> (u64, bool, u32, Option<Instant>, Option<Instant>) {
    let retry = match &st.net {
        Some(n) => n.plan.retry,
        None => return (0, true, 0, None, None),
    };
    let seq = st.next_seq;
    st.next_seq += 1;
    let next_retry = retry
        .delay_secs(st.retry_seed(id, seq), 0)
        .map(|d| now + virt(d));
    let lease = Some(now + virt(retry.lease_secs));
    (seq, false, 0, next_retry, lease)
}

/// Run `arrivals` through `workflow` on real threads — the one entry
/// point of the threaded runtime. Returns the same [`RunOutput`] shape
/// as the simulation engine: record, scheduler log, synthesized trace
/// (when [`ThreadedConfig::trace`] is set), per-job placements (in
/// completion order) and a metrics snapshot.
///
/// Unlike the simulated engine this function is *not* deterministic:
/// thread interleavings, late bids and real queueing are part of what
/// it measures (§6.4's role in the paper).
pub fn run_threaded_output(
    specs: &[WorkerSpec],
    cfg: &ThreadedConfig,
    workflow: &mut Workflow,
    arrivals: Vec<Arrival>,
    meta: &RunMeta,
) -> RunOutput {
    let shareds: Vec<Arc<Mutex<WorkerShared>>> = specs
        .iter()
        .map(|spec| Arc::new(Mutex::new(WorkerShared::new(spec.clone()))))
        .collect();
    run_threaded_with_shareds(specs, &shareds, cfg, workflow, arrivals, meta)
}

/// Core of the threaded runtime, over caller-owned worker state.
/// [`crate::runtime::ThreadedSession`] passes the same `shareds`
/// across iterations so caches and learned speeds stay warm, exactly
/// like the engine's persistent [`crate::engine::Cluster`].
pub(crate) fn run_threaded_with_shareds(
    specs: &[WorkerSpec],
    shareds: &[Arc<Mutex<WorkerShared>>],
    cfg: &ThreadedConfig,
    workflow: &mut Workflow,
    arrivals: Vec<Arrival>,
    meta: &RunMeta,
) -> RunOutput {
    assert!(!specs.is_empty(), "need at least one worker");
    assert_eq!(specs.len(), shareds.len(), "one shared state per spec");
    assert!(cfg.time_scale > 0.0, "time_scale must be positive");
    assert!(
        cfg.mutation.is_none() || cfg!(feature = "protocol-mutation"),
        "protocol mutations require the `protocol-mutation` cargo feature"
    );
    let n = specs.len();
    let protocol = match cfg.scheduler {
        ThreadedScheduler::Bidding { .. } => Protocol::Bidding,
        ThreadedScheduler::Baseline => Protocol::Baseline,
    };
    let seq = SeedSequence::new(cfg.seed);
    let mut rng_master = seq.stream(1);
    let net_active = cfg.netfaults.is_active();
    let metrics = RuntimeMetrics::from_sink(cfg.metrics.clone());
    // A shared sink accumulates across iterations; the per-run record
    // reports deltas from these baselines.
    let base_control = metrics.control_messages.get();
    let base_redistributed = metrics.jobs_redistributed.get();
    let base_crashes = metrics.worker_crashes.get();

    // Replicated data plane, shared with every worker thread when
    // armed. The mutation sabotage flags fold into the effective
    // config so both runtimes misbehave identically under test.
    let repl: Option<Arc<Mutex<ReplState>>> = {
        let mut rcfg = cfg.replication;
        rcfg.skip_repair |= cfg.mutation.skips_repair();
        rcfg.evict_last_copy |= cfg.mutation.evicts_last_copy();
        rcfg.enabled.then(|| {
            let mut rs = ReplState::new(rcfg, cfg.netfaults.clone(), n, cfg.time_scale);
            for i in 0..n {
                rs.alive[i] = !cfg.membership.is_deferred(WorkerId(i as u32));
            }
            // Warm seeding: copies persisted by earlier iterations of
            // the session enter the registry without log events (the
            // log narrates this run only), then pins are re-derived.
            let mut seeded: Vec<ObjectId> = Vec::new();
            for (i, shared) in shareds.iter().enumerate() {
                let s = shared.lock();
                let resident: Vec<ObjectId> = s.store.resident().collect();
                for obj in resident {
                    let bytes = s.store.size_of(obj).unwrap_or(0);
                    if rs.map.add(obj, i as u32, bytes) {
                        seeded.push(obj);
                    }
                }
            }
            seeded.sort_unstable();
            seeded.dedup();
            for obj in seeded {
                rs.sync_pins(obj);
            }
            Arc::new(Mutex::new(rs))
        })
    };

    let (to_master_tx, to_master_rx): (Sender<ToMaster>, Receiver<ToMaster>) = unbounded();
    let mut worker_txs: Vec<Sender<ToWorker>> = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (i, (spec, shared)) in specs.iter().zip(shareds).enumerate() {
        shared.lock().reset_for_run();
        let (tx, rx) = unbounded::<ToWorker>();
        let worker_noise = spec
            .noise_override
            .clone()
            .unwrap_or_else(|| cfg.noise.clone());
        let bid_delay = cfg
            .chaos
            .as_ref()
            .map(|c| c.max_bid_delay)
            .unwrap_or(Duration::ZERO);
        let threads = spawn_worker(
            i as u32,
            Arc::clone(shared),
            rx,
            to_master_tx.clone(),
            protocol,
            cfg.time_scale,
            worker_noise,
            cfg.speed_learning,
            seq.seed_for(100 + i as u64),
            metrics.clone(),
            bid_delay,
            net_active.then_some(cfg.netfaults.retry),
            repl.clone(),
        );
        worker_txs.push(tx);
        handles.push(threads);
    }
    drop(to_master_tx);

    let start = Instant::now();
    if let Some(r) = &repl {
        // Anchor the data plane's virtual clock (partition windows) to
        // the run start the master uses, not the construction instant.
        r.lock().start = start;
    }
    // In-flight re-replication copies: `(due, object, dest, bytes)`.
    // One entry per `ReplState::repairs` entry; fired by the main loop.
    let mut repair_timers: Vec<(Instant, ObjectId, u32, u64)> = Vec::new();
    // The worker→master half of the lossy link lives in the intake,
    // beneath the chaos layer.
    let net_intake = net_active.then(|| {
        NetIntake::new(
            cfg.netfaults.clone(),
            start,
            cfg.time_scale,
            metrics.clone(),
        )
    });
    let mut intake = Intake::new(to_master_rx, cfg.chaos.clone(), net_intake);
    let virt = |v: f64| Duration::from_secs_f64((v * cfg.time_scale).max(0.0));
    let vnow = move || SimTime::from_secs_f64(start.elapsed().as_secs_f64() / cfg.time_scale);
    // Arrival schedule in real time.
    let mut pending_arrivals: VecDeque<(Instant, JobSpec)> = arrivals
        .into_iter()
        .map(|a| (start + virt(a.at.as_secs_f64()), a.spec))
        .collect();
    let total_arrivals = pending_arrivals.len() as u64;
    let mut arrivals_seen = 0u64;

    // Fault schedule in real time. The master doubles as the fault
    // injector: it flips the worker's shared liveness flag (the
    // "instance dies") and, `detection_delay` later, acts on it (the
    // "monitoring layer notices").
    let mut fault_events: VecDeque<(Instant, FaultEvent)> = {
        let mut evs: Vec<(Instant, FaultEvent)> = cfg
            .faults
            .events()
            .iter()
            .map(|(at, ev)| (start + virt(at.as_secs_f64()), *ev))
            .collect();
        evs.sort_by_key(|(at, _)| *at);
        evs.into()
    };
    let detection_real = virt(cfg.faults.detection_delay.as_secs_f64());
    // Elastic-membership schedule in real time, same treatment as the
    // fault schedule.
    let mut membership_events: VecDeque<(Instant, MembershipEvent)> = {
        let mut evs: Vec<(Instant, MembershipEvent)> = cfg
            .membership
            .events()
            .iter()
            .map(|e| (start + virt(e.at.as_secs_f64()), *e))
            .collect();
        evs.sort_by_key(|(at, _)| *at);
        evs.into()
    };
    // (fire_at, worker, flip instant of the crash being detected)
    let mut detections: VecDeque<(Instant, u32, Instant)> = VecDeque::new();
    let mut down_since: Vec<Option<Instant>> = vec![None; n];
    let mut last_recover: Vec<Option<Instant>> = vec![None; n];
    let mut downtime_real = 0.0f64;

    let mut st = MasterState {
        contests: HashMap::new(),
        contest_queue: VecDeque::new(),
        timed_out: 0,
        fallback: 0,
        ready: VecDeque::new(),
        idle: IdlePool::new(),
        rejected_by: HashMap::new(),
        // A deferred worker is dormant until its join fires: its
        // initial Idle announcement is dropped by the liveness filter
        // and no bid request reaches it.
        known_live: (0..n)
            .map(|i| !cfg.membership.is_deferred(WorkerId(i as u32)))
            .collect(),
        draining: vec![false; n],
        departed: vec![false; n],
        outstanding: HashMap::new(),
        done_ids: HashSet::new(),
        log: ReplicatedLog::new(&cfg.master_faults),
        failover_pending: false,
        job_payloads: HashMap::new(),
        created: 0,
        completed: 0,
        shard: cfg.shard,
        next_job_id: 0,
        next_seq: 1,
        net: net_active.then(|| NetMaster {
            plan: cfg.netfaults.clone(),
            rng: SeedSequence::new(cfg.netfaults.seed).stream(0x4E37),
            delayed: Vec::new(),
        }),
        dag: {
            // The protocol mutations route through the shared DAG
            // config so both runtimes misbehave identically.
            let mut acfg = cfg.atomize;
            acfg.release_all |= cfg.mutation.ignores_dag_gating();
            acfg.double_speculate |= cfg.mutation.double_speculates();
            DagState::new(acfg)
        },
        m: metrics.clone(),
    };
    let mut wait_stats = Welford::new();
    let mut last_completion = start;
    // Per-job lifecycle trace, synthesized from the phase breakdown
    // each completion carries (the engine records the same vocabulary
    // live; here the events are reconstructed at completion time).
    let mut trace: Option<Trace> = if cfg.trace { Some(Trace::new()) } else { None };
    // Placements in completion order (the threaded master only learns
    // a placement authoritatively when the worker reports it done).
    let mut assignments: Vec<(JobId, WorkerId)> = Vec::new();

    // Open the next queued contest if none is running. With no
    // believed-live workers there is no one to ask: the job stays
    // queued until a recovery re-populates the roster.
    let open_next_contest = |st: &mut MasterState, txs: &[Sender<ToWorker>], window_secs: f64| {
        if st.failover_pending || !st.contests.is_empty() || st.eligible_count() == 0 {
            return;
        }
        let Some(job) = st.contest_queue.pop_front() else {
            return;
        };
        // Commit-before-act: the contest opens only once the log entry
        // reached a quorum. A truncated append performs no side effect
        // — the job goes back to the queue for the elected standby.
        if !st.commit(SchedEvent {
            at: vnow(),
            worker: None,
            job: Some(job.id),
            kind: SchedEventKind::ContestOpened,
        }) {
            st.contest_queue.push_front(job);
            return;
        }
        let opened = Instant::now();
        let deadline = opened + virt(window_secs).max(cfg.min_real_window);
        st.m.contests_opened.inc();
        for w in 0..txs.len() as u32 {
            if !st.eligible(w) {
                continue;
            }
            st.m.control_messages.inc();
            // Bid requests are fire-and-forget even on a lossy link: a
            // lost one costs only optimality (the contest resolves by
            // timeout or fallback), so there is no ack or retry.
            send_worker(
                st,
                txs,
                w,
                ToWorker::BidRequest(job.clone()),
                Instant::now(),
                vnow(),
                cfg.time_scale,
            );
        }
        st.contests.insert(
            job.id,
            Contest {
                job,
                bids: Vec::new(),
                opened,
                deadline,
            },
        );
    };

    // Dispatch a new (or reclaimed) job according to the protocol.
    let dispatch = |st: &mut MasterState,
                    txs: &[Sender<ToWorker>],
                    cfg: &ThreadedConfig,
                    job: Job| match cfg.scheduler {
        ThreadedScheduler::Bidding { window_secs } => {
            st.contest_queue.push_back(job);
            open_next_contest(st, txs, window_secs);
        }
        ThreadedScheduler::Baseline => {
            st.ready.push_back(job);
        }
    };

    // Release one DAG task (or a speculative replica) into allocation.
    // Commit-before-act: the `TaskOffer`/`SpecLaunch` decision commits
    // under the freshly allocated job id before the job is dispatched.
    let submit_task_job = |st: &mut MasterState,
                           txs: &[Sender<ToWorker>],
                           cfg: &ThreadedConfig,
                           root: JobId,
                           idx: u32,
                           spec: JobSpec,
                           speculative: bool| {
        let id = st.alloc_id();
        let kind = if speculative {
            SchedEventKind::SpecLaunch { root, task: idx }
        } else {
            let (preds, total) = st.dag.offer_payload(root, idx);
            SchedEventKind::TaskOffer {
                root,
                task: idx,
                preds,
                total,
            }
        };
        if !st.commit(SchedEvent {
            at: vnow(),
            worker: None,
            job: Some(id),
            kind,
        }) {
            return;
        }
        st.created += 1;
        st.commit(SchedEvent {
            at: vnow(),
            worker: None,
            job: Some(id),
            kind: SchedEventKind::Submitted,
        });
        st.dag.bind(root, idx, id, speculative);
        let job = spec.into_job(id);
        if !cfg.master_faults.is_empty() {
            st.job_payloads.insert(id, job.clone());
        }
        dispatch(st, txs, cfg, job);
    };

    let baseline_pump = |st: &mut MasterState, txs: &[Sender<ToWorker>]| {
        while !st.failover_pending && !st.ready.is_empty() && !st.idle.is_empty() {
            let job = st.ready.pop_front().expect("non-empty");
            // A worker that just rejected this job would accept it on
            // the rebound (reject-once); prefer any *other* idle
            // worker first so the rejection can actually route the
            // job somewhere better.
            let rejector = st.rejected_by.get(&job.id).copied();
            let w = if cfg.mutation.reoffers_to_rejector() {
                // The reintroduced bug: bounce the job straight back
                // to whoever just rejected it.
                st.idle.pop_exact_or_front(rejector)
            } else {
                st.idle.pop_preferring_not(rejector)
            }
            .expect("checked non-empty");
            // Commit-before-act: an offer whose log entry died with
            // the leader never goes out; worker and job return to
            // their pools for the standby to re-place.
            if !st.commit(SchedEvent {
                at: vnow(),
                worker: Some(WorkerId(w)),
                job: Some(job.id),
                kind: SchedEventKind::Offered,
            }) {
                st.idle.push(w);
                st.ready.push_front(job);
                break;
            }
            if !st.commit_task_assign(vnow(), w, job.id) {
                st.idle.push(w);
                st.ready.push_front(job);
                break;
            }
            st.m.control_messages.inc();
            let now = Instant::now();
            let (seq, acked, attempt, next_retry, lease_deadline) =
                arm_outstanding(st, job.id, now, &virt);
            st.outstanding.insert(
                job.id,
                Outstanding {
                    job: job.clone(),
                    worker: w,
                    assigned_at: now,
                    seq,
                    offer: true,
                    acked,
                    attempt,
                    next_retry,
                    lease_deadline,
                },
            );
            send_worker(
                st,
                txs,
                w,
                ToWorker::Offer { job, seq },
                now,
                vnow(),
                cfg.time_scale,
            );
        }
    };

    let close_contest = |st: &mut MasterState,
                         txs: &[Sender<ToWorker>],
                         rng: &mut RngStream,
                         id: JobId,
                         timed_out: bool| {
        if st.failover_pending {
            return;
        }
        let Some(c) = st.contests.remove(&id) else {
            return;
        };
        // Total order over estimates (NaN cannot occur here — intake
        // drops non-finite bids — but total_cmp keeps the comparison
        // honest regardless); ties break on worker id.
        let winner = c
            .bids
            .iter()
            .filter(|(w, _)| st.eligible(*w))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(w, _)| *w);
        let (w, fallback) = match winner {
            Some(w) => (w, false),
            None => {
                let live: Vec<u32> = (0..txs.len() as u32).filter(|w| st.eligible(*w)).collect();
                if live.is_empty() {
                    // Nobody to draft: park the job until a recovery.
                    st.contest_queue.push_front(c.job);
                    return;
                }
                (live[rng.below(live.len() as u64) as usize], true)
            }
        };
        // Commit-before-act: the decision stands only once both
        // entries reached a quorum. A truncated close leaves the job
        // contest-open in the state, a truncated assignment leaves it
        // unplaced — either way the elected standby re-enters it.
        if !st.commit(SchedEvent {
            at: vnow(),
            worker: None,
            job: Some(id),
            kind: SchedEventKind::ContestClosed {
                timed_out,
                fallback,
            },
        }) {
            st.contest_queue.push_front(c.job);
            return;
        }
        if timed_out {
            st.timed_out += 1;
            st.m.contests_timed_out.inc();
        }
        if fallback {
            st.fallback += 1;
            st.m.contests_fallback.inc();
        }
        st.m.contests_closed.inc();
        if !st.commit(SchedEvent {
            at: vnow(),
            worker: Some(WorkerId(w)),
            job: Some(id),
            kind: SchedEventKind::Assigned,
        }) {
            st.contest_queue.push_front(c.job);
            return;
        }
        if !st.commit_task_assign(vnow(), w, id) {
            st.contest_queue.push_front(c.job);
            return;
        }
        st.m.control_messages.inc();
        let now = Instant::now();
        let (seq, acked, attempt, next_retry, lease_deadline) = arm_outstanding(st, id, now, &virt);
        st.outstanding.insert(
            id,
            Outstanding {
                job: c.job.clone(),
                worker: w,
                assigned_at: now,
                seq,
                offer: false,
                acked,
                attempt,
                next_retry,
                lease_deadline,
            },
        );
        send_worker(
            st,
            txs,
            w,
            ToWorker::Assign { job: c.job, seq },
            now,
            vnow(),
            cfg.time_scale,
        );
    };

    let window_secs = match cfg.scheduler {
        ThreadedScheduler::Bidding { window_secs } => window_secs,
        ThreadedScheduler::Baseline => 0.0,
    };

    // Graceful-drain completion: once a draining worker has nothing
    // outstanding it departs for good (`WorkerRemoved`). A drainer
    // that is currently crashed departs at its recovery instead — its
    // stranded jobs must be reclaimed first.
    let finish_drain = |st: &mut MasterState, down_since: &[Option<Instant>], w: u32| {
        let i = w as usize;
        if !st.draining[i] || st.departed[i] || down_since[i].is_some() {
            return;
        }
        if st.outstanding.values().any(|o| o.worker == w) {
            return;
        }
        st.commit(SchedEvent {
            at: vnow(),
            worker: Some(WorkerId(w)),
            job: None,
            kind: SchedEventKind::WorkerRemoved,
        });
        st.draining[i] = false;
        st.departed[i] = true;
        st.known_live[i] = false;
        st.idle.remove(w);
        if let Some(r) = &repl {
            // The departed worker's copies leave the replica set (its
            // store survives on disk but the cluster cannot reach it).
            r.lock().drop_worker(w);
        }
    };

    // Drain the data plane's journal into the replicated log, in the
    // order the critical sections produced it. Returns `true` when a
    // replica set changed — the signal to re-scan for repairs.
    let drain_repl = |st: &mut MasterState| -> bool {
        let Some(r) = &repl else {
            return false;
        };
        let entries = std::mem::take(&mut r.lock().journal);
        let mut changed = false;
        for (w, job, kind) in entries {
            changed |= matches!(
                kind,
                SchedEventKind::ReplicaAdd { .. } | SchedEventKind::ReplicaDrop { .. }
            );
            st.commit(SchedEvent {
                at: vnow(),
                worker: Some(WorkerId(w)),
                job,
                kind,
            });
        }
        changed
    };

    // Under-replication scan: for every artifact below its factor with
    // no repair in flight, pick the live source and the eligible
    // destination with the most free store bytes, commit the
    // `repair_start` decision (commit-before-copy), and arm the copy
    // timer. Free-byte snapshots are collected one shared lock at a
    // time *before* the repl lock, per the lock order.
    let scan_repairs = |st: &mut MasterState, timers: &mut Vec<(Instant, ObjectId, u32, u64)>| {
        let Some(r) = &repl else {
            return;
        };
        if st.failover_pending {
            return;
        }
        let free: Vec<u64> = shareds
            .iter()
            .map(|s| {
                let s = s.lock();
                s.store.capacity().saturating_sub(s.store.used())
            })
            .collect();
        let picks: Vec<(ObjectId, u32, u32, u64)> = {
            let rs = r.lock();
            rs.map
                .under_replicated()
                .into_iter()
                .filter(|obj| !rs.repairs.contains_key(obj))
                .filter_map(|obj| {
                    let src = rs.map.replicas(obj).find(|&h| rs.alive[h as usize])?;
                    let bytes = rs.map.bytes(obj)?;
                    let dest = (0..n as u32)
                        .filter(|&w| st.eligible(w) && !rs.map.holds(obj, w))
                        .max_by_key(|&w| (free[w as usize], std::cmp::Reverse(w)))?;
                    Some((obj, src, dest, bytes))
                })
                .collect()
        };
        for (obj, src, dest, bytes) in picks {
            if !st.commit(SchedEvent {
                at: vnow(),
                worker: Some(WorkerId(dest)),
                job: None,
                kind: SchedEventKind::RepairStart {
                    object: obj.0,
                    from: WorkerId(src),
                },
            }) {
                continue;
            }
            st.m.repairs_started.inc();
            let mut rs = r.lock();
            if rs.cfg.skip_repair {
                // Sabotage: the decision is committed but the copy
                // never happens — the oracle must flag the unmatched
                // start.
                continue;
            }
            rs.repairs.insert(obj, dest);
            // A copy the data plane would lose degrades to a
            // master-sourced transfer at nominal link speed: a
            // committed repair always completes.
            let lost = peer_dropped(&rs.cfg, &rs.netfaults, obj, dest, REPAIR_ATTEMPT_KEY);
            let full = specs[dest as usize].net.time_for(bytes).as_secs_f64();
            let secs = if lost {
                full
            } else {
                full / rs.cfg.peer_bandwidth_scale
            };
            timers.push((Instant::now() + virt(secs), obj, dest, bytes));
        }
    };

    // Leader crash takeover: an elected standby replays the committed
    // log into a pure state, pauses for the (scaled) election timeout,
    // and rebuilds every scheduler-owned structure from the replay.
    // The transport substrate — worker threads, channels, the idle
    // pool, liveness beliefs, net-layer sequencing and exactly-once
    // memory — survives in place: it models the replica group's shared
    // view of the cluster, not the leader's private decisions.
    let do_failover = |st: &mut MasterState,
                       txs: &[Sender<ToWorker>],
                       down: &[Option<Instant>],
                       timers: &mut Vec<(Instant, ObjectId, u32, u64)>| {
        st.failover_pending = false;
        let (_term, state, entries) = st.log.failover(vnow());
        st.m.master_failovers.inc();
        st.m.replay_entries.add(entries);
        let pause = virt(cfg.master_faults.election_timeout_secs);
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
        // Decisions the dead leader had staged but never committed are
        // forgotten; the committed log is the only source of truth.
        st.contests.clear();
        st.contest_queue.clear();
        st.ready.clear();
        // Rejection routing survives through the committed log, not
        // the dead leader's memory.
        st.rejected_by.clear();
        for (job, w) in state.rejections() {
            st.rejected_by.insert(job, w.0);
        }
        // A placement the log cannot prove does not exist: its timers
        // die with the leader and the job re-enters below. Proven
        // placements keep their reliability timers running.
        st.outstanding
            .retain(|id, o| state.placed_on(*id) == Some(WorkerId(o.worker)));
        // Jobs the log proves submitted-but-unplaced (queued, mid-
        // contest, or whose assignment truncated) re-enter allocation
        // exactly once each.
        for id in state.unplaced_jobs() {
            let job = st
                .job_payloads
                .get(&id)
                .cloned()
                .expect("unplaced job without a retained payload");
            dispatch(st, txs, cfg, job);
        }
        // The retain above may have emptied a draining worker's
        // outstanding set; the takeover must notice the drain is done.
        for w in 0..txs.len() as u32 {
            finish_drain(st, down, w);
        }
        // Commit-before-copy pays off here: repairs the log proves
        // started but not finished resume without a second
        // `repair_start` — in-flight copies keep their timers, only
        // the ones whose timer died with the leader are re-armed.
        if let Some(r) = &repl {
            let mut rs = r.lock();
            if !rs.cfg.skip_repair {
                let resumed: Vec<(ObjectId, u32)> = state
                    .repairs_pending
                    .iter()
                    .map(|(obj, dest)| (ObjectId(*obj), dest.0))
                    .filter(|(obj, _)| !rs.repairs.contains_key(obj))
                    .collect();
                for (obj, dest) in resumed {
                    let Some(bytes) = rs.map.bytes(obj) else {
                        continue;
                    };
                    rs.repairs.insert(obj, dest);
                    let lost = peer_dropped(&rs.cfg, &rs.netfaults, obj, dest, REPAIR_ATTEMPT_KEY);
                    let full = specs[dest as usize].net.time_for(bytes).as_secs_f64();
                    let secs = if lost {
                        full
                    } else {
                        full / rs.cfg.peer_bandwidth_scale
                    };
                    timers.push((Instant::now() + virt(secs), obj, dest, bytes));
                }
            }
        }
        baseline_pump(st, txs);
        open_next_contest(st, txs, window_secs);
    };

    // Stall detection, armed only under an active net-fault plan: a
    // mutated reliability layer (e.g. no leases) can lose a job with
    // nothing left to time out, and the run must still terminate so
    // the oracle can flag the loss. The threshold is generous — past
    // every partition window plus several leases, with a large real-
    // time floor against scheduler jitter — so a healthy run never
    // trips it: any live placement produces a log event (retry, ack,
    // completion, bounce) well within it.
    let stall_limit: Option<Duration> = net_active.then(|| {
        let plan = &cfg.netfaults;
        let horizon = plan.partitions_end().as_secs_f64() + plan.retry.lease_secs * 10.0 + 120.0;
        virt(horizon).max(Duration::from_secs(2))
    });
    let mut last_progress = start;
    let mut seen_log_len = 0usize;
    // Straggler sweep cadence (real time). The clock keeps advancing
    // while no DAG is active so the first sweep after an atomized
    // arrival is at most one interval away.
    let spec_check_real = virt(cfg.atomize.spec_check_secs).max(Duration::from_millis(1));
    let mut next_spec_check = start + spec_check_real;
    // Reused across wakeups: one blocking receive drains the whole
    // channel into this batch, so the deadline scan runs once per
    // wakeup instead of once per message.
    let mut batch: VecDeque<ToMaster> = VecDeque::new();

    loop {
        // Fire due arrivals.
        let now = Instant::now();

        // Deliver matured link-delayed master→worker messages.
        // Removal must be order-stable (`remove`, not `swap_remove`):
        // equally-due messages have to go out in the order the link
        // delayed them, or a (run, chaos, net) seed triple stops
        // replaying the same delivery schedule.
        if let Some(net) = &mut st.net {
            let mut i = 0;
            while i < net.delayed.len() {
                if net.delayed[i].0 <= now {
                    let (_, w, msg) = net.delayed.remove(i);
                    let _ = worker_txs[w as usize].send(msg);
                } else {
                    i += 1;
                }
            }
        }
        while pending_arrivals.front().is_some_and(|(at, _)| *at <= now) {
            let (_, spec) = pending_arrivals.pop_front().expect("non-empty");
            arrivals_seen += 1;
            if let Some(dag) = spec.dag.clone() {
                // Atomization: the arriving job never enters allocation
                // itself — its DAG is registered under a root id and
                // the gate-open tasks are released as ordinary jobs.
                let root = st.alloc_id();
                let released = st.dag.register(root, spec.task, dag);
                for (idx, tspec) in released {
                    submit_task_job(&mut st, &worker_txs, cfg, root, idx, tspec, false);
                }
                continue;
            }
            let id = st.intake_id(&spec);
            st.created += 1;
            // A job spilled here from another shard enters as SpillIn
            // under its federation-wide id; everything else is a plain
            // submission.
            let intake = match spec.origin.and_then(|o| o.spilled_from) {
                Some(from_shard) => SchedEventKind::SpillIn { from_shard },
                None => SchedEventKind::Submitted,
            };
            st.commit(SchedEvent {
                at: vnow(),
                worker: None,
                job: Some(id),
                kind: intake,
            });
            let job = spec.into_job(id);
            if !cfg.master_faults.is_empty() {
                st.job_payloads.insert(id, job.clone());
            }
            dispatch(&mut st, &worker_txs, cfg, job);
        }

        // Straggler sweep: replicate the slowest in-flight task once
        // enough siblings have completed to price "slow" (the sweep is
        // committed as SpecLaunch before the replica exists).
        if now >= next_spec_check {
            if st.dag.is_active() {
                if let Some(sp) = st.dag.straggler(vnow().as_secs_f64()) {
                    submit_task_job(&mut st, &worker_txs, cfg, sp.root, sp.task, sp.spec, true);
                }
            }
            next_spec_check = now + spec_check_real;
        }

        // Fire due faults: flip the worker's shared state on the spot,
        // schedule the detection for later.
        while fault_events.front().is_some_and(|(at, _)| *at <= now) {
            let (_, ev) = fault_events.pop_front().expect("non-empty");
            match ev {
                FaultEvent::Crash(wid) => {
                    let w = wid.0 as usize;
                    if w >= n || down_since[w].is_some() || st.departed[w] {
                        continue;
                    }
                    {
                        // The instance dies: queue, in-flight job and
                        // local store go with it. The epoch bump makes
                        // the executor abandon whatever it was doing.
                        let mut s = shareds[w].lock();
                        s.alive = false;
                        s.epoch += 1;
                        s.store.clear();
                        s.committed_secs = 0.0;
                        s.declined.clear();
                    }
                    st.m.worker_crashes.inc();
                    down_since[w] = Some(now);
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(wid),
                        job: None,
                        kind: SchedEventKind::Crash,
                    });
                    if let Some(r) = &repl {
                        // The disk dies with the instance: diff its
                        // resident set out of the registry. The
                        // under-replication scan below re-replicates.
                        r.lock().drop_worker(wid.0);
                    }
                    detections.push_back((now + detection_real, wid.0, now));
                }
                FaultEvent::Recover(wid) => {
                    let w = wid.0 as usize;
                    if w >= n || down_since[w].is_none() {
                        continue;
                    }
                    {
                        let mut s = shareds[w].lock();
                        s.alive = true;
                        s.epoch += 1;
                    }
                    st.m.worker_recoveries.inc();
                    if let Some(since) = down_since[w].take() {
                        downtime_real += now.saturating_duration_since(since).as_secs_f64();
                    }
                    last_recover[w] = Some(now);
                    st.known_live[w] = true;
                    if let Some(r) = &repl {
                        // Back in the data plane: an empty store (the
                        // crash cleared it), but a valid repair
                        // destination and peer endpoint again.
                        r.lock().alive[w] = true;
                    }
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(wid),
                        job: None,
                        kind: SchedEventKind::Recover,
                    });
                    if st.draining[w] {
                        // A drainer that crashed mid-drain: its queue
                        // died with the instance, so once its stranded
                        // jobs are reclaimed the drain completes here.
                        finish_drain(&mut st, &down_since, wid.0);
                    } else {
                        // The rejoined worker's queue is empty but its
                        // executor has no reason to say so; the master
                        // re-seats it.
                        st.idle.push(wid.0);
                        baseline_pump(&mut st, &worker_txs);
                        open_next_contest(&mut st, &worker_txs, window_secs);
                    }
                }
            }
        }

        // Fire due membership events: joins open the roster, drains
        // close it gracefully, removals reclaim on the spot.
        while membership_events.front().is_some_and(|(at, _)| *at <= now) {
            let (_, ev) = membership_events.pop_front().expect("non-empty");
            let w = ev.worker.0 as usize;
            if w >= n {
                continue;
            }
            match ev.action {
                MembershipAction::Join => {
                    if st.known_live[w] || st.departed[w] || down_since[w].is_some() {
                        continue;
                    }
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(ev.worker),
                        job: None,
                        kind: SchedEventKind::WorkerJoined,
                    });
                    st.known_live[w] = true;
                    st.draining[w] = false;
                    if let Some(r) = &repl {
                        r.lock().alive[w] = true;
                    }
                    // The dormant worker's initial Idle announcement
                    // was dropped by the liveness filter; re-seat it
                    // the way a recovery does.
                    st.idle.push(ev.worker.0);
                    baseline_pump(&mut st, &worker_txs);
                    open_next_contest(&mut st, &worker_txs, window_secs);
                }
                MembershipAction::Drain => {
                    if st.draining[w] || st.departed[w] {
                        continue;
                    }
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(ev.worker),
                        job: None,
                        kind: SchedEventKind::WorkerDraining,
                    });
                    st.draining[w] = true;
                    st.idle.remove(ev.worker.0);
                    // Purge its bids from open contests — the shrunken
                    // roster may complete a bid set.
                    let elig = st.eligible_count();
                    let mut complete: Vec<JobId> = Vec::new();
                    for (id, c) in st.contests.iter_mut() {
                        c.bids.retain(|(bw, _)| *bw != ev.worker.0);
                        if elig > 0 && c.bids.len() >= elig {
                            complete.push(*id);
                        }
                    }
                    for id in complete {
                        close_contest(&mut st, &worker_txs, &mut rng_master, id, false);
                    }
                    finish_drain(&mut st, &down_since, ev.worker.0);
                    baseline_pump(&mut st, &worker_txs);
                    open_next_contest(&mut st, &worker_txs, window_secs);
                }
                MembershipAction::Remove => {
                    if st.departed[w] {
                        continue;
                    }
                    // Administrative removal: the instance is reclaimed
                    // on the spot — queue and store die with it, its
                    // unfinished jobs re-enter allocation immediately
                    // (no detection delay), and it never returns.
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(ev.worker),
                        job: None,
                        kind: SchedEventKind::WorkerRemoved,
                    });
                    st.draining[w] = false;
                    st.departed[w] = true;
                    st.known_live[w] = false;
                    st.idle.remove(ev.worker.0);
                    {
                        let mut s = shareds[w].lock();
                        s.alive = false;
                        s.epoch += 1;
                        s.store.clear();
                        s.committed_secs = 0.0;
                        s.declined.clear();
                    }
                    if let Some(r) = &repl {
                        // Reclaimed disk and all: same data-plane diff
                        // as a crash, but the worker never returns.
                        r.lock().drop_worker(ev.worker.0);
                    }
                    if let Some(since) = down_since[w].take() {
                        downtime_real += now.saturating_duration_since(since).as_secs_f64();
                    }
                    let elig = st.eligible_count();
                    let mut complete: Vec<JobId> = Vec::new();
                    for (id, c) in st.contests.iter_mut() {
                        c.bids.retain(|(bw, _)| *bw != ev.worker.0);
                        if elig > 0 && c.bids.len() >= elig {
                            complete.push(*id);
                        }
                    }
                    for id in complete {
                        close_contest(&mut st, &worker_txs, &mut rng_master, id, false);
                    }
                    let mut stranded: Vec<JobId> = st
                        .outstanding
                        .iter()
                        .filter(|(_, o)| o.worker == ev.worker.0)
                        .map(|(id, _)| *id)
                        .collect();
                    stranded.sort_unstable();
                    for id in stranded {
                        let o = st.outstanding.remove(&id).expect("present");
                        st.m.jobs_redistributed.inc();
                        st.commit(SchedEvent {
                            at: vnow(),
                            worker: Some(ev.worker),
                            job: Some(id),
                            kind: SchedEventKind::Redistributed,
                        });
                        dispatch(&mut st, &worker_txs, cfg, o.job);
                    }
                    baseline_pump(&mut st, &worker_txs);
                    open_next_contest(&mut st, &worker_txs, window_secs);
                }
            }
        }

        // Fire matured detections: the monitoring layer reports on a
        // crash `detection_delay` after it happened.
        while detections.front().is_some_and(|(at, _, _)| *at <= now) {
            let (_, dw, crashed_at) = detections.pop_front().expect("non-empty");
            let w = dw as usize;
            // Did the worker come back between the crash and now?
            let recovered_since = last_recover[w].filter(|r| *r >= crashed_at);
            if recovered_since.is_none() {
                // Still down: declare it dead. It leaves the idle
                // pool, its recorded bids can no longer win, and the
                // affected contests re-check completeness against the
                // shrunken roster.
                st.known_live[w] = false;
                st.idle.remove(dw);
                let live = st.eligible_count();
                let mut complete: Vec<JobId> = Vec::new();
                for (id, c) in st.contests.iter_mut() {
                    c.bids.retain(|(bw, _)| *bw != dw);
                    if live > 0 && c.bids.len() >= live {
                        complete.push(*id);
                    }
                }
                for id in complete {
                    close_contest(&mut st, &worker_txs, &mut rng_master, id, false);
                }
            }
            // Reclaim what the worker lost: everything assigned to it
            // before its latest recovery — or everything, if it has
            // not recovered. (Jobs assigned after a recovery live on
            // the rejoined worker and stay put.)
            let stranded: Vec<JobId> = st
                .outstanding
                .iter()
                .filter(|(_, o)| {
                    o.worker == dw && recovered_since.is_none_or(|r| o.assigned_at < r)
                })
                .map(|(id, _)| *id)
                .collect();
            for id in stranded {
                let o = st.outstanding.remove(&id).expect("present");
                st.m.jobs_redistributed.inc();
                st.commit(SchedEvent {
                    at: vnow(),
                    worker: Some(WorkerId(dw)),
                    job: Some(id),
                    kind: SchedEventKind::Redistributed,
                });
                dispatch(&mut st, &worker_txs, cfg, o.job);
            }
            // Reclaiming may have emptied a recovered drainer's
            // outstanding set.
            finish_drain(&mut st, &down_since, dw);
            baseline_pump(&mut st, &worker_txs);
            open_next_contest(&mut st, &worker_txs, window_secs);
        }

        baseline_pump(&mut st, &worker_txs);
        // Close expired contests.
        let due: Vec<JobId> = st
            .contests
            .iter()
            .filter(|(_, c)| c.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            close_contest(&mut st, &worker_txs, &mut rng_master, id, true);
        }
        open_next_contest(&mut st, &worker_txs, window_secs);

        // Reliability layer: retransmit unacked placements on their
        // backoff schedule...
        if st.net.is_some() {
            let due_retries: Vec<JobId> = st
                .outstanding
                .iter()
                .filter(|(_, o)| !o.acked && o.next_retry.is_some_and(|t| t <= now))
                .map(|(id, _)| *id)
                .collect();
            for id in due_retries {
                let retry = st.net.as_ref().expect("net active").plan.retry;
                let seed = st.retry_seed(id, st.outstanding[&id].seq);
                let o = st.outstanding.get_mut(&id).expect("present");
                let attempt = o.attempt;
                o.attempt += 1;
                // Exhaustion is not an error: the lease decides.
                o.next_retry = retry.delay_secs(seed, attempt + 1).map(|d| now + virt(d));
                let (w, msg) = (
                    o.worker,
                    if o.offer {
                        ToWorker::Offer {
                            job: o.job.clone(),
                            seq: o.seq,
                        }
                    } else {
                        ToWorker::Assign {
                            job: o.job.clone(),
                            seq: o.seq,
                        }
                    },
                );
                st.m.net_retries.inc();
                st.m.control_messages.inc();
                st.commit(SchedEvent {
                    at: vnow(),
                    worker: Some(WorkerId(w)),
                    job: Some(id),
                    kind: SchedEventKind::Resent { attempt },
                });
                send_worker(&mut st, &worker_txs, w, msg, now, vnow(), cfg.time_scale);
            }
            // ...and bounce placements whose lease expired unacked
            // back to the scheduler. This is *not* `Redistributed`:
            // the worker may be perfectly alive — the link is suspect.
            if !cfg.mutation.no_leases() {
                let expired: Vec<JobId> = st
                    .outstanding
                    .iter()
                    .filter(|(_, o)| !o.acked && o.lease_deadline.is_some_and(|t| t <= now))
                    .map(|(id, _)| *id)
                    .collect();
                for id in expired {
                    let o = st.outstanding.remove(&id).expect("present");
                    st.m.lease_expired.inc();
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(WorkerId(o.worker)),
                        job: Some(id),
                        kind: SchedEventKind::LeaseExpired,
                    });
                    if !st.done_ids.contains(&id) {
                        dispatch(&mut st, &worker_txs, cfg, o.job);
                    }
                    finish_drain(&mut st, &down_since, o.worker);
                }
                baseline_pump(&mut st, &worker_txs);
                open_next_contest(&mut st, &worker_txs, window_secs);
            }
        }

        // Replicated data plane: land matured repair copies, commit
        // the journal, and re-scan whenever a replica set changed.
        if let Some(r) = &repl {
            let mut i = 0;
            while i < repair_timers.len() {
                if repair_timers[i].0 > now {
                    i += 1;
                    continue;
                }
                let (_, obj, dest, bytes) = repair_timers.remove(i);
                // Stale timer: the repair was re-routed or superseded.
                if r.lock().repairs.get(&obj) != Some(&dest) {
                    continue;
                }
                let d = dest as usize;
                if down_since[d].is_some() || st.departed[d] {
                    // The destination died mid-copy. Re-route the same
                    // committed repair to a fresh destination — no
                    // second `repair_start` (that would double-count
                    // the decision) — or park until somebody recovers.
                    let free: Vec<u64> = shareds
                        .iter()
                        .map(|s| {
                            let s = s.lock();
                            s.store.capacity().saturating_sub(s.store.used())
                        })
                        .collect();
                    let mut rs = r.lock();
                    let nd = (0..n as u32)
                        .filter(|&w| st.eligible(w) && !rs.map.holds(obj, w))
                        .max_by_key(|&w| (free[w as usize], std::cmp::Reverse(w)));
                    match nd {
                        Some(nd) => {
                            rs.repairs.insert(obj, nd);
                            let lost =
                                peer_dropped(&rs.cfg, &rs.netfaults, obj, nd, REPAIR_ATTEMPT_KEY);
                            let full = specs[nd as usize].net.time_for(bytes).as_secs_f64();
                            let secs = if lost {
                                full
                            } else {
                                full / rs.cfg.peer_bandwidth_scale
                            };
                            drop(rs);
                            repair_timers.push((now + virt(secs), obj, nd, bytes));
                        }
                        None => {
                            let wait = rs.cfg.fetch_timeout_secs;
                            drop(rs);
                            repair_timers.push((now + virt(wait), obj, dest, bytes));
                        }
                    }
                    continue;
                }
                // The copy lands: insert on the destination (its pins
                // applied first), journal `repair_done` before the
                // replica bookkeeping, and let the scan below top up.
                let mut s = shareds[d].lock();
                let mut rs = r.lock();
                rs.apply_pin_ops(dest, &mut s.store);
                rs.repairs.remove(&obj);
                let evicted = s.store.insert(obj, bytes, vnow());
                rs.journal
                    .push((dest, None, SchedEventKind::RepairDone { object: obj.0 }));
                st.m.repairs_completed.inc();
                rs.note_insert(dest, &s.store, obj, bytes, evicted);
            }
            if drain_repl(&mut st) {
                scan_repairs(&mut st, &mut repair_timers);
            }
        }

        // A leader crash observed anywhere above (or while processing
        // the previous message) elects a standby before the loop can
        // block, break, or take further decisions. Each iteration
        // handles at most one message, so one check per pass suffices.
        if st.failover_pending {
            do_failover(&mut st, &worker_txs, &down_since, &mut repair_timers);
        }

        // Are we done? (`>=`: the DropDedup mutation can double-count
        // a completion past `created`; the run must still terminate so
        // the oracle can flag it.)
        if arrivals_seen == total_arrivals
            && st.created > 0
            && st.completed >= st.created
            && repl.as_ref().is_none_or(|r| {
                // The run does not end while a committed repair is in
                // flight or a data-plane event awaits commit.
                repair_timers.is_empty() && {
                    let rs = r.lock();
                    rs.repairs.is_empty() && rs.journal.is_empty()
                }
            })
        {
            break;
        }
        if total_arrivals == 0 {
            break;
        }
        // Liveness: with every worker believed dead and no recovery
        // left in the schedule, remaining jobs can never complete —
        // report the partial run rather than deadlock.
        if st.live_count() == 0
            && !fault_events
                .iter()
                .any(|(_, e)| matches!(e, FaultEvent::Recover(_)))
            && !membership_events
                .iter()
                .any(|(_, e)| matches!(e.action, MembershipAction::Join))
        {
            break;
        }
        // Stall detection (net-fault runs only): every state change
        // appends to the scheduler log, so a frozen log past the
        // stall horizon means no placement, retry, lease or
        // completion can still fire — report the partial run and let
        // the oracle name the lost jobs.
        if let Some(limit) = stall_limit {
            if st.log.log().events().len() != seen_log_len {
                seen_log_len = st.log.log().events().len();
                last_progress = now;
            } else if arrivals_seen == total_arrivals
                && now.saturating_duration_since(last_progress) > limit
            {
                break;
            }
        }

        // Wait for the next event. The deadline scan and the blocking
        // receive run only once the previous wakeup's batch is fully
        // processed; batched messages ride through the (cheap)
        // bookkeeping at the top of the loop without re-arming timers.
        if batch.is_empty() {
            let next_deadline = pending_arrivals
                .front()
                .map(|(at, _)| *at)
                .into_iter()
                .chain(st.contests.values().map(|c| c.deadline))
                .chain(fault_events.front().map(|(at, _)| *at))
                .chain(membership_events.front().map(|(at, _)| *at))
                .chain(detections.front().map(|(at, _, _)| *at))
                .chain(st.net.iter().flat_map(|n| n.delayed.iter().map(|d| d.0)))
                .chain(
                    // With no net-fault plan every placement is born
                    // acked; skip the scan entirely rather than filter
                    // a map that can hold thousands of entries.
                    net_active
                        .then(|| {
                            st.outstanding
                                .values()
                                .filter(|o| !o.acked)
                                .flat_map(|o| o.next_retry.into_iter().chain(o.lease_deadline))
                                .min()
                        })
                        .flatten(),
                )
                .chain(stall_limit.map(|l| last_progress + l))
                .chain(st.dag.is_active().then_some(next_spec_check))
                .chain(repair_timers.iter().map(|t| t.0))
                .min();
            match intake.recv(next_deadline) {
                Ok(m) => {
                    batch.push_back(m);
                    // Batched intake: everything already deliverable
                    // rides the same wakeup.
                    while let Some(more) = intake.try_recv() {
                        batch.push_back(more);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let Some(msg) = batch.pop_front() else {
            continue;
        };
        // A worker the master has declared dead cannot talk: any of
        // its messages still sitting in the channel predate the
        // detection and are dropped. (Messages from a *crashed but
        // undetected* worker are in-flight traffic of the masking
        // window and are processed normally.)
        let from = match &msg {
            ToMaster::Bid { worker, .. }
            | ToMaster::Reject { worker, .. }
            | ToMaster::Idle { worker }
            | ToMaster::Done { worker, .. }
            | ToMaster::AckAssign { worker, .. } => *worker,
        };
        if !st.known_live[from as usize] {
            continue;
        }
        // A draining worker no longer pulls or bids; its in-flight
        // completions, rejections and placement acks still count.
        if st.draining[from as usize] && matches!(msg, ToMaster::Idle { .. } | ToMaster::Bid { .. })
        {
            continue;
        }
        match msg {
            ToMaster::Bid {
                worker,
                job,
                estimate_secs,
            } => {
                st.m.control_messages.inc();
                // Intake guard: a non-finite estimate is protocol
                // garbage — never record it, never let it count
                // toward the bid set.
                if !estimate_secs.is_finite() && !cfg.mutation.accepts_non_finite() {
                    continue;
                }
                let live = st.eligible_count();
                let mut recorded = false;
                let mut full = false;
                if let Some(c) = st.contests.get_mut(&job) {
                    // Duplicates are ignored entirely: only a freshly
                    // recorded bid may complete the set and trigger
                    // the short-circuit close.
                    if cfg.mutation.accepts_duplicates()
                        || !c.bids.iter().any(|(w, _)| *w == worker)
                    {
                        c.bids.push((worker, estimate_secs));
                        recorded = true;
                        full = c.bids.len() >= live;
                        st.m.bids_received.inc();
                        st.m.bid_latency_secs
                            .record(c.opened.elapsed().as_secs_f64() / cfg.time_scale);
                    }
                }
                if recorded {
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(WorkerId(worker)),
                        job: Some(job),
                        kind: SchedEventKind::BidReceived { estimate_secs },
                    });
                    if let Some((root, task, _)) = st.dag.task_of(job) {
                        st.commit(SchedEvent {
                            at: vnow(),
                            worker: Some(WorkerId(worker)),
                            job: Some(job),
                            kind: SchedEventKind::TaskBid {
                                root,
                                task,
                                estimate_secs,
                            },
                        });
                    }
                }
                if !recorded && cfg.mutation.accepts_late_bids() {
                    // The reintroduced bug: a bid arriving after its
                    // contest closed reopens the decision — the late
                    // bidder steals the still-running job.
                    let stolen = st.outstanding.get_mut(&job).map(|o| {
                        o.worker = worker;
                        o.assigned_at = Instant::now();
                        (o.job.clone(), o.seq)
                    });
                    if let Some((j, seq)) = stolen {
                        st.commit(SchedEvent {
                            at: vnow(),
                            worker: Some(WorkerId(worker)),
                            job: Some(job),
                            kind: SchedEventKind::BidReceived { estimate_secs },
                        });
                        st.commit(SchedEvent {
                            at: vnow(),
                            worker: Some(WorkerId(worker)),
                            job: Some(job),
                            kind: SchedEventKind::Assigned,
                        });
                        st.m.control_messages.inc();
                        send_worker(
                            &mut st,
                            &worker_txs,
                            worker,
                            ToWorker::Assign { job: j, seq },
                            Instant::now(),
                            vnow(),
                            cfg.time_scale,
                        );
                    }
                }
                if full {
                    close_contest(&mut st, &worker_txs, &mut rng_master, job, false);
                    open_next_contest(&mut st, &worker_txs, window_secs);
                }
            }
            ToMaster::Reject { worker, job, seq } => {
                st.m.control_messages.inc();
                // At-least-once tolerance: a reject acts only while
                // the *exact* offer it answers (worker AND placement
                // seq) is still outstanding. A duplicate delivery, or
                // a stale reject arriving after the job was
                // redistributed, completed, lease-bounced or
                // re-offered elsewhere, would otherwise re-queue the
                // job for a second execution (or cancel someone
                // else's offer).
                if st
                    .outstanding
                    .get(&job.id)
                    .is_none_or(|o| o.worker != worker || o.seq != seq)
                {
                    continue;
                }
                st.outstanding.remove(&job.id);
                st.commit(SchedEvent {
                    at: vnow(),
                    worker: Some(WorkerId(worker)),
                    job: Some(job.id),
                    kind: SchedEventKind::Rejected,
                });
                st.rejected_by.insert(job.id, worker);
                // A drainer bouncing its last offer must not re-enter
                // the pull pool — it completes its drain instead.
                if st.draining[worker as usize] {
                    finish_drain(&mut st, &down_since, worker);
                } else {
                    st.idle.push(worker);
                }
                st.ready.push_front(job);
                baseline_pump(&mut st, &worker_txs);
            }
            ToMaster::Idle { worker } => {
                st.m.control_messages.inc();
                st.idle.push(worker);
                baseline_pump(&mut st, &worker_txs);
            }
            ToMaster::Done {
                worker,
                job,
                wait_secs,
                fetch_secs,
                proc_secs,
            } => {
                st.m.control_messages.inc();
                if st.net.is_some() {
                    // Ack *every* delivery — retransmitted and
                    // duplicated copies included — so the worker stops
                    // resending even when the first ack was lost.
                    st.m.control_messages.inc();
                    send_worker(
                        &mut st,
                        &worker_txs,
                        worker,
                        ToWorker::AckDone(job.id),
                        Instant::now(),
                        vnow(),
                        cfg.time_scale,
                    );
                }
                st.outstanding.remove(&job.id);
                st.rejected_by.remove(&job.id);
                finish_drain(&mut st, &down_since, worker);
                if st.dag.is_cancelled(job.id) {
                    // Losing speculation replica: its cancellation was
                    // already committed and accounted — the eventual
                    // completion is swallowed without side effects.
                    st.job_payloads.remove(&job.id);
                    baseline_pump(&mut st, &worker_txs);
                    continue;
                }
                if !st.done_ids.insert(job.id) && !cfg.mutation.drops_dedup() {
                    // A redistributed copy already finished elsewhere,
                    // or an at-least-once duplicate of a completion
                    // already applied: side effects happen once.
                    continue;
                }
                st.completed += 1;
                st.commit(SchedEvent {
                    at: vnow(),
                    worker: Some(WorkerId(worker)),
                    job: Some(job.id),
                    kind: SchedEventKind::Completed,
                });
                st.job_payloads.remove(&job.id);
                st.m.jobs_completed.inc();
                last_completion = Instant::now();
                wait_stats.push(wait_secs.max(0.0));
                assignments.push((job.id, WorkerId(worker)));
                if let Some(t) = &mut trace {
                    // Reconstruct the lifecycle from the phase
                    // breakdown: the completion instant is authoritative
                    // and the phases are laid out backwards from it.
                    let finished = vnow();
                    let total = (wait_secs + fetch_secs + proc_secs).max(0.0);
                    let queued = SimTime::from_secs_f64((finished.as_secs_f64() - total).max(0.0));
                    let started = queued + SimDuration::from_secs_f64(wait_secs.max(0.0));
                    let w = WorkerId(worker);
                    t.push(TraceEvent {
                        job: job.id,
                        worker: w,
                        kind: TraceKind::Queued,
                        at: queued,
                    });
                    t.push(TraceEvent {
                        job: job.id,
                        worker: w,
                        kind: TraceKind::Started,
                        at: started,
                    });
                    if fetch_secs > 0.0 {
                        t.push(TraceEvent {
                            job: job.id,
                            worker: w,
                            kind: TraceKind::Fetched,
                            at: started + SimDuration::from_secs_f64(fetch_secs),
                        });
                    }
                    t.push(TraceEvent {
                        job: job.id,
                        worker: w,
                        kind: TraceKind::Finished,
                        at: finished,
                    });
                }
                match st.dag.on_done(job.id, vnow().as_secs_f64()) {
                    DoneOutcome::NotTask => {
                        let mut out: Vec<JobSpec> = Vec::new();
                        let ctx = TaskCtx {
                            now: vnow(),
                            worker: WorkerId(worker),
                        };
                        workflow.logic_mut(job.task).process(&job, &ctx, &mut out);
                        for spec in out {
                            let id = st.alloc_id();
                            st.created += 1;
                            st.commit(SchedEvent {
                                at: vnow(),
                                worker: None,
                                job: Some(id),
                                kind: SchedEventKind::Submitted,
                            });
                            let spawned = spec.into_job(id);
                            if !cfg.master_faults.is_empty() {
                                st.job_payloads.insert(id, spawned.clone());
                            }
                            dispatch(&mut st, &worker_txs, cfg, spawned);
                        }
                    }
                    DoneOutcome::Swallowed => {}
                    DoneOutcome::Effective {
                        root,
                        task,
                        output,
                        released,
                        losers,
                    } => {
                        if !st.commit(SchedEvent {
                            at: vnow(),
                            worker: Some(WorkerId(worker)),
                            job: Some(job.id),
                            kind: SchedEventKind::TaskDone { root, task },
                        }) {
                            baseline_pump(&mut st, &worker_txs);
                            continue;
                        }
                        // The winner's output is born on its executor:
                        // downstream task bids see it as local state —
                        // and, under replication, as a fresh replica.
                        {
                            let mut s = shareds[worker as usize].lock();
                            if let Some(r) = &repl {
                                let mut rs = r.lock();
                                rs.apply_pin_ops(worker, &mut s.store);
                                let evicted = s.store.insert(output.id, output.bytes, vnow());
                                rs.note_insert(worker, &s.store, output.id, output.bytes, evicted);
                            } else {
                                s.store.insert(output.id, output.bytes, vnow());
                            }
                        }
                        for loser in losers {
                            // Exactly-once accounting: the loser is
                            // retired at cancellation, and its eventual
                            // Done is swallowed at intake above.
                            if st.commit(SchedEvent {
                                at: vnow(),
                                worker: None,
                                job: Some(loser),
                                kind: SchedEventKind::SpecCancel { root, task },
                            }) {
                                st.dag.cancel(loser);
                                st.completed += 1;
                                st.job_payloads.remove(&loser);
                                st.outstanding.remove(&loser);
                            }
                        }
                        for (idx, tspec) in released {
                            submit_task_job(&mut st, &worker_txs, cfg, root, idx, tspec, false);
                        }
                    }
                }
                baseline_pump(&mut st, &worker_txs);
            }
            ToMaster::AckAssign { worker, job, seq } => {
                st.m.control_messages.inc();
                // The ack must match the *current* placement: a stale
                // ack for a placement that was since bounced and
                // re-made elsewhere must not stand down the new
                // placement's timers.
                let matches = st
                    .outstanding
                    .get(&job)
                    .is_some_and(|o| o.worker == worker && o.seq == seq && !o.acked);
                if matches {
                    st.m.acks_received.inc();
                    st.commit(SchedEvent {
                        at: vnow(),
                        worker: Some(WorkerId(worker)),
                        job: Some(job),
                        kind: SchedEventKind::AssignAcked,
                    });
                    if !cfg.mutation.ignores_acks() {
                        let o = st.outstanding.get_mut(&job).expect("present");
                        o.acked = true;
                        o.next_retry = None;
                        o.lease_deadline = None;
                    }
                }
            }
        }
    }
    let end = Instant::now();

    // Shutdown and join.
    for tx in &worker_txs {
        let _ = tx.send(ToWorker::Shutdown);
    }
    drop(worker_txs);
    for h in handles {
        let _ = h.bidder.join();
        let _ = h.executor.join();
    }
    // A partial run (stall or all-dead break) can exit the loop with
    // data-plane events still journaled; commit them so the log stays
    // a complete serialization of the plane. Workers are joined — no
    // entry can race this drain.
    drain_repl(&mut st);

    // A run that completed nothing has no makespan: report explicit
    // zeros instead of clock residue.
    let makespan_secs = if st.completed > 0 {
        last_completion
            .saturating_duration_since(start)
            .as_secs_f64()
            / cfg.time_scale
    } else {
        0.0
    };
    // Downtime of workers still dead at the end runs to end-of-run.
    for since in down_since.iter().flatten() {
        downtime_real += end.saturating_duration_since(*since).as_secs_f64();
    }
    let mut misses = 0;
    let mut hits = 0;
    let mut peer_fetches = 0;
    let mut evictions = 0;
    let mut bytes = 0u64;
    let mut busy = Vec::with_capacity(n);
    for (i, s) in shareds.iter().enumerate() {
        let s = s.lock();
        let st2 = s.store.stats();
        misses += st2.misses;
        hits += st2.hits;
        peer_fetches += st2.peer_fetches;
        evictions += st2.evictions;
        bytes += st2.bytes_admitted;
        let frac = if makespan_secs > 0.0 {
            (s.busy_secs / makespan_secs).min(1.0)
        } else {
            0.0
        };
        metrics.set_worker_busy_frac(i, frac);
        busy.push(frac);
    }
    metrics.cache_misses.add(misses);
    metrics.cache_hits.add(hits);
    metrics.peer_fetches.add(peer_fetches);
    metrics.cache_evictions.add(evictions);
    metrics.set_makespan_secs(makespan_secs);
    metrics.set_data_load_mb(bytes as f64 / 1e6);

    let record = RunRecord {
        scheduler: match cfg.scheduler {
            ThreadedScheduler::Bidding { .. } => SchedulerKind::Bidding,
            ThreadedScheduler::Baseline => SchedulerKind::Baseline,
        },
        worker_config: meta.worker_config.clone(),
        job_config: meta.job_config.clone(),
        iteration: meta.iteration,
        seed: meta.seed,
        makespan_secs,
        data_load_mb: bytes as f64 / 1e6,
        cache_misses: misses,
        cache_hits: hits,
        evictions,
        jobs_completed: st.completed,
        control_messages: metrics.control_messages.get() - base_control,
        contests_timed_out: st.timed_out,
        contests_fallback: st.fallback,
        mean_queue_wait_secs: wait_stats.mean(),
        worker_busy_frac: busy,
        jobs_redistributed: metrics.jobs_redistributed.get() - base_redistributed,
        worker_crashes: metrics.worker_crashes.get() - base_crashes,
        recovery_secs: downtime_real / cfg.time_scale,
    };
    RunOutput {
        record,
        events: 0,
        assignments,
        trace: trace.take().unwrap_or_default(),
        sched_log: st.log.into_log(),
        metrics: metrics.snapshot(),
        anomalies: Vec::new(),
        replicas: repl.as_ref().map(|r| r.lock().map.clone()),
    }
}
