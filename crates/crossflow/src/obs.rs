//! Observability bundle shared by both runtimes.
//!
//! [`RuntimeMetrics`] pre-resolves every instrument the engine and the
//! threaded master/worker record into, so the hot paths touch only
//! atomics — never the registry's name map.  Both runtimes use the
//! same instrument names, which is what lets parity tests compare a
//! sim run and a threaded run through their
//! [`RegistrySnapshot`]s.
//!
//! Instrument names (all under the run's registry):
//!
//! | name | kind | §6.1 meaning |
//! |------|------|--------------|
//! | `jobs/completed` | counter | jobs finished (conservation) |
//! | `jobs/redistributed` | counter | re-placed after a crash |
//! | `assignments` | counter | placements onto a worker queue |
//! | `contests/opened` | counter | bid broadcasts (Listing 1) |
//! | `contests/closed` | counter | contests decided |
//! | `contests/timed_out` | counter | decided by window timeout |
//! | `contests/fallback` | counter | zero bids → arbitrary worker |
//! | `bids/received` | counter | finite bids reaching the master |
//! | `control/messages` | counter | §6.3.2 bidding overhead |
//! | `workers/crashes` | counter | injected crash events |
//! | `workers/recoveries` | counter | recovery events |
//! | `cache/hits`, `cache/misses`, `cache/evictions` | counter | store behaviour |
//! | `job/queue_wait_secs` | histogram | queue-wait phase |
//! | `job/fetch_secs` | histogram | transfer phase (misses only) |
//! | `job/proc_secs` | histogram | processing phase |
//! | `contest/bid_latency_secs` | histogram | bid-request → bid |
//! | `sim/clamped_events` | counter | past-time events clamped by the queue (sim only; nonzero is an anomaly) |
//! | `makespan_secs` | gauge | end-to-end time |
//! | `data_load_mb` | gauge | non-local MB moved |
//! | `worker/<i>/busy_frac` | gauge | per-worker utilization |
//!
//! Net-fault layer instruments (zero unless a
//! [`crate::faults::NetFaultPlan`] is active):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `net/dropped` | counter | messages eaten by loss or a partition |
//! | `net/duplicated` | counter | messages delivered twice by the link |
//! | `net/retries` | counter | reliability-layer retransmissions |
//! | `net/dedup_hits` | counter | duplicate envelopes discarded |
//! | `acks/received` | counter | assignment/offer acks applied |
//! | `lease/expired` | counter | placements bounced by lease expiry |
//!
//! Master-failover instruments (zero unless a
//! [`crate::faults::MasterFaultPlan`] is armed):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `master/failovers` | counter | leader crashes survived by election |
//! | `replog/truncated` | counter | decision appends lost with the leader |
//! | `replay/entries` | counter | committed entries replayed by successors |
//!
//! Replicated-data-plane instruments (zero unless
//! [`crate::engine::ReplicationConfig::enabled`] is set):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `cache/peer_fetches` | counter | misses served worker→worker instead of from the master |
//! | `data/peer_retries` | counter | peer fetch attempts that timed out and re-tried |
//! | `data/repairs_started` | counter | re-replication copies committed to the log |
//! | `data/repairs_completed` | counter | re-replication copies that landed |

use crossbid_metrics::{Counter, Histogram, Registry, RegistrySnapshot};

/// Pre-resolved instrument handles over one [`Registry`].
///
/// Cloning is cheap (each handle is an `Arc`); the threaded runtime
/// hands a clone to every worker thread so bidders and executors
/// record without messaging the master.
#[derive(Debug, Clone)]
pub struct RuntimeMetrics {
    registry: Registry,
    pub jobs_completed: Counter,
    pub jobs_redistributed: Counter,
    pub assignments: Counter,
    pub contests_opened: Counter,
    pub contests_closed: Counter,
    pub contests_timed_out: Counter,
    pub contests_fallback: Counter,
    pub bids_received: Counter,
    pub control_messages: Counter,
    pub worker_crashes: Counter,
    pub worker_recoveries: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_evictions: Counter,
    pub queue_wait_secs: Histogram,
    pub fetch_secs: Histogram,
    pub proc_secs: Histogram,
    pub bid_latency_secs: Histogram,
    pub net_dropped: Counter,
    pub net_duplicated: Counter,
    pub net_retries: Counter,
    pub net_dedup_hits: Counter,
    pub acks_received: Counter,
    pub lease_expired: Counter,
    pub sim_clamped_events: Counter,
    pub master_failovers: Counter,
    pub replog_truncated: Counter,
    pub replay_entries: Counter,
    pub peer_fetches: Counter,
    pub peer_retries: Counter,
    pub repairs_started: Counter,
    pub repairs_completed: Counter,
}

impl RuntimeMetrics {
    /// Bind every instrument in `registry`.
    pub fn new(registry: Registry) -> Self {
        RuntimeMetrics {
            jobs_completed: registry.counter("jobs/completed"),
            jobs_redistributed: registry.counter("jobs/redistributed"),
            assignments: registry.counter("assignments"),
            contests_opened: registry.counter("contests/opened"),
            contests_closed: registry.counter("contests/closed"),
            contests_timed_out: registry.counter("contests/timed_out"),
            contests_fallback: registry.counter("contests/fallback"),
            bids_received: registry.counter("bids/received"),
            control_messages: registry.counter("control/messages"),
            worker_crashes: registry.counter("workers/crashes"),
            worker_recoveries: registry.counter("workers/recoveries"),
            cache_hits: registry.counter("cache/hits"),
            cache_misses: registry.counter("cache/misses"),
            cache_evictions: registry.counter("cache/evictions"),
            queue_wait_secs: registry.histogram("job/queue_wait_secs"),
            fetch_secs: registry.histogram("job/fetch_secs"),
            proc_secs: registry.histogram("job/proc_secs"),
            bid_latency_secs: registry.histogram("contest/bid_latency_secs"),
            net_dropped: registry.counter("net/dropped"),
            net_duplicated: registry.counter("net/duplicated"),
            net_retries: registry.counter("net/retries"),
            net_dedup_hits: registry.counter("net/dedup_hits"),
            acks_received: registry.counter("acks/received"),
            lease_expired: registry.counter("lease/expired"),
            sim_clamped_events: registry.counter("sim/clamped_events"),
            master_failovers: registry.counter("master/failovers"),
            replog_truncated: registry.counter("replog/truncated"),
            replay_entries: registry.counter("replay/entries"),
            peer_fetches: registry.counter("cache/peer_fetches"),
            peer_retries: registry.counter("data/peer_retries"),
            repairs_started: registry.counter("data/repairs_started"),
            repairs_completed: registry.counter("data/repairs_completed"),
            registry,
        }
    }

    /// Use the caller's sink when provided, else a private registry
    /// (metrics are always collected; a sink only shares them).
    pub fn from_sink(sink: Option<Registry>) -> Self {
        Self::new(sink.unwrap_or_default())
    }

    /// End-of-run summary gauges.
    pub fn set_makespan_secs(&self, v: f64) {
        self.registry.gauge("makespan_secs").set(v);
    }

    pub fn set_data_load_mb(&self, v: f64) {
        self.registry.gauge("data_load_mb").set(v);
    }

    /// Per-worker utilization gauge, `worker/<i>/busy_frac`.
    pub fn set_worker_busy_frac(&self, worker: usize, v: f64) {
        self.registry
            .gauge(&format!("worker/{worker}/busy_frac"))
            .set(v);
    }

    /// Freeze the current state of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sink_shares_the_registry() {
        let reg = Registry::new();
        let m = RuntimeMetrics::from_sink(Some(reg.clone()));
        m.assignments.add(3);
        assert_eq!(reg.snapshot().counter("assignments"), 3);
    }

    #[test]
    fn private_registry_still_snapshots() {
        let m = RuntimeMetrics::from_sink(None);
        m.contests_opened.inc();
        m.set_worker_busy_frac(2, 0.5);
        let snap = m.snapshot();
        assert_eq!(snap.counter("contests/opened"), 1);
        assert_eq!(snap.gauge("worker/2/busy_frac"), Some(0.5));
    }
}
