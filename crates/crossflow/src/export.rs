//! Streaming JSONL export of run output.
//!
//! One run becomes one stream of newline-delimited JSON objects, each
//! tagged with a `"type"` discriminator:
//!
//! | `type`     | payload                                              |
//! |------------|------------------------------------------------------|
//! | `run_meta` | schema version, runtime/scheduler names, seed, names |
//! | `trace`    | one [`TraceEvent`] (data plane: job lifecycle)       |
//! | `sched`    | one [`SchedEvent`] (control plane: contests, faults) |
//! | `record`   | the run's [`RunRecord`] (§6.1 metrics)               |
//! | `metrics`  | the run's [`RegistrySnapshot`]                       |
//!
//! Both runtimes emit the same vocabulary, so a stream parses
//! identically whether it came from the simulation engine or the
//! threaded runtime; [`parse_run_stream`] round-trips everything
//! [`write_run_stream`] emits. The schema is versioned via
//! [`SCHEMA_VERSION`] on the `run_meta` line; consumers should reject
//! newer versions rather than misread them.

use std::io::{self, Write};

use crossbid_metrics::{Json, JsonError, JsonlWriter, RegistrySnapshot, RunRecord};
use crossbid_simcore::SimTime;

use crate::engine::RunOutput;
use crate::job::{JobId, ShardId, WorkerId};
use crate::trace::{SchedEvent, SchedEventKind, TraceEvent, TraceKind};

/// Version stamped into every `run_meta` line. Bump on any change to
/// line shapes or the event vocabulary.
///
/// v2 added the `submitted`, `offered`, `rejected` and `completed`
/// scheduler events, making the control-plane log self-contained for
/// the conservation invariants `crossbid-checker` asserts.
///
/// v3 added the at-least-once reliability events `assign_acked`,
/// `lease_expired` and `resent` (with its `attempt` field), emitted
/// by both runtimes when a [`crate::faults::NetFaultPlan`] is active.
///
/// v4 added the master-failover events `leader_elected` (with its
/// `term` field) and `failover_replayed` (with its `entries` field),
/// emitted when a [`crate::faults::MasterFaultPlan`] crashes the
/// leader and an elected standby rebuilds by log replay.
///
/// v5 added the federation hand-off events `spill_out` (with its
/// `to_shard` field) and `spill_in` (with its `from_shard` field) and
/// the elastic-membership events `worker_joined`, `worker_draining`
/// and `worker_removed`, emitted when a
/// [`crate::faults::MembershipPlan`] or a federation routing tier is
/// active.
///
/// v6 added the atomization events `task_offer` (with `root`, `task`,
/// `preds`, `total`), `task_bid` (with `root`, `task`,
/// `estimate_secs`), `task_assign` (with `root`, `task`,
/// `speculative`), `task_done` (with `root`, `task`) and the
/// speculation events `spec_launch` / `spec_cancel` (with `root`,
/// `task`), emitted when arrivals carry a
/// [`TaskDag`](crate::atomize::TaskDag).
///
/// v7 added the replicated-data-plane events `fetch_req` / `fetch_ok`
/// (with `object`, `from`), `fetch_fail` (with `object`, `from`,
/// `attempt`), `replica_add` (with `object`), `replica_drop` (with
/// `object`, `evicted`) and the re-replication repair events
/// `repair_start` (with `object`, `from`) / `repair_done` (with
/// `object`), emitted when a
/// [`ReplicationConfig`](crate::engine::ReplicationConfig) is active.
pub const SCHEMA_VERSION: u64 = 7;

/// The stream header: which run produced the lines that follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStreamMeta {
    /// Runtime name (`"sim"` or `"threaded"`).
    pub runtime: String,
    /// Scheduler name (e.g. `"bidding"`).
    pub scheduler: String,
    /// Worker-configuration preset name.
    pub worker_config: String,
    /// Job-configuration preset name.
    pub job_config: String,
    /// Iteration index within the session.
    pub iteration: u32,
    /// The iteration's derived seed.
    pub seed: u64,
}

impl RunStreamMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("type", Json::str("run_meta")),
            ("schema", Json::UInt(SCHEMA_VERSION)),
            ("runtime", Json::str(&self.runtime)),
            ("scheduler", Json::str(&self.scheduler)),
            ("worker_config", Json::str(&self.worker_config)),
            ("job_config", Json::str(&self.job_config)),
            ("iteration", Json::UInt(self.iteration as u64)),
            ("seed", Json::UInt(self.seed)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let schema = v.req_u64("schema")?;
        if schema > SCHEMA_VERSION {
            return Err(JsonError(format!(
                "run stream schema {schema} is newer than supported {SCHEMA_VERSION}"
            )));
        }
        Ok(RunStreamMeta {
            runtime: v.req_str("runtime")?.to_string(),
            scheduler: v.req_str("scheduler")?.to_string(),
            worker_config: v.req_str("worker_config")?.to_string(),
            job_config: v.req_str("job_config")?.to_string(),
            iteration: v.req_u64("iteration")? as u32,
            seed: v.req_u64("seed")?,
        })
    }
}

/// One parsed line of a run stream.
#[derive(Debug, Clone)]
pub enum RunStreamLine {
    /// The `run_meta` header.
    Meta(RunStreamMeta),
    /// A data-plane lifecycle event.
    Trace(TraceEvent),
    /// A control-plane scheduler event.
    Sched(SchedEvent),
    /// The run's §6.1 record.
    Record(RunRecord),
    /// The run's metrics snapshot.
    Metrics(RegistrySnapshot),
}

fn trace_kind_name(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::Queued => "queued",
        TraceKind::Started => "started",
        TraceKind::Fetched => "fetched",
        TraceKind::Finished => "finished",
    }
}

fn trace_kind_from(name: &str) -> Result<TraceKind, JsonError> {
    match name {
        "queued" => Ok(TraceKind::Queued),
        "started" => Ok(TraceKind::Started),
        "fetched" => Ok(TraceKind::Fetched),
        "finished" => Ok(TraceKind::Finished),
        other => Err(JsonError(format!("unknown trace kind {other:?}"))),
    }
}

fn trace_event_to_json(ev: &TraceEvent) -> Json {
    Json::obj([
        ("type", Json::str("trace")),
        ("job", Json::UInt(ev.job.0)),
        ("worker", Json::UInt(ev.worker.0 as u64)),
        ("kind", Json::str(trace_kind_name(ev.kind))),
        ("at_secs", Json::Num(ev.at.as_secs_f64())),
    ])
}

fn trace_event_from_json(v: &Json) -> Result<TraceEvent, JsonError> {
    Ok(TraceEvent {
        job: JobId(v.req_u64("job")?),
        worker: WorkerId(v.req_u64("worker")? as u32),
        kind: trace_kind_from(v.req_str("kind")?)?,
        at: SimTime::from_secs_f64(v.req_f64("at_secs")?),
    })
}

/// The stable wire name of a scheduler event kind.
pub fn sched_kind_name(kind: &SchedEventKind) -> &'static str {
    match kind {
        SchedEventKind::Submitted => "submitted",
        SchedEventKind::ContestOpened => "contest_opened",
        SchedEventKind::BidReceived { .. } => "bid_received",
        SchedEventKind::Assigned => "assigned",
        SchedEventKind::ContestClosed { .. } => "contest_closed",
        SchedEventKind::Offered => "offered",
        SchedEventKind::Rejected => "rejected",
        SchedEventKind::Completed => "completed",
        SchedEventKind::Crash => "crash",
        SchedEventKind::Recover => "recover",
        SchedEventKind::Redistributed => "redistributed",
        SchedEventKind::AssignAcked => "assign_acked",
        SchedEventKind::LeaseExpired => "lease_expired",
        SchedEventKind::Resent { .. } => "resent",
        SchedEventKind::LeaderElected { .. } => "leader_elected",
        SchedEventKind::FailoverReplayed { .. } => "failover_replayed",
        SchedEventKind::SpillOut { .. } => "spill_out",
        SchedEventKind::SpillIn { .. } => "spill_in",
        SchedEventKind::WorkerJoined => "worker_joined",
        SchedEventKind::WorkerDraining => "worker_draining",
        SchedEventKind::WorkerRemoved => "worker_removed",
        SchedEventKind::TaskOffer { .. } => "task_offer",
        SchedEventKind::TaskBid { .. } => "task_bid",
        SchedEventKind::TaskAssign { .. } => "task_assign",
        SchedEventKind::TaskDone { .. } => "task_done",
        SchedEventKind::SpecLaunch { .. } => "spec_launch",
        SchedEventKind::SpecCancel { .. } => "spec_cancel",
        SchedEventKind::FetchReq { .. } => "fetch_req",
        SchedEventKind::FetchOk { .. } => "fetch_ok",
        SchedEventKind::FetchFail { .. } => "fetch_fail",
        SchedEventKind::ReplicaAdd { .. } => "replica_add",
        SchedEventKind::ReplicaDrop { .. } => "replica_drop",
        SchedEventKind::RepairStart { .. } => "repair_start",
        SchedEventKind::RepairDone { .. } => "repair_done",
    }
}

fn sched_event_to_json(ev: &SchedEvent) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::str("sched")),
        ("at_secs".to_string(), Json::Num(ev.at.as_secs_f64())),
        (
            "worker".to_string(),
            match ev.worker {
                Some(w) => Json::UInt(w.0 as u64),
                None => Json::Null,
            },
        ),
        (
            "job".to_string(),
            match ev.job {
                Some(j) => Json::UInt(j.0),
                None => Json::Null,
            },
        ),
        ("kind".to_string(), Json::str(sched_kind_name(&ev.kind))),
    ];
    match ev.kind {
        SchedEventKind::BidReceived { estimate_secs } => {
            fields.push(("estimate_secs".to_string(), Json::Num(estimate_secs)));
        }
        SchedEventKind::ContestClosed {
            timed_out,
            fallback,
        } => {
            fields.push(("timed_out".to_string(), Json::Bool(timed_out)));
            fields.push(("fallback".to_string(), Json::Bool(fallback)));
        }
        SchedEventKind::Resent { attempt } => {
            fields.push(("attempt".to_string(), Json::UInt(attempt as u64)));
        }
        SchedEventKind::LeaderElected { term } => {
            fields.push(("term".to_string(), Json::UInt(term as u64)));
        }
        SchedEventKind::FailoverReplayed { entries } => {
            fields.push(("entries".to_string(), Json::UInt(entries)));
        }
        SchedEventKind::SpillOut { to_shard } => {
            fields.push(("to_shard".to_string(), Json::UInt(to_shard.0 as u64)));
        }
        SchedEventKind::SpillIn { from_shard } => {
            fields.push(("from_shard".to_string(), Json::UInt(from_shard.0 as u64)));
        }
        SchedEventKind::TaskOffer {
            root,
            task,
            preds,
            total,
        } => {
            fields.push(("root".to_string(), Json::UInt(root.0)));
            fields.push(("task".to_string(), Json::UInt(task as u64)));
            fields.push(("preds".to_string(), Json::UInt(preds)));
            fields.push(("total".to_string(), Json::UInt(total as u64)));
        }
        SchedEventKind::TaskBid {
            root,
            task,
            estimate_secs,
        } => {
            fields.push(("root".to_string(), Json::UInt(root.0)));
            fields.push(("task".to_string(), Json::UInt(task as u64)));
            fields.push(("estimate_secs".to_string(), Json::Num(estimate_secs)));
        }
        SchedEventKind::TaskAssign {
            root,
            task,
            speculative,
        } => {
            fields.push(("root".to_string(), Json::UInt(root.0)));
            fields.push(("task".to_string(), Json::UInt(task as u64)));
            fields.push(("speculative".to_string(), Json::Bool(speculative)));
        }
        SchedEventKind::TaskDone { root, task }
        | SchedEventKind::SpecLaunch { root, task }
        | SchedEventKind::SpecCancel { root, task } => {
            fields.push(("root".to_string(), Json::UInt(root.0)));
            fields.push(("task".to_string(), Json::UInt(task as u64)));
        }
        SchedEventKind::FetchReq { object, from } | SchedEventKind::FetchOk { object, from } => {
            fields.push(("object".to_string(), Json::UInt(object)));
            fields.push(("from".to_string(), Json::UInt(from.0 as u64)));
        }
        SchedEventKind::FetchFail {
            object,
            from,
            attempt,
        } => {
            fields.push(("object".to_string(), Json::UInt(object)));
            fields.push(("from".to_string(), Json::UInt(from.0 as u64)));
            fields.push(("attempt".to_string(), Json::UInt(attempt as u64)));
        }
        SchedEventKind::ReplicaAdd { object } | SchedEventKind::RepairDone { object } => {
            fields.push(("object".to_string(), Json::UInt(object)));
        }
        SchedEventKind::ReplicaDrop { object, evicted } => {
            fields.push(("object".to_string(), Json::UInt(object)));
            fields.push(("evicted".to_string(), Json::Bool(evicted)));
        }
        SchedEventKind::RepairStart { object, from } => {
            fields.push(("object".to_string(), Json::UInt(object)));
            fields.push(("from".to_string(), Json::UInt(from.0 as u64)));
        }
        _ => {}
    }
    Json::Obj(fields)
}

fn sched_event_from_json(v: &Json) -> Result<SchedEvent, JsonError> {
    let kind = match v.req_str("kind")? {
        "submitted" => SchedEventKind::Submitted,
        "offered" => SchedEventKind::Offered,
        "rejected" => SchedEventKind::Rejected,
        "completed" => SchedEventKind::Completed,
        "contest_opened" => SchedEventKind::ContestOpened,
        "bid_received" => SchedEventKind::BidReceived {
            estimate_secs: v.req_f64("estimate_secs")?,
        },
        "assigned" => SchedEventKind::Assigned,
        "contest_closed" => SchedEventKind::ContestClosed {
            timed_out: v.req_bool("timed_out")?,
            fallback: v.req_bool("fallback")?,
        },
        "crash" => SchedEventKind::Crash,
        "recover" => SchedEventKind::Recover,
        "redistributed" => SchedEventKind::Redistributed,
        "assign_acked" => SchedEventKind::AssignAcked,
        "lease_expired" => SchedEventKind::LeaseExpired,
        "resent" => SchedEventKind::Resent {
            attempt: v.req_u64("attempt")? as u32,
        },
        "leader_elected" => SchedEventKind::LeaderElected {
            term: v.req_u64("term")? as u32,
        },
        "failover_replayed" => SchedEventKind::FailoverReplayed {
            entries: v.req_u64("entries")?,
        },
        "spill_out" => SchedEventKind::SpillOut {
            to_shard: ShardId(v.req_u64("to_shard")? as u16),
        },
        "spill_in" => SchedEventKind::SpillIn {
            from_shard: ShardId(v.req_u64("from_shard")? as u16),
        },
        "worker_joined" => SchedEventKind::WorkerJoined,
        "worker_draining" => SchedEventKind::WorkerDraining,
        "worker_removed" => SchedEventKind::WorkerRemoved,
        "task_offer" => SchedEventKind::TaskOffer {
            root: JobId(v.req_u64("root")?),
            task: v.req_u64("task")? as u32,
            preds: v.req_u64("preds")?,
            total: v.req_u64("total")? as u32,
        },
        "task_bid" => SchedEventKind::TaskBid {
            root: JobId(v.req_u64("root")?),
            task: v.req_u64("task")? as u32,
            estimate_secs: v.req_f64("estimate_secs")?,
        },
        "task_assign" => SchedEventKind::TaskAssign {
            root: JobId(v.req_u64("root")?),
            task: v.req_u64("task")? as u32,
            speculative: v.req_bool("speculative")?,
        },
        "task_done" => SchedEventKind::TaskDone {
            root: JobId(v.req_u64("root")?),
            task: v.req_u64("task")? as u32,
        },
        "spec_launch" => SchedEventKind::SpecLaunch {
            root: JobId(v.req_u64("root")?),
            task: v.req_u64("task")? as u32,
        },
        "spec_cancel" => SchedEventKind::SpecCancel {
            root: JobId(v.req_u64("root")?),
            task: v.req_u64("task")? as u32,
        },
        "fetch_req" => SchedEventKind::FetchReq {
            object: v.req_u64("object")?,
            from: WorkerId(v.req_u64("from")? as u32),
        },
        "fetch_ok" => SchedEventKind::FetchOk {
            object: v.req_u64("object")?,
            from: WorkerId(v.req_u64("from")? as u32),
        },
        "fetch_fail" => SchedEventKind::FetchFail {
            object: v.req_u64("object")?,
            from: WorkerId(v.req_u64("from")? as u32),
            attempt: v.req_u64("attempt")? as u32,
        },
        "replica_add" => SchedEventKind::ReplicaAdd {
            object: v.req_u64("object")?,
        },
        "replica_drop" => SchedEventKind::ReplicaDrop {
            object: v.req_u64("object")?,
            evicted: v.req_bool("evicted")?,
        },
        "repair_start" => SchedEventKind::RepairStart {
            object: v.req_u64("object")?,
            from: WorkerId(v.req_u64("from")? as u32),
        },
        "repair_done" => SchedEventKind::RepairDone {
            object: v.req_u64("object")?,
        },
        other => return Err(JsonError(format!("unknown sched kind {other:?}"))),
    };
    let opt_u64 = |key: &str| -> Result<Option<u64>, JsonError> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| JsonError(format!("field {key:?} is not an integer"))),
        }
    };
    Ok(SchedEvent {
        at: SimTime::from_secs_f64(v.req_f64("at_secs")?),
        worker: opt_u64("worker")?.map(|w| WorkerId(w as u32)),
        job: opt_u64("job")?.map(JobId),
        kind,
    })
}

impl RunStreamLine {
    /// Encode this line.
    pub fn to_json(&self) -> Json {
        match self {
            RunStreamLine::Meta(m) => m.to_json(),
            RunStreamLine::Trace(ev) => trace_event_to_json(ev),
            RunStreamLine::Sched(ev) => sched_event_to_json(ev),
            RunStreamLine::Record(r) => {
                let mut fields = vec![("type".to_string(), Json::str("record"))];
                if let Json::Obj(inner) = r.to_json() {
                    fields.extend(inner);
                }
                Json::Obj(fields)
            }
            RunStreamLine::Metrics(s) => {
                Json::obj([("type", Json::str("metrics")), ("snapshot", s.to_json())])
            }
        }
    }

    /// Decode one line.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.req_str("type")? {
            "run_meta" => Ok(RunStreamLine::Meta(RunStreamMeta::from_json(v)?)),
            "trace" => Ok(RunStreamLine::Trace(trace_event_from_json(v)?)),
            "sched" => Ok(RunStreamLine::Sched(sched_event_from_json(v)?)),
            "record" => Ok(RunStreamLine::Record(RunRecord::from_json(v)?)),
            "metrics" => Ok(RunStreamLine::Metrics(RegistrySnapshot::from_json(
                v.req("snapshot")?,
            )?)),
            other => Err(JsonError(format!("unknown stream line type {other:?}"))),
        }
    }
}

/// Write one run as a JSONL stream: the `run_meta` header, every
/// trace event, every scheduler event, the record, and the metrics
/// snapshot. Returns the number of lines written.
pub fn write_run_stream<W: Write>(
    out: W,
    meta: &RunStreamMeta,
    run: &RunOutput,
) -> io::Result<u64> {
    let mut w = JsonlWriter::new(out);
    w.write(&RunStreamLine::Meta(meta.clone()).to_json())?;
    for ev in run.trace.events() {
        w.write(&RunStreamLine::Trace(*ev).to_json())?;
    }
    for ev in run.sched_log.events() {
        w.write(&RunStreamLine::Sched(*ev).to_json())?;
    }
    w.write(&RunStreamLine::Record(run.record.clone()).to_json())?;
    w.write(&RunStreamLine::Metrics(run.metrics.clone()).to_json())?;
    let lines = w.lines();
    w.finish()?;
    Ok(lines)
}

/// Parse a JSONL run stream produced by [`write_run_stream`] (or any
/// concatenation of such streams).
pub fn parse_run_stream(text: &str) -> Result<Vec<RunStreamLine>, JsonError> {
    crossbid_metrics::parse_jsonl(text)?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            RunStreamLine::from_json(v).map_err(|e| JsonError(format!("line {}: {}", i + 1, e.0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn trace_events_round_trip() {
        for kind in [
            TraceKind::Queued,
            TraceKind::Started,
            TraceKind::Fetched,
            TraceKind::Finished,
        ] {
            let ev = TraceEvent {
                job: JobId(7),
                worker: WorkerId(2),
                kind,
                at: t(12.5),
            };
            let back = trace_event_from_json(&trace_event_to_json(&ev)).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn sched_events_round_trip_all_kinds() {
        let kinds = [
            SchedEventKind::Submitted,
            SchedEventKind::ContestOpened,
            SchedEventKind::BidReceived {
                estimate_secs: 3.25,
            },
            SchedEventKind::Assigned,
            SchedEventKind::ContestClosed {
                timed_out: true,
                fallback: false,
            },
            SchedEventKind::Offered,
            SchedEventKind::Rejected,
            SchedEventKind::Completed,
            SchedEventKind::Crash,
            SchedEventKind::Recover,
            SchedEventKind::Redistributed,
            SchedEventKind::AssignAcked,
            SchedEventKind::LeaseExpired,
            SchedEventKind::Resent { attempt: 2 },
            SchedEventKind::LeaderElected { term: 3 },
            SchedEventKind::FailoverReplayed { entries: 42 },
            SchedEventKind::SpillOut {
                to_shard: ShardId(2),
            },
            SchedEventKind::SpillIn {
                from_shard: ShardId(1),
            },
            SchedEventKind::WorkerJoined,
            SchedEventKind::WorkerDraining,
            SchedEventKind::WorkerRemoved,
            SchedEventKind::TaskOffer {
                root: JobId(1000),
                task: 3,
                preds: 0b101,
                total: 7,
            },
            SchedEventKind::TaskBid {
                root: JobId(1000),
                task: 3,
                estimate_secs: 1.75,
            },
            SchedEventKind::TaskAssign {
                root: JobId(1000),
                task: 3,
                speculative: true,
            },
            SchedEventKind::TaskDone {
                root: JobId(1000),
                task: 3,
            },
            SchedEventKind::SpecLaunch {
                root: JobId(1000),
                task: 3,
            },
            SchedEventKind::SpecCancel {
                root: JobId(1000),
                task: 3,
            },
            SchedEventKind::FetchReq {
                object: 42,
                from: WorkerId(3),
            },
            SchedEventKind::FetchOk {
                object: 42,
                from: WorkerId(3),
            },
            SchedEventKind::FetchFail {
                object: 42,
                from: WorkerId(3),
                attempt: 1,
            },
            SchedEventKind::ReplicaAdd { object: 42 },
            SchedEventKind::ReplicaDrop {
                object: 42,
                evicted: true,
            },
            SchedEventKind::RepairStart {
                object: 42,
                from: WorkerId(5),
            },
            SchedEventKind::RepairDone { object: 42 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = SchedEvent {
                at: t(i as f64),
                worker: if i % 2 == 0 { Some(WorkerId(1)) } else { None },
                job: if i % 3 == 0 {
                    None
                } else {
                    Some(JobId(i as u64))
                },
                kind,
            };
            let back = sched_event_from_json(&sched_event_to_json(&ev)).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn meta_rejects_newer_schema() {
        let mut m = RunStreamMeta {
            runtime: "sim".into(),
            scheduler: "bidding".into(),
            worker_config: "w".into(),
            job_config: "j".into(),
            iteration: 0,
            seed: 1,
        };
        let good = m.to_json();
        m = RunStreamMeta::from_json(&good).unwrap();
        assert_eq!(m.runtime, "sim");
        let Json::Obj(mut fields) = good else {
            panic!()
        };
        for (k, v) in &mut fields {
            if k == "schema" {
                *v = Json::UInt(SCHEMA_VERSION + 1);
            }
        }
        assert!(RunStreamMeta::from_json(&Json::Obj(fields)).is_err());
    }

    #[test]
    fn unknown_line_type_is_an_error() {
        let err = parse_run_stream("{\"type\":\"mystery\"}").unwrap_err();
        assert!(err.0.contains("mystery"), "{err}");
    }
}
