//! The Crossflow **Baseline** scheduler (§4 of the paper).
//!
//! "Crossflow currently deals with scheduling by enabling worker
//! nodes to pull jobs from the master. Before being executed, each
//! pulled job is internally evaluated by the worker to check if it
//! conforms to that worker's acceptance criteria. If it does, the job
//! is processed, otherwise, it is returned to the master so another
//! worker can consider it. ... workers are required to keep track of
//! any jobs they have previously declined. This enables them to accept
//! such jobs upon a second attempt."
//!
//! Concretely:
//! * idle workers register with the master (pull);
//! * the master offers the head of its ready queue to the
//!   longest-idle worker;
//! * the worker's acceptance criterion is **data locality**: accept if
//!   the resource is already in the local store — or if this worker
//!   has declined this very job before (the reject-once rule);
//! * a rejected job is immediately re-offered to the next idle worker.

use std::collections::{HashMap, VecDeque};

use crossbid_metrics::SchedulerKind;

use crate::idle::IdlePool;
use crate::job::{Job, JobId, WorkerId};
use crate::scheduler::{
    Allocator, JobView, MasterScheduler, SchedCtx, WorkerPolicy, WorkerToMaster, WorkerView,
};

/// Master side of the Baseline: a ready queue plus the shared
/// [`IdlePool`] of idle workers (the same pool the threaded master
/// uses, so the two runtimes share one re-offer tie-break rule).
#[derive(Debug, Default)]
pub struct BaselineMaster {
    ready: VecDeque<Job>,
    idle: IdlePool,
    /// Who last rejected each in-flight job: a re-offer prefers any
    /// *other* idle worker, so the rejection can route the job
    /// somewhere better. Entries clear when the job completes.
    rejected_by: HashMap<JobId, WorkerId>,
}

impl BaselineMaster {
    /// Fresh master state.
    pub fn new() -> Self {
        Self::default()
    }

    fn dispatch(&mut self, ctx: &mut SchedCtx) {
        while !self.ready.is_empty() && !self.idle.is_empty() {
            let job = self.ready.pop_front().expect("checked non-empty");
            let avoid = self.rejected_by.get(&job.id).map(|w| w.0);
            let worker = self
                .idle
                .pop_preferring_not(avoid)
                .expect("checked non-empty");
            ctx.offer(WorkerId(worker), job);
        }
    }
}

impl MasterScheduler for BaselineMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Baseline
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        self.ready.push_back(job);
        self.dispatch(ctx);
    }

    fn on_worker_message(&mut self, from: WorkerId, msg: WorkerToMaster, ctx: &mut SchedCtx) {
        match msg {
            WorkerToMaster::Idle => {
                self.idle.push(from.0);
                self.dispatch(ctx);
            }
            WorkerToMaster::Reject { job } => {
                // The worker stays idle; remembering it as the
                // rejector makes dispatch consider every other idle
                // node first.
                self.idle.push(from.0);
                self.rejected_by.insert(job.id, from);
                self.ready.push_front(job);
                self.dispatch(ctx);
            }
            WorkerToMaster::Bid { .. } => {
                // The Baseline runs no contests; a stray bid is a
                // protocol error from a misconfigured worker. Ignore.
            }
        }
    }

    fn on_job_done(&mut self, _worker: WorkerId, job: &Job, _ctx: &mut SchedCtx) {
        self.rejected_by.remove(&job.id);
    }

    fn on_worker_failed(&mut self, worker: WorkerId, _ctx: &mut SchedCtx) {
        // Never offer to a dead worker again (until it re-registers by
        // announcing idleness after recovery).
        self.idle.remove(worker.0);
    }

    fn restore_rejection(&mut self, job: JobId, worker: WorkerId) {
        // Replayed after failover so a re-offered job still avoids the
        // worker the committed log says declined it.
        self.rejected_by.insert(job, worker);
    }
}

/// Worker side of the Baseline: the locality acceptance criterion plus
/// the reject-once obligation.
#[derive(Debug, Default, Clone, Copy)]
pub struct BaselinePolicy;

impl WorkerPolicy for BaselinePolicy {
    fn accept_offer(&mut self, view: &WorkerView, _job: &JobView) -> bool {
        view.has_data || view.declined_before
    }

    fn bid(&mut self, _view: &WorkerView, _job: &JobView) -> Option<f64> {
        None
    }
}

/// The bundled Baseline allocator.
#[derive(Debug, Default, Clone, Copy)]
pub struct BaselineAllocator;

impl Allocator for BaselineAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Baseline
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(BaselineMaster::new())
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        Box::new(BaselinePolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Payload, TaskId};
    use crate::scheduler::{SchedAction, WorkerHandle};
    use crossbid_simcore::{RngStream, SimTime};

    fn mk_job(id: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: None,
            work_bytes: 0,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn handles(n: u32) -> Vec<WorkerHandle> {
        (0..n)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect()
    }

    fn drive<F: FnOnce(&mut BaselineMaster, &mut SchedCtx)>(
        m: &mut BaselineMaster,
        f: F,
    ) -> Vec<SchedAction> {
        let workers = handles(3);
        let mut rng = RngStream::from_seed(0);
        let mut token = 0;
        let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
        f(m, &mut ctx);
        ctx.take_actions()
    }

    #[test]
    fn job_waits_until_a_worker_is_idle() {
        let mut m = BaselineMaster::new();
        let a = drive(&mut m, |m, ctx| m.on_job(mk_job(1), ctx));
        assert!(a.is_empty(), "no idle worker yet");
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(2), WorkerToMaster::Idle, ctx)
        });
        assert_eq!(a.len(), 1);
        assert!(matches!(
            a[0],
            SchedAction::Offer {
                worker: WorkerId(2),
                ..
            }
        ));
    }

    #[test]
    fn idle_worker_gets_job_on_arrival() {
        let mut m = BaselineMaster::new();
        drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        let a = drive(&mut m, |m, ctx| m.on_job(mk_job(1), ctx));
        assert!(matches!(
            a[0],
            SchedAction::Offer {
                worker: WorkerId(0),
                ..
            }
        ));
    }

    #[test]
    fn reject_reoffers_to_next_idle_worker() {
        let mut m = BaselineMaster::new();
        drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx);
        });
        let a = drive(&mut m, |m, ctx| m.on_job(mk_job(1), ctx));
        assert_eq!(a.len(), 1);
        // Worker 1 becomes idle, then worker 0 rejects.
        drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(1), WorkerToMaster::Idle, ctx)
        });
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Reject { job: mk_job(1) }, ctx)
        });
        assert_eq!(a.len(), 1);
        assert!(
            matches!(
                a[0],
                SchedAction::Offer {
                    worker: WorkerId(1),
                    ..
                }
            ),
            "other idle worker considered first: {a:?}"
        );
    }

    #[test]
    fn lone_rejecting_worker_gets_job_back() {
        let mut m = BaselineMaster::new();
        drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        drive(&mut m, |m, ctx| m.on_job(mk_job(7), ctx));
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Reject { job: mk_job(7) }, ctx)
        });
        // Only idle worker: the job comes straight back — second offer,
        // which the policy must accept.
        assert!(matches!(
            a[0],
            SchedAction::Offer {
                worker: WorkerId(0),
                ..
            }
        ));
    }

    #[test]
    fn rejected_job_has_priority_over_queue() {
        let mut m = BaselineMaster::new();
        drive(&mut m, |m, ctx| m.on_job(mk_job(1), ctx));
        drive(&mut m, |m, ctx| m.on_job(mk_job(2), ctx));
        drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        // job 1 went to worker 0; reject it.
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Reject { job: mk_job(1) }, ctx)
        });
        // Re-offered ahead of job 2.
        match &a[0] {
            SchedAction::Offer { job, .. } => assert_eq!(job.id, JobId(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_idle_messages_are_deduped() {
        let mut m = BaselineMaster::new();
        drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx);
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx);
        });
        let a = drive(&mut m, |m, ctx| {
            m.on_job(mk_job(1), ctx);
            m.on_job(mk_job(2), ctx);
        });
        assert_eq!(a.len(), 1, "one worker must not get two offers: {a:?}");
    }

    #[test]
    fn policy_accepts_local_or_second_offer() {
        let mut p = BaselinePolicy;
        let mut view = WorkerView {
            id: WorkerId(0),
            now: SimTime::ZERO,
            backlog_secs: 0.0,
            has_data: false,
            declined_before: false,
            est_fetch_secs: 5.0,
            est_proc_secs: 1.0,
            queue_len: 0,
        };
        let job = JobView {
            id: JobId(1),
            resource_bytes: 100,
        };
        assert!(!p.accept_offer(&view, &job), "no data, first offer");
        view.has_data = true;
        assert!(p.accept_offer(&view, &job), "data is local");
        view.has_data = false;
        view.declined_before = true;
        assert!(p.accept_offer(&view, &job), "second offer must be taken");
        assert!(p.bid(&view, &job).is_none());
    }

    #[test]
    fn allocator_bundles() {
        let alloc = BaselineAllocator;
        assert_eq!(alloc.kind(), SchedulerKind::Baseline);
        assert_eq!(alloc.master().kind(), SchedulerKind::Baseline);
    }
}
