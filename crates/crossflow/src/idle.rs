//! Shared idle-worker pool.
//!
//! Both masters — the sim [`crate::baseline::BaselineMaster`] and the
//! threaded runtime's baseline pump — keep a FIFO of idle workers and
//! re-offer a rejected job to the *next* idle worker, preferring any
//! worker other than the one that just rejected it (reject-once,
//! §4). The two used to duplicate that logic with subtly different
//! pick rules, which let their placements drift apart under
//! duplicated `Idle` messages; this pool is now the single
//! implementation.
//!
//! Operations are O(1) (`push`, `contains`, [`IdlePool::pop_preferring_not`])
//! via a membership bitmap over dense worker ids, replacing the
//! linear `iter().position(..)` scans that sat on the offer hot path.
//! Only crash handling ([`IdlePool::remove`]) and the
//! mutation-testing pick ([`IdlePool::pop_exact_or_front`]) walk the
//! queue.

use std::collections::VecDeque;

/// FIFO of idle workers with O(1) dedup and a rejector-aware pop.
/// Worker ids are expected to be dense (indices into the roster).
#[derive(Debug, Default, Clone)]
pub struct IdlePool {
    order: VecDeque<u32>,
    member: Vec<bool>,
}

impl IdlePool {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn contains(&self, w: u32) -> bool {
        self.member.get(w as usize).copied().unwrap_or(false)
    }

    /// Register `w` as idle. Duplicate registrations are ignored
    /// (at-least-once delivery can repeat an `Idle` message). Returns
    /// whether the worker was inserted.
    pub fn push(&mut self, w: u32) -> bool {
        if self.contains(w) {
            return false;
        }
        if self.member.len() <= w as usize {
            self.member.resize(w as usize + 1, false);
        }
        self.member[w as usize] = true;
        self.order.push_back(w);
        true
    }

    /// Pop the longest-idle worker, preferring any worker other than
    /// `avoid` (the rejector of the job being re-offered). Falls back
    /// to `avoid` itself when it is the only idle worker — reject-once
    /// guarantees it will accept the rebound. Seniority of a skipped
    /// `avoid` is preserved (it stays at the front).
    pub fn pop_preferring_not(&mut self, avoid: Option<u32>) -> Option<u32> {
        let first = self.order.pop_front()?;
        if Some(first) == avoid {
            if let Some(second) = self.order.pop_front() {
                // Skip the rejector but keep its place in line.
                self.order.push_front(first);
                self.member[second as usize] = false;
                return Some(second);
            }
        }
        self.member[first as usize] = false;
        Some(first)
    }

    /// The reintroduced-bug pick used by mutation testing
    /// (`ReofferToRejector`): pop exactly `prefer` if it is idle, else
    /// the front. O(n), acceptable off the healthy path.
    pub fn pop_exact_or_front(&mut self, prefer: Option<u32>) -> Option<u32> {
        let pos = prefer
            .filter(|r| self.contains(*r))
            .and_then(|r| self.order.iter().position(|w| *w == r))
            .unwrap_or(0);
        let w = self.order.remove(pos)?;
        self.member[w as usize] = false;
        Some(w)
    }

    /// Remove `w` wherever it is (crash handling). O(n).
    pub fn remove(&mut self, w: u32) {
        if self.contains(w) {
            self.order.retain(|x| *x != w);
            self.member[w as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_dedup() {
        let mut p = IdlePool::new();
        assert!(p.push(2));
        assert!(p.push(0));
        assert!(!p.push(2), "duplicate registration ignored");
        assert_eq!(p.len(), 2);
        assert_eq!(p.pop_preferring_not(None), Some(2));
        assert_eq!(p.pop_preferring_not(None), Some(0));
        assert_eq!(p.pop_preferring_not(None), None);
        assert!(p.is_empty());
    }

    #[test]
    fn popped_worker_can_reregister() {
        let mut p = IdlePool::new();
        p.push(1);
        assert_eq!(p.pop_preferring_not(None), Some(1));
        assert!(!p.contains(1));
        assert!(p.push(1), "worker idles again after finishing");
    }

    #[test]
    fn avoid_prefers_another_worker_and_keeps_seniority() {
        let mut p = IdlePool::new();
        p.push(5);
        p.push(9);
        p.push(3);
        // 5 rejected the job: 9 (next in line) gets it, 5 stays at the
        // front of the queue.
        assert_eq!(p.pop_preferring_not(Some(5)), Some(9));
        assert!(p.contains(5));
        assert_eq!(p.pop_preferring_not(None), Some(5));
        assert_eq!(p.pop_preferring_not(None), Some(3));
    }

    #[test]
    fn lone_rejector_gets_the_rebound() {
        let mut p = IdlePool::new();
        p.push(4);
        assert_eq!(p.pop_preferring_not(Some(4)), Some(4));
        assert!(p.is_empty());
    }

    #[test]
    fn avoid_not_at_front_changes_nothing() {
        let mut p = IdlePool::new();
        p.push(1);
        p.push(2);
        assert_eq!(p.pop_preferring_not(Some(2)), Some(1));
        assert_eq!(p.pop_preferring_not(Some(2)), Some(2), "lone fallback");
    }

    #[test]
    fn exact_pick_takes_the_rejector_from_mid_queue() {
        let mut p = IdlePool::new();
        p.push(1);
        p.push(2);
        p.push(3);
        assert_eq!(p.pop_exact_or_front(Some(2)), Some(2));
        assert_eq!(p.pop_exact_or_front(None), Some(1));
        assert_eq!(p.pop_exact_or_front(Some(7)), Some(3), "absent → front");
    }

    #[test]
    fn remove_handles_crashes() {
        let mut p = IdlePool::new();
        p.push(0);
        p.push(1);
        p.remove(0);
        p.remove(42); // never idle: no-op
        assert!(!p.contains(0));
        assert_eq!(p.pop_preferring_not(None), Some(1));
        assert_eq!(p.pop_preferring_not(None), None);
    }
}
