//! The unified [`Runtime`] abstraction over both executors.
//!
//! The paper evaluates the same protocols twice: in the deterministic
//! discrete-event simulation (§6.3) and on real threads (§6.4). The
//! [`Runtime`] trait makes that duality explicit — a [`Session`]
//! (simulation) and a [`ThreadedSession`] (threads) both take a
//! workflow, an [`Allocator`] and an arrival stream, keep caches warm
//! across iterations, and return the same [`RunOutput`] (record,
//! trace, scheduler log, metrics snapshot). Experiments and tests can
//! be written once against `dyn Runtime` and executed on either.

use std::sync::Arc;

use crossbid_metrics::SchedulerKind;
use crossbid_simcore::SeedSequence;
use parking_lot::Mutex;

use crate::engine::{RunMeta, RunOutput};
use crate::job::Arrival;
use crate::scheduler::Allocator;
use crate::session::Session;
use crate::spec::RunSpec;
use crate::threaded::{run_threaded_with_shareds, ThreadedConfig, ThreadedScheduler, WorkerShared};
use crate::workflow::Workflow;

/// A stateful executor of workflow iterations.
///
/// Implementations keep worker caches (and, where applicable, learned
/// speeds) warm across iterations — §6.3.1's reason for running
/// multiple iterations in the first place.
pub trait Runtime {
    /// Short stable name ("sim" or "threaded") for logs and output
    /// labels.
    fn name(&self) -> &'static str;

    /// Run one iteration of `arrivals` through `workflow` under
    /// `allocator`. Per-iteration seeds derive from the spec seed, so
    /// iterations differ but a session replays reproducibly.
    fn run_iteration(
        &mut self,
        workflow: &mut Workflow,
        allocator: &dyn Allocator,
        arrivals: Vec<Arrival>,
    ) -> RunOutput;

    /// Iterations run so far.
    fn iterations_run(&self) -> u32;
}

impl Runtime for Session {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_iteration(
        &mut self,
        workflow: &mut Workflow,
        allocator: &dyn Allocator,
        arrivals: Vec<Arrival>,
    ) -> RunOutput {
        Session::run_iteration(self, workflow, allocator, arrivals)
    }

    fn iterations_run(&self) -> u32 {
        Session::iterations_run(self)
    }
}

/// A persistent-cache session on the threaded runtime — the
/// counterpart of [`Session`]. Worker caches, learned speeds and
/// cache statistics live in shared state that survives across
/// iterations; each [`run_iteration`](Runtime::run_iteration) spins
/// up fresh threads over that state.
pub struct ThreadedSession {
    spec: RunSpec,
    shareds: Vec<Arc<Mutex<WorkerShared>>>,
    iteration: u32,
}

impl ThreadedSession {
    /// Create a session over fresh (cold-cache) workers.
    pub fn from_spec(spec: RunSpec) -> Self {
        let shareds = spec
            .workers
            .iter()
            .map(|s| Arc::new(Mutex::new(WorkerShared::new(s.clone()))))
            .collect();
        ThreadedSession {
            spec,
            shareds,
            iteration: 0,
        }
    }

    /// The spec this session runs.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// Iterations run so far.
    pub fn iterations_run(&self) -> u32 {
        self.iteration
    }

    /// Run one iteration (see [`Runtime::run_iteration`]).
    ///
    /// # Panics
    /// The threaded runtime implements the bidding and Baseline
    /// protocols only; any other [`Allocator`] kind panics.
    pub fn run_iteration(
        &mut self,
        workflow: &mut Workflow,
        allocator: &dyn Allocator,
        arrivals: Vec<Arrival>,
    ) -> RunOutput {
        if let Err(e) = workflow.validate() {
            panic!("{}", crate::spec::SpecError::Workflow(e));
        }
        let iter_seed = SeedSequence::new(self.spec.seed).seed_for(1000 + self.iteration as u64);
        let scheduler = match allocator.kind() {
            SchedulerKind::Bidding => ThreadedScheduler::Bidding {
                window_secs: self.spec.contest_window_secs,
            },
            SchedulerKind::Baseline => ThreadedScheduler::Baseline,
            other => panic!(
                "the threaded runtime implements bidding and baseline, not {}",
                other.name()
            ),
        };
        let cfg = ThreadedConfig {
            time_scale: self.spec.time_scale,
            noise: self.spec.engine.noise.clone(),
            speed_learning: self.spec.engine.speed_learning,
            scheduler,
            seed: iter_seed,
            min_real_window: self.spec.min_real_window,
            faults: self.spec.engine.faults.clone(),
            trace: self.spec.engine.trace,
            metrics: self.spec.engine.metrics.clone(),
            chaos: self.spec.chaos.clone(),
            mutation: self.spec.mutation,
            netfaults: self.spec.engine.netfaults.clone(),
            master_faults: self.spec.engine.master_faults.clone(),
            membership: self.spec.engine.membership.clone(),
            shard: self.spec.engine.shard,
            atomize: self.spec.engine.atomize,
            replication: self.spec.engine.replication,
        };
        let meta = RunMeta {
            worker_config: self.spec.worker_config.clone(),
            job_config: self.spec.job_config.clone(),
            iteration: self.iteration,
            seed: iter_seed,
        };
        self.iteration += 1;
        run_threaded_with_shareds(
            &self.spec.workers,
            &self.shareds,
            &cfg,
            workflow,
            arrivals,
            &meta,
        )
    }
}

impl Runtime for ThreadedSession {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run_iteration(
        &mut self,
        workflow: &mut Workflow,
        allocator: &dyn Allocator,
        arrivals: Vec<Arrival>,
    ) -> RunOutput {
        ThreadedSession::run_iteration(self, workflow, allocator, arrivals)
    }

    fn iterations_run(&self) -> u32 {
        self.iteration
    }
}
