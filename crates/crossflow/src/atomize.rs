//! Job atomization: task DAGs, per-task locality bidding, and
//! speculative straggler re-bidding.
//!
//! The unit of allocation elsewhere in this crate is a whole job.
//! JASDA-style scheduler-driven atomization splits an arriving job
//! into a [`TaskDag`] — tasks with input artifacts, output sizes and
//! precedence edges — and lets the *existing* bidding protocol price
//! each task separately: every released task becomes an ordinary
//! [`Job`](crate::job::Job) flowing through the unchanged
//! contest/offer machinery, so locality pricing (which predecessor
//! outputs a worker already holds) and backlog avoidance fall out for
//! free. What this module adds is the DAG bookkeeping both runtimes
//! share:
//!
//! * **gating** — a task is released into allocation only when every
//!   predecessor has a committed `TaskDone` (the `TaskOffer` decision
//!   is committed to the replicated log *before* the task's job is
//!   submitted);
//! * **output crediting** — an effective completion inserts the task's
//!   output artifact into the executing worker's store, so downstream
//!   bids see the new locality;
//! * **speculation** — a straggler detector compares each in-flight
//!   task's age against the median completed-task duration and
//!   re-offers the slowest one speculatively (`SpecLaunch`); the first
//!   completion wins (`TaskDone`), the loser is cancelled exactly once
//!   (`SpecCancel`) and its eventual completion report is swallowed.
//!
//! The runtimes own id allocation, logging and message dispatch;
//! [`DagState`] makes the pure decisions, so the sim engine and the
//! threaded master cannot drift.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::job::{JobId, JobSpec, Payload, ResourceRef, TaskId};

/// Hard cap on tasks per DAG: predecessor sets are logged as a `u64`
/// bitmask (`TaskOffer { preds, .. }`), which keeps the log
/// self-describing for the oracle.
pub const MAX_DAG_TASKS: usize = 64;

/// One task of a [`TaskDag`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskNode {
    /// Bitmask of predecessor task indices. Topological by
    /// construction: a predecessor's index must be smaller than this
    /// task's own index ([`TaskDag::validate`]).
    pub preds: u64,
    /// The dominant input artifact — either an external resource (a
    /// repository to clone) or a predecessor's output, in which case
    /// bidding prices the transfer unless the bidder already holds it.
    pub input: Option<ResourceRef>,
    /// The artifact this task produces, credited to the executing
    /// worker's store on effective completion.
    pub output: ResourceRef,
    /// Bytes the processing step scans.
    pub work_bytes: u64,
    /// Fixed CPU seconds on a nominal-speed worker.
    pub cpu_secs: f64,
}

/// Errors a malformed DAG can carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// More than [`MAX_DAG_TASKS`] tasks.
    TooManyTasks(usize),
    /// An empty DAG cannot complete.
    Empty,
    /// Task `task` lists itself or a higher index as predecessor —
    /// the topological numbering (and thus acyclicity) is broken.
    ForwardPred {
        /// The offending task index.
        task: u32,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::TooManyTasks(n) => {
                write!(f, "DAG has {n} tasks, cap is {MAX_DAG_TASKS}")
            }
            DagError::Empty => write!(f, "DAG has no tasks"),
            DagError::ForwardPred { task } => {
                write!(f, "task {task} names itself or a later task as predecessor")
            }
        }
    }
}

/// A job's task DAG: what the atomizer turns one arriving job into.
///
/// Indices are topological by construction — `tasks[i].preds` may only
/// set bits `< i` — so acyclicity is a local check, not a search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDag {
    /// Tasks in topological order.
    pub tasks: Vec<TaskNode>,
}

impl TaskDag {
    /// Wrap a task list into a DAG, validating it.
    pub fn new(tasks: Vec<TaskNode>) -> Result<Self, DagError> {
        let dag = TaskDag { tasks };
        dag.validate()?;
        Ok(dag)
    }

    /// Check the structural invariants (size cap, topological preds).
    pub fn validate(&self) -> Result<(), DagError> {
        if self.tasks.is_empty() {
            return Err(DagError::Empty);
        }
        if self.tasks.len() > MAX_DAG_TASKS {
            return Err(DagError::TooManyTasks(self.tasks.len()));
        }
        for (i, t) in self.tasks.iter().enumerate() {
            // Bits at or above the task's own index would name itself
            // or a later task — a cycle under topological numbering.
            if t.preds >> i != 0 {
                return Err(DagError::ForwardPred { task: i as u32 });
            }
        }
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff the DAG has no tasks (never true for a validated DAG).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Bitmask with one bit per task.
    pub fn full_mask(&self) -> u64 {
        if self.tasks.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.tasks.len()) - 1
        }
    }

    /// The [`JobSpec`] for task `idx`, targeting workflow stage
    /// `stage`. The payload carries the task index so traces stay
    /// attributable.
    pub fn task_spec(&self, stage: TaskId, idx: u32) -> JobSpec {
        let t = &self.tasks[idx as usize];
        JobSpec {
            task: stage,
            resource: t.input,
            work_bytes: t.work_bytes,
            cpu_secs: t.cpu_secs,
            payload: Payload::Index(idx as u64),
            origin: None,
            dag: None,
        }
    }

    /// Collapse the whole DAG into a single job — the whole-job
    /// allocation baseline the atomized run is compared against. Work
    /// is the sum over tasks; the resource is the first external input
    /// (predecessor outputs are internal hand-offs, not a resource the
    /// collapsed job could fetch).
    pub fn collapsed_spec(&self, stage: TaskId) -> JobSpec {
        let cpu: f64 = self.tasks.iter().map(|t| t.cpu_secs).sum();
        let work: u64 = self.tasks.iter().map(|t| t.work_bytes).sum();
        let resource = self
            .tasks
            .iter()
            .find(|t| t.preds == 0 && t.input.is_some())
            .and_then(|t| t.input);
        JobSpec {
            task: stage,
            resource,
            work_bytes: work,
            cpu_secs: cpu,
            payload: Payload::None,
            origin: None,
            dag: None,
        }
    }
}

/// Atomization knobs, embedded in
/// [`EngineConfig`](crate::engine::EngineConfig) so both runtimes read
/// the same values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomizeConfig {
    /// An in-flight task is a straggler when its age exceeds
    /// `spec_factor ×` the median completed-task duration.
    pub spec_factor: f64,
    /// Virtual seconds between straggler sweeps.
    pub spec_check_secs: f64,
    /// Minimum completed tasks before the median is trusted.
    pub min_completed_for_spec: usize,
    /// Mutation hook: release every task at registration, ignoring
    /// predecessor gating (`ProtocolMutation::OfferBeforePredecessor`).
    pub release_all: bool,
    /// Mutation hook: skip the launched-once guard so the detector
    /// re-speculates a task it already speculated
    /// (`ProtocolMutation::DoubleSpeculate`).
    pub double_speculate: bool,
}

impl Default for AtomizeConfig {
    fn default() -> Self {
        AtomizeConfig {
            spec_factor: 2.0,
            spec_check_secs: 2.0,
            min_completed_for_spec: 3,
            release_all: false,
            double_speculate: false,
        }
    }
}

/// What a completion report means for the DAG layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DoneOutcome {
    /// Not a task job — the ordinary whole-job path applies.
    NotTask,
    /// The report is from a cancelled losing attempt (or a duplicate
    /// completion of an already-done task): swallow it. The attempt
    /// was already accounted when its `SpecCancel` committed, so the
    /// caller must log nothing and bump nothing.
    Swallowed,
    /// First effective completion of the task.
    Effective {
        /// Root id of the DAG.
        root: JobId,
        /// Task index that completed.
        task: u32,
        /// Output artifact to credit to the executing worker's store.
        output: ResourceRef,
        /// Successor tasks this completion released, as
        /// `(task index, job spec)` — the caller commits a `TaskOffer`
        /// per entry, allocates an id, and submits it.
        released: Vec<(u32, JobSpec)>,
        /// Other live attempts of the same task to cancel
        /// (`SpecCancel` each, exactly once).
        losers: Vec<JobId>,
    },
}

/// A straggler the detector wants to speculate, returned by
/// [`DagState::straggler`]. The caller commits `SpecLaunch` first and
/// only then binds the replica ([`DagState::bind`]) — commit before
/// act.
#[derive(Debug, Clone, PartialEq)]
pub struct Speculation {
    /// Root id of the DAG.
    pub root: JobId,
    /// Task index to replicate.
    pub task: u32,
    /// Spec for the replica job (fresh id to be allocated by caller).
    pub spec: JobSpec,
}

#[derive(Debug)]
struct TaskRun {
    /// Live attempts: `(job id, speculative)`.
    attempts: Vec<(JobId, bool)>,
    /// Set once a `SpecLaunch` committed for this task.
    spec_launched: bool,
}

#[derive(Debug)]
struct DagRun {
    dag: TaskDag,
    /// Workflow stage the task jobs target.
    stage: TaskId,
    /// Completed-task bitmask.
    done: u64,
    /// Released-task bitmask.
    offered: u64,
    tasks: Vec<TaskRun>,
}

/// Shared DAG bookkeeping for both runtimes. Pure decisions only: the
/// caller owns the replicated log, id allocation and dispatch, and
/// must commit the corresponding decision entry *before* acting on
/// anything returned from here.
#[derive(Debug, Default)]
pub struct DagState {
    cfg: AtomizeConfig,
    dags: BTreeMap<JobId, DagRun>,
    /// job → (root, task index, speculative).
    task_of_job: HashMap<JobId, (JobId, u32, bool)>,
    /// Losing attempts whose `SpecCancel` committed: their completion
    /// reports are swallowed.
    cancelled: HashSet<JobId>,
    /// Placement instants of live task jobs (virtual seconds).
    placed_at: HashMap<JobId, f64>,
    /// Durations of effective completions, for the straggler median.
    durations: Vec<f64>,
}

impl DagState {
    /// Fresh state under `cfg`.
    pub fn new(cfg: AtomizeConfig) -> Self {
        DagState {
            cfg,
            ..Default::default()
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AtomizeConfig {
        &self.cfg
    }

    /// True iff any registered DAG is incomplete — the straggler sweep
    /// keeps running while this holds.
    pub fn is_active(&self) -> bool {
        self.dags.values().any(|d| d.done != d.dag.full_mask())
    }

    /// True iff any DAG was ever registered.
    pub fn has_dags(&self) -> bool {
        !self.dags.is_empty()
    }

    /// Did `job`'s `SpecCancel` commit? (Its completion report must be
    /// swallowed and nothing further logged for it.)
    pub fn is_cancelled(&self, job: JobId) -> bool {
        self.cancelled.contains(&job)
    }

    /// `(root, task, speculative)` for a task job, `None` for plain
    /// jobs.
    pub fn task_of(&self, job: JobId) -> Option<(JobId, u32, bool)> {
        self.task_of_job.get(&job).copied()
    }

    /// Predecessor mask and task count for a task — what the caller
    /// logs on `TaskOffer`.
    pub fn offer_payload(&self, root: JobId, task: u32) -> (u64, u32) {
        let d = &self.dags[&root];
        (d.dag.tasks[task as usize].preds, d.dag.len() as u32)
    }

    /// Register an arriving DAG under the allocated `root` id and
    /// return the initially releasable tasks as `(index, spec)`.
    /// Source tasks (no predecessors) — or, under the
    /// `release_all` mutation, every task.
    pub fn register(&mut self, root: JobId, stage: TaskId, dag: TaskDag) -> Vec<(u32, JobSpec)> {
        debug_assert!(dag.validate().is_ok(), "unvalidated DAG reached register");
        let n = dag.len();
        let mut run = DagRun {
            stage,
            done: 0,
            offered: 0,
            tasks: (0..n)
                .map(|_| TaskRun {
                    attempts: Vec::new(),
                    spec_launched: false,
                })
                .collect(),
            dag,
        };
        let mut released = Vec::new();
        for i in 0..n as u32 {
            let gate_open = run.dag.tasks[i as usize].preds == 0;
            if gate_open || self.cfg.release_all {
                run.offered |= 1 << i;
                released.push((i, run.dag.task_spec(stage, i)));
            }
        }
        self.dags.insert(root, run);
        released
    }

    /// Bind the job id the caller allocated for a released task (or a
    /// speculative replica, after its `SpecLaunch` committed).
    pub fn bind(&mut self, root: JobId, task: u32, job: JobId, speculative: bool) {
        let d = self.dags.get_mut(&root).expect("bind for unknown DAG");
        let t = &mut d.tasks[task as usize];
        t.attempts.push((job, speculative));
        if speculative {
            t.spec_launched = true;
        }
        self.task_of_job.insert(job, (root, task, speculative));
    }

    /// Record a placement instant — the straggler clock for this
    /// attempt (re-placements after failover restart it).
    pub fn on_placed(&mut self, job: JobId, now_secs: f64) {
        if self.task_of_job.contains_key(&job) {
            self.placed_at.insert(job, now_secs);
        }
    }

    /// Classify a completion report for `job`.
    pub fn on_done(&mut self, job: JobId, now_secs: f64) -> DoneOutcome {
        let Some(&(root, task, _spec)) = self.task_of_job.get(&job) else {
            return DoneOutcome::NotTask;
        };
        if self.cancelled.contains(&job) {
            return DoneOutcome::Swallowed;
        }
        let d = self.dags.get_mut(&root).expect("task of unknown DAG");
        let bit = 1u64 << task;
        if d.done & bit != 0 {
            // Already effectively complete (e.g. both attempts raced
            // to done in one instant): only the first one counts.
            return DoneOutcome::Swallowed;
        }
        d.done |= bit;
        if let Some(t0) = self.placed_at.remove(&job) {
            self.durations.push((now_secs - t0).max(0.0));
        }
        let losers: Vec<JobId> = d.tasks[task as usize]
            .attempts
            .iter()
            .map(|&(j, _)| j)
            .filter(|&j| j != job && !self.cancelled.contains(&j))
            .collect();
        for &l in &losers {
            self.placed_at.remove(&l);
        }
        let mut released = Vec::new();
        if !self.cfg.release_all {
            for i in 0..d.dag.len() as u32 {
                let ibit = 1u64 << i;
                if d.offered & ibit == 0 && d.dag.tasks[i as usize].preds & !d.done == 0 {
                    d.offered |= ibit;
                    released.push((i, d.dag.task_spec(d.stage, i)));
                }
            }
        }
        let output = d.dag.tasks[task as usize].output;
        DoneOutcome::Effective {
            root,
            task,
            output,
            released,
            losers,
        }
    }

    /// Mark a losing attempt cancelled — call right after its
    /// `SpecCancel` committed.
    pub fn cancel(&mut self, job: JobId) {
        self.cancelled.insert(job);
    }

    /// Straggler sweep at `now_secs`: the single slowest in-flight
    /// task worth speculating, if any. Pure — the caller commits
    /// `SpecLaunch`, allocates the replica id, then [`bind`]s it
    /// (which sets the launched-once guard).
    ///
    /// [`bind`]: Self::bind
    pub fn straggler(&self, now_secs: f64) -> Option<Speculation> {
        if self.durations.len() < self.cfg.min_completed_for_spec {
            return None;
        }
        let mut sorted = self.durations.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let threshold = self.cfg.spec_factor * median;
        let mut best: Option<(f64, Speculation)> = None;
        for (&root, d) in &self.dags {
            for (i, t) in d.tasks.iter().enumerate() {
                let bit = 1u64 << i;
                if d.done & bit != 0 {
                    continue;
                }
                if t.spec_launched && !self.cfg.double_speculate {
                    continue;
                }
                // Only primaries age into stragglers; a replica that
                // straggles too is not re-replicated.
                let Some(&(job, _)) = t.attempts.iter().find(|&&(_, s)| !s) else {
                    continue;
                };
                let Some(&t0) = self.placed_at.get(&job) else {
                    continue;
                };
                let age = now_secs - t0;
                if age <= threshold {
                    continue;
                }
                let cand = Speculation {
                    root,
                    task: i as u32,
                    spec: d.dag.task_spec(d.stage, i as u32),
                };
                if best.as_ref().is_none_or(|(a, _)| age > *a) {
                    best = Some((age, cand));
                }
            }
        }
        best.map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_storage::ObjectId;

    fn rr(id: u64, bytes: u64) -> ResourceRef {
        ResourceRef {
            id: ObjectId(id),
            bytes,
        }
    }

    fn node(preds: u64, input: Option<ResourceRef>, out: u64) -> TaskNode {
        TaskNode {
            preds,
            input,
            output: rr(out, 1000),
            work_bytes: input.map_or(0, |r| r.bytes),
            cpu_secs: 1.0,
        }
    }

    /// source → two mid tasks → sink.
    fn diamond() -> TaskDag {
        TaskDag::new(vec![
            node(0b0, Some(rr(1, 4000)), 100),
            node(0b1, Some(rr(100, 1000)), 101),
            node(0b1, Some(rr(100, 1000)), 102),
            node(0b110, Some(rr(101, 1000)), 103),
        ])
        .unwrap()
    }

    #[test]
    fn validate_rejects_malformed_dags() {
        assert_eq!(TaskDag::new(vec![]).unwrap_err(), DagError::Empty);
        let self_edge = TaskDag {
            tasks: vec![node(0b1, None, 1)],
        };
        assert_eq!(
            self_edge.validate().unwrap_err(),
            DagError::ForwardPred { task: 0 }
        );
        let forward = TaskDag {
            tasks: vec![node(0, None, 1), node(0b100, None, 2), node(0, None, 3)],
        };
        assert_eq!(
            forward.validate().unwrap_err(),
            DagError::ForwardPred { task: 1 }
        );
        let big = TaskDag {
            tasks: (0..65).map(|_| node(0, None, 9)).collect(),
        };
        assert_eq!(big.validate().unwrap_err(), DagError::TooManyTasks(65));
    }

    #[test]
    fn gating_releases_tasks_in_precedence_order() {
        let mut st = DagState::new(AtomizeConfig::default());
        let root = JobId(1000);
        let released = st.register(root, TaskId(0), diamond());
        assert_eq!(released.len(), 1, "only the source is gate-open");
        assert_eq!(released[0].0, 0);
        st.bind(root, 0, JobId(1), false);
        st.on_placed(JobId(1), 0.0);

        let out = st.on_done(JobId(1), 1.0);
        let DoneOutcome::Effective {
            released, losers, ..
        } = out
        else {
            panic!("expected effective completion, got {out:?}");
        };
        assert_eq!(
            released.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 2],
            "both mid tasks unlock together"
        );
        assert!(losers.is_empty());

        st.bind(root, 1, JobId(2), false);
        st.bind(root, 2, JobId(3), false);
        match st.on_done(JobId(2), 2.0) {
            DoneOutcome::Effective { released, .. } => {
                assert!(released.is_empty(), "sink still gated on task 2")
            }
            other => panic!("{other:?}"),
        }
        match st.on_done(JobId(3), 2.0) {
            DoneOutcome::Effective { released, .. } => {
                assert_eq!(
                    released.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                    vec![3]
                )
            }
            other => panic!("{other:?}"),
        }
        st.bind(root, 3, JobId(4), false);
        assert!(st.is_active());
        st.on_done(JobId(4), 3.0);
        assert!(!st.is_active());
    }

    #[test]
    fn release_all_mutation_ignores_gating() {
        let mut st = DagState::new(AtomizeConfig {
            release_all: true,
            ..Default::default()
        });
        let released = st.register(JobId(1000), TaskId(0), diamond());
        assert_eq!(released.len(), 4, "every task escapes the gate at once");
    }

    #[test]
    fn first_done_wins_and_the_loser_is_swallowed() {
        let mut st = DagState::new(AtomizeConfig::default());
        let root = JobId(1000);
        st.register(root, TaskId(0), diamond());
        st.bind(root, 0, JobId(1), false);
        st.on_placed(JobId(1), 0.0);
        // Speculative replica of task 0.
        st.bind(root, 0, JobId(9), true);
        st.on_placed(JobId(9), 5.0);

        // Replica completes first: it is the effective winner and the
        // primary is the loser.
        let out = st.on_done(JobId(9), 6.0);
        let DoneOutcome::Effective { losers, .. } = out else {
            panic!("{out:?}");
        };
        assert_eq!(losers, vec![JobId(1)]);
        st.cancel(JobId(1));
        assert!(st.is_cancelled(JobId(1)));
        assert_eq!(st.on_done(JobId(1), 7.0), DoneOutcome::Swallowed);
    }

    #[test]
    fn straggler_detection_picks_the_slowest_and_fires_once() {
        let cfg = AtomizeConfig {
            spec_factor: 2.0,
            min_completed_for_spec: 3,
            ..Default::default()
        };
        let mut st = DagState::new(cfg);
        let root = JobId(1000);
        // Four independent tasks.
        let dag = TaskDag::new(vec![
            node(0, None, 1),
            node(0, None, 2),
            node(0, None, 3),
            node(0, None, 4),
        ])
        .unwrap();
        st.register(root, TaskId(0), dag);
        for (i, j) in [(0u32, 1u64), (1, 2), (2, 3), (3, 4)] {
            st.bind(root, i, JobId(j), false);
            st.on_placed(JobId(j), 0.0);
        }
        // Three finish around 1s; task 3 lingers.
        st.on_done(JobId(1), 1.0);
        st.on_done(JobId(2), 1.1);
        st.on_done(JobId(3), 0.9);
        assert!(st.straggler(1.5).is_none(), "below spec_factor × median");
        let sp = st.straggler(10.0).expect("task 3 is a straggler");
        assert_eq!((sp.root, sp.task), (root, 3));
        // Launched-once guard.
        st.bind(root, 3, JobId(99), true);
        assert!(st.straggler(20.0).is_none());
        // …unless the DoubleSpeculate mutation removes it.
        let mut st2 = DagState::new(AtomizeConfig {
            double_speculate: true,
            ..cfg
        });
        st2.register(root, TaskId(0), diamond());
        st2.bind(root, 0, JobId(1), false);
        st2.on_placed(JobId(1), 0.0);
        st2.durations = vec![1.0, 1.0, 1.0];
        st2.bind(root, 0, JobId(9), true);
        assert!(
            st2.straggler(10.0).is_some(),
            "mutation re-speculates a launched task"
        );
    }

    #[test]
    fn collapsed_spec_sums_the_dag() {
        let d = diamond();
        let s = d.collapsed_spec(TaskId(7));
        assert_eq!(s.cpu_secs, 4.0);
        assert_eq!(s.work_bytes, 4000 + 1000 + 1000 + 1000);
        assert_eq!(s.resource, Some(rr(1, 4000)));
        assert_eq!(s.task, TaskId(7));
    }
}
