//! One-stop imports for writing experiments against either runtime.
//!
//! ```
//! use crossbid_crossflow::prelude::*;
//! ```
//!
//! pulls in the [`RunSpec`] builder, the [`Runtime`] trait with both
//! sessions, the workflow/job vocabulary, the Baseline allocator, the
//! trace/export types and the metrics registry.

pub use crate::baseline::BaselineAllocator;
pub use crate::engine::{Cluster, EngineConfig, ReplicationConfig, RunMeta, RunOutput};
pub use crate::export::{
    parse_run_stream, write_run_stream, RunStreamLine, RunStreamMeta, SCHEMA_VERSION,
};
pub use crate::faults::{
    FaultEvent, FaultPlan, Faults, MasterFaultPlan, MembershipAction, MembershipEvent,
    MembershipPlan, NetFaultPlan,
};
pub use crate::federation::{
    run_federation, FedArrival, FedRuntimeKind, FederationMutation, FederationOutput,
    FederationSpec, ShardSpec, SpillRecord,
};
pub use crate::job::{
    Arrival, FedIdentity, Job, JobId, JobSpec, Payload, ResourceRef, ShardId, TaskId, WorkerId,
};
pub use crate::obs::RuntimeMetrics;
pub use crate::runtime::{Runtime, ThreadedSession};
pub use crate::scheduler::Allocator;
pub use crate::session::Session;
pub use crate::spec::{RunSpec, RunSpecBuilder};
pub use crate::threaded::{ChaosConfig, ThreadedConfig, ThreadedScheduler};
pub use crate::trace::{
    JobPhases, SchedEvent, SchedEventKind, SchedLog, Trace, TraceEvent, TraceKind,
};
pub use crate::worker::{WorkerSpec, WorkerSpecBuilder};
pub use crate::workflow::{Workflow, WorkflowError};

pub use crossbid_metrics::{Registry, RegistrySnapshot, RunRecord, SchedulerKind};
