//! Workflow definition — tasks connected by streams of jobs.
//!
//! Figure 1 of the paper shows an MSR pipeline of tasks connected by
//! channels carrying typed jobs. In this implementation channels are
//! implicit: every [`JobSpec`](crate::job::JobSpec) produced by a
//! task's logic names its destination task, and the master routes it
//! there through the allocation machinery. [`Workflow`] owns the task
//! table and validates the routing targets.

use crate::job::TaskId;
use crate::task::{SinkTask, TaskLogic};

/// A named task in the workflow.
pub struct TaskEntry {
    /// Stable id (index into the workflow's task table).
    pub id: TaskId,
    /// Human-readable name for reports.
    pub name: String,
    /// Processing logic.
    pub logic: Box<dyn TaskLogic>,
}

/// An application workflow: an ordered table of tasks plus the
/// declared channels between them.
#[derive(Default)]
pub struct Workflow {
    tasks: Vec<TaskEntry>,
    edges: Vec<(TaskId, TaskId)>,
}

impl Workflow {
    /// Empty workflow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task and return its id.
    pub fn add_task<S: Into<String>>(&mut self, name: S, logic: Box<dyn TaskLogic>) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskEntry {
            id,
            name: name.into(),
            logic,
        });
        id
    }

    /// Add a sink task (records every job it receives).
    pub fn add_sink<S: Into<String>>(&mut self, name: S) -> TaskId {
        self.add_task(name, Box::new(SinkTask::new()))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff the workflow has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Does `task` exist in this workflow?
    pub fn contains(&self, task: TaskId) -> bool {
        (task.0 as usize) < self.tasks.len()
    }

    /// Name of a task.
    pub fn name(&self, task: TaskId) -> &str {
        &self.tasks[task.0 as usize].name
    }

    /// Mutable access to a task's logic (the engine calls this; tests
    /// and applications use it to retrieve sink state).
    pub fn logic_mut(&mut self, task: TaskId) -> &mut dyn TaskLogic {
        self.tasks[task.0 as usize].logic.as_mut()
    }

    /// Downcast a task's logic to a concrete type (e.g. [`SinkTask`]).
    pub fn logic_as<T: 'static>(&mut self, task: TaskId) -> Option<&mut T> {
        self.tasks[task.0 as usize]
            .logic
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Look a task up by name.
    pub fn find(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().find(|t| t.name == name).map(|t| t.id)
    }

    /// Declare a channel: jobs produced by `from`'s logic may target
    /// `to` (Figure 1's cylinders). Channels are optional — a workflow
    /// with no declared edges allows any routing; once any edge is
    /// declared, the engine asserts (in debug builds) that every
    /// downstream job follows a declared channel.
    pub fn connect(&mut self, from: TaskId, to: TaskId) -> &mut Self {
        assert!(self.contains(from), "connect: unknown source task");
        assert!(self.contains(to), "connect: unknown target task");
        if !self.edges.contains(&(from, to)) {
            self.edges.push((from, to));
        }
        self
    }

    /// Declared channels.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Is routing from `from` to `to` allowed? Trivially true when no
    /// channels were declared.
    pub fn allows(&self, from: TaskId, to: TaskId) -> bool {
        self.edges.is_empty() || self.edges.contains(&(from, to))
    }

    /// Tasks with no incoming declared channel (the workflow's
    /// sources — where external jobs enter). Empty when no channels
    /// were declared.
    pub fn sources(&self) -> Vec<TaskId> {
        if self.edges.is_empty() {
            return Vec::new();
        }
        self.tasks
            .iter()
            .map(|t| t.id)
            .filter(|t| !self.edges.iter().any(|(_, to)| to == t))
            .collect()
    }

    /// Tasks with no outgoing declared channel (terminal sinks).
    /// Empty when no channels were declared.
    pub fn sinks(&self) -> Vec<TaskId> {
        if self.edges.is_empty() {
            return Vec::new();
        }
        self.tasks
            .iter()
            .map(|t| t.id)
            .filter(|t| !self.edges.iter().any(|(from, _)| from == t))
            .collect()
    }
}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.tasks.iter().map(|t| (&t.name, t.id)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FnTask;

    #[test]
    fn task_registration() {
        let mut wf = Workflow::new();
        let a = wf.add_task("search", Box::new(FnTask(|_: &_, _: &_, _: &mut _| {})));
        let b = wf.add_sink("results");
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(wf.len(), 2);
        assert!(wf.contains(a) && wf.contains(b));
        assert!(!wf.contains(TaskId(2)));
        assert_eq!(wf.name(b), "results");
        assert_eq!(wf.find("search"), Some(a));
        assert_eq!(wf.find("missing"), None);
    }

    #[test]
    fn sink_downcast_through_workflow() {
        let mut wf = Workflow::new();
        let sink = wf.add_sink("out");
        assert!(wf.logic_as::<SinkTask>(sink).is_some());
        assert!(wf.logic_as::<FnTask<fn(&crate::job::Job, &crate::task::TaskCtx, &mut Vec<crate::job::JobSpec>)>>(sink).is_none());
    }

    #[test]
    fn empty_workflow() {
        let wf = Workflow::new();
        assert!(wf.is_empty());
        assert_eq!(wf.len(), 0);
    }

    #[test]
    fn channels_constrain_routing() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        let b = wf.add_sink("b");
        let c = wf.add_sink("c");
        // No edges declared: everything allowed.
        assert!(wf.allows(a, c));
        wf.connect(a, b);
        wf.connect(b, c);
        assert!(wf.allows(a, b));
        assert!(wf.allows(b, c));
        assert!(!wf.allows(a, c));
        assert_eq!(wf.edges().len(), 2);
        // Duplicate edges are deduped.
        wf.connect(a, b);
        assert_eq!(wf.edges().len(), 2);
        assert_eq!(wf.sources(), vec![a]);
        assert_eq!(wf.sinks(), vec![c]);
    }

    #[test]
    #[should_panic]
    fn connect_rejects_unknown_tasks() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        wf.connect(a, TaskId(9));
    }
}
