//! Workflow definition — tasks connected by streams of jobs.
//!
//! Figure 1 of the paper shows an MSR pipeline of tasks connected by
//! channels carrying typed jobs. In this implementation channels are
//! implicit: every [`JobSpec`](crate::job::JobSpec) produced by a
//! task's logic names its destination task, and the master routes it
//! there through the allocation machinery. [`Workflow`] owns the task
//! table and validates the routing targets.

use crate::job::TaskId;
use crate::task::{SinkTask, TaskLogic};

/// A named task in the workflow.
pub struct TaskEntry {
    /// Stable id (index into the workflow's task table).
    pub id: TaskId,
    /// Human-readable name for reports.
    pub name: String,
    /// Processing logic.
    pub logic: Box<dyn TaskLogic>,
}

/// An application workflow: an ordered table of tasks plus the
/// declared channels between them.
#[derive(Default)]
pub struct Workflow {
    tasks: Vec<TaskEntry>,
    edges: Vec<(TaskId, TaskId)>,
}

impl Workflow {
    /// Empty workflow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task and return its id.
    pub fn add_task<S: Into<String>>(&mut self, name: S, logic: Box<dyn TaskLogic>) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskEntry {
            id,
            name: name.into(),
            logic,
        });
        id
    }

    /// Add a sink task (records every job it receives).
    pub fn add_sink<S: Into<String>>(&mut self, name: S) -> TaskId {
        self.add_task(name, Box::new(SinkTask::new()))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff the workflow has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Does `task` exist in this workflow?
    pub fn contains(&self, task: TaskId) -> bool {
        (task.0 as usize) < self.tasks.len()
    }

    /// Name of a task.
    pub fn name(&self, task: TaskId) -> &str {
        &self.tasks[task.0 as usize].name
    }

    /// Mutable access to a task's logic (the engine calls this; tests
    /// and applications use it to retrieve sink state).
    pub fn logic_mut(&mut self, task: TaskId) -> &mut dyn TaskLogic {
        self.tasks[task.0 as usize].logic.as_mut()
    }

    /// Downcast a task's logic to a concrete type (e.g. [`SinkTask`]).
    pub fn logic_as<T: 'static>(&mut self, task: TaskId) -> Option<&mut T> {
        self.tasks[task.0 as usize]
            .logic
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Look a task up by name.
    pub fn find(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().find(|t| t.name == name).map(|t| t.id)
    }

    /// Declare a channel: jobs produced by `from`'s logic may target
    /// `to` (Figure 1's cylinders). Channels are optional — a workflow
    /// with no declared edges allows any routing; once any edge is
    /// declared, the engine asserts (in debug builds) that every
    /// downstream job follows a declared channel.
    ///
    /// The edge is recorded as given; [`Workflow::validate`] (run by
    /// both runtimes before the first iteration) rejects self-edges,
    /// duplicates, dangling endpoints and cycles with a typed error.
    pub fn connect(&mut self, from: TaskId, to: TaskId) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Check the declared channel graph: every endpoint must name a
    /// registered task, no edge may be declared twice or loop onto
    /// its own source, and the graph must be acyclic (a cycle would
    /// let a pipeline feed itself jobs forever). An edgeless workflow
    /// is trivially valid — routing is unconstrained then.
    pub fn validate(&self) -> Result<(), WorkflowError> {
        let mut seen: Vec<(TaskId, TaskId)> = Vec::with_capacity(self.edges.len());
        for &(from, to) in &self.edges {
            if !self.contains(from) || !self.contains(to) {
                return Err(WorkflowError::DanglingEdge { from, to });
            }
            if from == to {
                return Err(WorkflowError::SelfEdge(from));
            }
            if seen.contains(&(from, to)) {
                return Err(WorkflowError::DuplicateEdge { from, to });
            }
            seen.push((from, to));
        }
        // Kahn's algorithm: if peeling zero-in-degree tasks cannot
        // consume every edge, the remainder contains a cycle.
        let n = self.tasks.len();
        let mut in_degree = vec![0usize; n];
        for &(_, to) in &self.edges {
            in_degree[to.0 as usize] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&t| in_degree[t] == 0).collect();
        let mut peeled = 0usize;
        while let Some(t) = ready.pop() {
            peeled += 1;
            for &(from, to) in &self.edges {
                if from.0 as usize == t {
                    in_degree[to.0 as usize] -= 1;
                    if in_degree[to.0 as usize] == 0 {
                        ready.push(to.0 as usize);
                    }
                }
            }
        }
        if peeled < n {
            let stuck = (0..n)
                .find(|&t| in_degree[t] > 0)
                .expect("unpeeled task remains");
            return Err(WorkflowError::Cycle(TaskId(stuck as u32)));
        }
        Ok(())
    }

    /// Declared channels.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Is routing from `from` to `to` allowed? Trivially true when no
    /// channels were declared.
    pub fn allows(&self, from: TaskId, to: TaskId) -> bool {
        self.edges.is_empty() || self.edges.contains(&(from, to))
    }

    /// Tasks with no incoming declared channel (the workflow's
    /// sources — where external jobs enter). Empty when no channels
    /// were declared.
    pub fn sources(&self) -> Vec<TaskId> {
        if self.edges.is_empty() {
            return Vec::new();
        }
        self.tasks
            .iter()
            .map(|t| t.id)
            .filter(|t| !self.edges.iter().any(|(_, to)| to == t))
            .collect()
    }

    /// Tasks with no outgoing declared channel (terminal sinks).
    /// Empty when no channels were declared.
    pub fn sinks(&self) -> Vec<TaskId> {
        if self.edges.is_empty() {
            return Vec::new();
        }
        self.tasks
            .iter()
            .map(|t| t.id)
            .filter(|t| !self.edges.iter().any(|(from, _)| from == t))
            .collect()
    }
}

/// Why [`Workflow::validate`] rejected a channel graph. Surfaced to
/// callers as [`SpecError::Workflow`](crate::spec::SpecError) by the
/// run-entry validation of both runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkflowError {
    /// An edge endpoint names no registered task.
    DanglingEdge {
        /// Declared source.
        from: TaskId,
        /// Declared target.
        to: TaskId,
    },
    /// A task is connected to itself.
    SelfEdge(TaskId),
    /// The same channel was declared twice.
    DuplicateEdge {
        /// Declared source.
        from: TaskId,
        /// Declared target.
        to: TaskId,
    },
    /// The channel graph contains a precedence cycle through this
    /// task.
    Cycle(TaskId),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DanglingEdge { from, to } => write!(
                f,
                "channel ({} -> {}) names an unregistered task",
                from.0, to.0
            ),
            WorkflowError::SelfEdge(t) => write!(f, "task {} is connected to itself", t.0),
            WorkflowError::DuplicateEdge { from, to } => {
                write!(f, "channel ({} -> {}) is declared twice", from.0, to.0)
            }
            WorkflowError::Cycle(t) => {
                write!(f, "the channel graph cycles through task {}", t.0)
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.tasks.iter().map(|t| (&t.name, t.id)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::FnTask;

    #[test]
    fn task_registration() {
        let mut wf = Workflow::new();
        let a = wf.add_task("search", Box::new(FnTask(|_: &_, _: &_, _: &mut _| {})));
        let b = wf.add_sink("results");
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(wf.len(), 2);
        assert!(wf.contains(a) && wf.contains(b));
        assert!(!wf.contains(TaskId(2)));
        assert_eq!(wf.name(b), "results");
        assert_eq!(wf.find("search"), Some(a));
        assert_eq!(wf.find("missing"), None);
    }

    #[test]
    fn sink_downcast_through_workflow() {
        let mut wf = Workflow::new();
        let sink = wf.add_sink("out");
        assert!(wf.logic_as::<SinkTask>(sink).is_some());
        assert!(wf.logic_as::<FnTask<fn(&crate::job::Job, &crate::task::TaskCtx, &mut Vec<crate::job::JobSpec>)>>(sink).is_none());
    }

    #[test]
    fn empty_workflow() {
        let wf = Workflow::new();
        assert!(wf.is_empty());
        assert_eq!(wf.len(), 0);
    }

    #[test]
    fn channels_constrain_routing() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        let b = wf.add_sink("b");
        let c = wf.add_sink("c");
        // No edges declared: everything allowed.
        assert!(wf.allows(a, c));
        wf.connect(a, b);
        wf.connect(b, c);
        assert!(wf.allows(a, b));
        assert!(wf.allows(b, c));
        assert!(!wf.allows(a, c));
        assert_eq!(wf.edges().len(), 2);
        assert_eq!(wf.sources(), vec![a]);
        assert_eq!(wf.sinks(), vec![c]);
        assert_eq!(wf.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_a_cycle() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        let b = wf.add_sink("b");
        let c = wf.add_sink("c");
        wf.connect(a, b);
        wf.connect(b, c);
        wf.connect(c, a);
        assert!(matches!(wf.validate(), Err(WorkflowError::Cycle(_))));
    }

    #[test]
    fn validate_rejects_a_self_edge() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        wf.connect(a, a);
        assert_eq!(wf.validate(), Err(WorkflowError::SelfEdge(a)));
    }

    #[test]
    fn validate_rejects_a_dangling_target() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        wf.connect(a, TaskId(9));
        assert_eq!(
            wf.validate(),
            Err(WorkflowError::DanglingEdge {
                from: a,
                to: TaskId(9)
            })
        );
    }

    #[test]
    fn validate_rejects_a_duplicate_edge() {
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        let b = wf.add_sink("b");
        wf.connect(a, b);
        wf.connect(a, b);
        assert_eq!(
            wf.validate(),
            Err(WorkflowError::DuplicateEdge { from: a, to: b })
        );
    }

    #[test]
    fn an_edgeless_workflow_is_trivially_valid() {
        let mut wf = Workflow::new();
        wf.add_sink("only");
        assert_eq!(wf.validate(), Ok(()));
    }
}
