//! Sharded multi-master federation.
//!
//! The paper scales its single master by federating N of them: each
//! master owns a disjoint worker shard and runs the unmodified
//! allocation protocol over it; masters exchange eventually-consistent
//! load summaries on a gossip schedule and *spill* jobs across shards
//! when the local shard is saturated. This module implements that tier
//! as a deterministic **routing pre-pass** above the per-shard
//! runtimes:
//!
//! 1. every external arrival is pre-assigned a federation-wide,
//!    shard-qualified id ([`JobId::in_shard`]) and a routing decision
//!    (keep local, or hand off to the least-loaded viewed peer);
//! 2. each shard then executes its arrival stream on an *unmodified*
//!    single-master runtime — simulation or real threads — with the
//!    federation identity carried on [`JobSpec::origin`], so a spilled
//!    job enters the target shard's log as a `SpillIn` under its
//!    home-qualified id;
//! 3. the home shard's log is augmented with the hand-off record
//!    (`Submitted` + `SpillOut`), and all shard logs are merged into
//!    one federation-wide [`SchedLog`] with shard-qualified worker ids
//!    ([`WorkerId::in_shard`]) for the cross-shard oracle.
//!
//! The routing tier is deliberately *estimate-based and lossy* (views
//! refresh on a gossip period and individual exchanges drop with a
//! seeded probability) — the correctness claim is not that routing is
//! optimal but that the **hand-off is exactly-once**: every `SpillOut`
//! in a home log is matched by exactly one `SpillIn` in the target
//! log, and every job completes exactly once, in exactly one shard, no
//! matter how stale the load views were. [`FederationMutation`]
//! reintroduces the two canonical ways to get that wrong (forwarder
//! keeps the job; receiver drops it) so the oracle's detection of both
//! is testable.

use crossbid_simcore::{SeedSequence, SimTime};

use crate::engine::{EngineConfig, RunOutput};
use crate::faults::{Faults, MembershipAction};
use crate::job::{Arrival, FedIdentity, JobId, JobSpec, ShardId, WorkerId};
use crate::scheduler::Allocator;
use crate::spec::RunSpec;
use crate::trace::{SchedEvent, SchedEventKind, SchedLog};
use crate::worker::WorkerSpec;
use crate::workflow::Workflow;

/// One shard of the federation: a master plus its disjoint worker
/// pool, with its own fault plan (worker crashes, lossy links, master
/// failover, elastic membership — every axis the single-master
/// runtimes support).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard's worker pool (at least one).
    pub workers: Vec<WorkerSpec>,
    /// The shard's fault aggregate, including its
    /// [`MembershipPlan`](crate::faults::MembershipPlan).
    pub faults: Faults,
}

impl ShardSpec {
    /// A fault-free shard over `workers`.
    pub fn new(workers: Vec<WorkerSpec>) -> Self {
        ShardSpec {
            workers,
            faults: Faults::new(),
        }
    }

    /// Attach a fault aggregate.
    pub fn faults(mut self, faults: Faults) -> Self {
        self.faults = faults;
        self
    }
}

/// Which single-master runtime executes each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FedRuntimeKind {
    /// The deterministic discrete-event engine.
    #[default]
    Sim,
    /// Real threads with scaled virtual time.
    Threaded,
}

/// Self-validation: break the exactly-once hand-off in one of the two
/// canonical ways. Applied to the **first** spill decision of the run;
/// a run that never spills leaves the mutation inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FederationMutation {
    /// Correct protocol.
    #[default]
    None,
    /// The forwarder keeps the job *and* hands it off: it runs in both
    /// shards, so the merged log shows a completion after `SpillOut`
    /// in the home shard and a second completion in the target.
    DoubleSpill,
    /// The receiver drops the hand-off: the home log records
    /// `SpillOut` but no shard ever runs the job.
    LostSpill,
}

/// Everything needed to run a federation scenario.
#[derive(Debug, Clone)]
pub struct FederationSpec {
    /// The shards (at least one; spilling needs at least two).
    pub shards: Vec<ShardSpec>,
    /// Spill when the estimated local completion horizon — decayed
    /// backlog plus this job, divided by active workers — exceeds this
    /// many virtual seconds. `f64::INFINITY` disables spilling (the
    /// single-master baseline), except from a shard with zero active
    /// workers, which must always forward.
    pub spill_threshold_secs: f64,
    /// Gossip period in virtual seconds: each tick, every master
    /// refreshes its view of every peer's backlog.
    pub gossip_period_secs: f64,
    /// Seeded probability that one pairwise gossip exchange is lost
    /// (the view stays stale for that pair until the next tick).
    pub gossip_loss: f64,
    /// Virtual delay of a cross-shard hand-off. Must be positive so
    /// the target shard's `SpillIn` is strictly later than the home
    /// shard's `SpillOut` in the merged log (on the threaded runtime,
    /// size it well above the timing jitter of one intake).
    pub spill_latency_secs: f64,
    /// Root seed for the per-shard runtimes.
    pub seed: u64,
    /// Seed of the gossip-loss draw stream (the *net* axis of a
    /// replay tuple, independent of the run seed).
    pub net_seed: u64,
    /// Threaded runtime: real seconds per virtual second.
    pub time_scale: f64,
    /// Threaded runtime: contest window in virtual seconds.
    pub contest_window_secs: f64,
    /// Engine template applied to every shard (the per-shard
    /// [`EngineConfig::shard`] and fault fields are overridden).
    pub engine: EngineConfig,
    /// Which runtime executes the shards.
    pub runtime: FedRuntimeKind,
    /// Self-validation mutation of the hand-off protocol.
    pub mutation: FederationMutation,
    /// Threaded runtime, test-only: seeded delivery-order perturbation
    /// at every shard master's intake (the *chaos* axis of a replay
    /// tuple). The sim runtime ignores it.
    pub chaos: Option<crate::threaded::ChaosConfig>,
}

impl FederationSpec {
    /// A federation over `shards` with the default routing parameters:
    /// 30 s spill threshold, 5 s gossip period, lossless gossip, 0.5 s
    /// hand-off latency, sim runtime, no mutation.
    pub fn new(shards: Vec<ShardSpec>) -> Self {
        FederationSpec {
            shards,
            spill_threshold_secs: 30.0,
            gossip_period_secs: 5.0,
            gossip_loss: 0.0,
            spill_latency_secs: 0.5,
            seed: 0,
            net_seed: 0,
            time_scale: 1e-3,
            contest_window_secs: 1.0,
            engine: EngineConfig::default(),
            runtime: FedRuntimeKind::Sim,
            mutation: FederationMutation::None,
            chaos: None,
        }
    }
}

/// An external arrival addressed to its home shard's master.
#[derive(Debug, Clone)]
pub struct FedArrival {
    /// Virtual arrival instant at the home master.
    pub at: SimTime,
    /// The shard the job was submitted to.
    pub home: ShardId,
    /// What arrives.
    pub spec: JobSpec,
}

/// One recorded cross-shard hand-off decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillRecord {
    /// Federation-wide id of the forwarded job.
    pub job: JobId,
    /// Home shard (forwarder).
    pub from: ShardId,
    /// Target shard (receiver).
    pub to: ShardId,
    /// Virtual instant of the decision.
    pub at: SimTime,
}

/// The result of one federation run.
#[derive(Debug)]
pub struct FederationOutput {
    /// Per-shard run outputs. Shard `i`'s scheduler log is already
    /// augmented with its hand-off records (`Submitted` + `SpillOut`
    /// for each job it forwarded); worker and job ids are shard-local.
    pub shards: Vec<RunOutput>,
    /// The federation-wide union log: every shard's events with
    /// shard-qualified worker ids, time-ordered. Check with
    /// `OracleOptions { federated: true, workers: None, .. }`.
    pub merged: SchedLog,
    /// Every hand-off the router decided, in decision order.
    pub spills: Vec<SpillRecord>,
    /// Virtual instant of the last completion in the merged log.
    pub makespan_secs: f64,
    /// Completions summed over shards (counts the duplicate under
    /// [`FederationMutation::DoubleSpill`]).
    pub jobs_completed: u64,
}

/// Routing-time load account of one shard: virtual seconds of
/// estimated work admitted minus work drained (active workers each
/// retire one second of work per second).
struct ShardLoad {
    backlog: f64,
    last: f64,
}

impl ShardLoad {
    fn decayed(&self, active: usize, t: f64) -> f64 {
        (self.backlog - (t - self.last).max(0.0) * active as f64).max(0.0)
    }

    fn touch(&mut self, active: usize, t: f64) {
        self.backlog = self.decayed(active, t);
        self.last = self.last.max(t);
    }
}

/// Workers of `shard` in the roster at virtual time `t` under its
/// membership plan: non-deferred workers, plus fired joins, minus
/// fired drains/removals. (Worker *crashes* are invisible to the
/// router — peers learn of them only through the load they fail to
/// drain, like the paper's gossiped summaries.)
fn active_workers(shard: &ShardSpec, t: f64) -> usize {
    let plan = &shard.faults.membership;
    let deferred = plan
        .events()
        .iter()
        .filter(|e| e.action == MembershipAction::Join)
        .count();
    let mut n = shard.workers.len() as i64 - deferred as i64;
    for e in plan.events() {
        if e.at.as_secs_f64() <= t {
            match e.action {
                MembershipAction::Join => n += 1,
                MembershipAction::Drain | MembershipAction::Remove => n -= 1,
            }
        }
    }
    n.max(0) as usize
}

/// Mean cost estimate of running `spec` on one of `workers`: fetch the
/// resource cold, scan the work bytes, pay the CPU component. An
/// overestimate (it ignores caching) — routing only needs relative
/// load, not placement-grade precision.
fn job_cost(workers: &[WorkerSpec], spec: &JobSpec) -> f64 {
    if workers.is_empty() {
        return 0.0;
    }
    let total: f64 = workers
        .iter()
        .map(|w| {
            let fetch = spec
                .resource
                .map_or(0.0, |r| w.net.time_for(r.bytes).as_secs_f64());
            let scan = w.rw.time_for(spec.work_bytes).as_secs_f64();
            fetch + scan + spec.cpu_secs * w.cpu_factor
        })
        .sum();
    total / workers.len() as f64
}

/// The routing pre-pass output: per-shard arrival streams, synthesized
/// home-log hand-off events, and the spill records.
struct RoutedPlan {
    arrivals: Vec<Vec<Arrival>>,
    synthesized: Vec<Vec<SchedEvent>>,
    spills: Vec<SpillRecord>,
}

fn route(spec: &FederationSpec, mut arrivals: Vec<FedArrival>) -> RoutedPlan {
    let n = spec.shards.len();
    let mut loads: Vec<ShardLoad> = (0..n)
        .map(|_| ShardLoad {
            backlog: 0.0,
            last: 0.0,
        })
        .collect();
    // view[h][p] = (peer p's backlog as last gossiped to h, at).
    let mut view: Vec<Vec<(f64, f64)>> = vec![vec![(0.0, 0.0); n]; n];
    let mut gossip_rng = SeedSequence::new(spec.net_seed).stream(0xFED);
    let mut next_tick: u64 = 1;
    let mut next_seq: Vec<u64> = vec![0; n];
    let mut out = RoutedPlan {
        arrivals: vec![Vec::new(); n],
        synthesized: vec![Vec::new(); n],
        spills: Vec::new(),
    };
    let mut mutation_armed = spec.mutation != FederationMutation::None;

    // Stable time order; the per-home sequence numbers (and therefore
    // the federation-wide ids) are a pure function of the input.
    arrivals.sort_by_key(|a| a.at);
    for a in arrivals {
        let t = a.at.as_secs_f64();
        let h = a.home.0 as usize;
        assert!(h < n, "arrival addressed to shard {h} of {n}");

        // Fire every gossip tick up to t. The draw order (tick, then
        // viewer, then peer) is fixed, so one `net_seed` replays the
        // exact staleness pattern regardless of the workload.
        while next_tick as f64 * spec.gossip_period_secs <= t {
            let tick_t = next_tick as f64 * spec.gossip_period_secs;
            for (viewer, row) in view.iter_mut().enumerate() {
                for peer in 0..n {
                    if peer == viewer {
                        continue;
                    }
                    let lost = gossip_rng.chance(spec.gossip_loss);
                    if !lost {
                        let active = active_workers(&spec.shards[peer], tick_t);
                        row[peer] = (loads[peer].decayed(active, tick_t), tick_t);
                    }
                }
            }
            next_tick += 1;
        }

        let id = JobId::in_shard(a.home, next_seq[h]);
        next_seq[h] += 1;

        let active_h = active_workers(&spec.shards[h], t);
        let cost_h = job_cost(&spec.shards[h].workers, &a.spec);
        loads[h].touch(active_h, t);
        let est_local = if active_h == 0 {
            f64::INFINITY
        } else {
            (loads[h].backlog + cost_h) / active_h as f64
        };

        // Consider spilling only past the threshold (or when the home
        // shard has no one to run the job at all).
        let mut target: Option<(f64, usize)> = None;
        if est_local > spec.spill_threshold_secs || active_h == 0 {
            for (p, &(seen, seen_at)) in view[h].iter().enumerate() {
                if p == h {
                    continue;
                }
                let active_p = active_workers(&spec.shards[p], t);
                if active_p == 0 {
                    continue;
                }
                let est_backlog = (seen - (t - seen_at) * active_p as f64).max(0.0);
                let cost_p = job_cost(&spec.shards[p].workers, &a.spec);
                let est = (est_backlog + cost_p) / active_p as f64;
                if est < est_local && est < target.map_or(f64::INFINITY, |(best, _)| best) {
                    target = Some((est, p));
                }
            }
        }

        match target {
            None => {
                // Keep local (also the active_h == 0 dead end: the job
                // queues at home until a join revives the shard).
                out.arrivals[h].push(Arrival {
                    at: a.at,
                    spec: a.spec.with_origin(FedIdentity {
                        id,
                        spilled_from: None,
                    }),
                });
                loads[h].backlog += cost_h;
            }
            Some((_, p)) => {
                let mutate = std::mem::take(&mut mutation_armed);
                out.spills.push(SpillRecord {
                    job: id,
                    from: a.home,
                    to: ShardId(p as u16),
                    at: a.at,
                });
                let deliver = !(mutate && spec.mutation == FederationMutation::LostSpill);
                let keep_home = mutate && spec.mutation == FederationMutation::DoubleSpill;
                // Home-log hand-off record. Under DoubleSpill the home
                // runtime runs the job itself and emits its own
                // `Submitted`; only the (now false) `SpillOut` is
                // synthesized.
                if !keep_home {
                    out.synthesized[h].push(SchedEvent {
                        at: a.at,
                        worker: None,
                        job: Some(id),
                        kind: SchedEventKind::Submitted,
                    });
                }
                out.synthesized[h].push(SchedEvent {
                    at: a.at,
                    worker: None,
                    job: Some(id),
                    kind: SchedEventKind::SpillOut {
                        to_shard: ShardId(p as u16),
                    },
                });
                if keep_home {
                    out.arrivals[h].push(Arrival {
                        at: a.at,
                        spec: a.spec.clone().with_origin(FedIdentity {
                            id,
                            spilled_from: None,
                        }),
                    });
                    loads[h].backlog += cost_h;
                }
                if deliver {
                    let cost_p = job_cost(&spec.shards[p].workers, &a.spec);
                    let active_p = active_workers(&spec.shards[p], t);
                    loads[p].touch(active_p, t);
                    loads[p].backlog += cost_p;
                    out.arrivals[p].push(Arrival {
                        at: a.at
                            + crossbid_simcore::SimDuration::from_secs_f64(spec.spill_latency_secs),
                        spec: a.spec.with_origin(FedIdentity {
                            id,
                            spilled_from: Some(a.home),
                        }),
                    });
                }
            }
        }
    }
    out
}

/// Merge a shard's runtime log with its synthesized hand-off events
/// into a fresh, time-ordered [`SchedLog`]. Both inputs are already
/// time-sorted; runtime events win ties so a `SpillOut` synthesized at
/// an arrival instant lands after the `Submitted` the runtime emitted
/// at that same instant (DoubleSpill).
fn augment(log: &SchedLog, synthesized: &[SchedEvent]) -> SchedLog {
    let mut merged = SchedLog::new();
    let run = log.events();
    let (mut i, mut j) = (0, 0);
    while i < run.len() || j < synthesized.len() {
        let take_run = match (run.get(i), synthesized.get(j)) {
            (Some(r), Some(s)) => r.at <= s.at,
            (Some(_), None) => true,
            _ => false,
        };
        if take_run {
            merged.push(run[i]);
            i += 1;
        } else {
            merged.push(synthesized[j]);
            j += 1;
        }
    }
    merged
}

/// Union of every shard's (augmented) log with shard-qualified worker
/// ids, time-ordered into one federation-wide [`SchedLog`].
fn merge_federation_log(shards: &[RunOutput]) -> SchedLog {
    let mut all: Vec<(u64, usize, SchedEvent)> = Vec::new();
    for (s, out) in shards.iter().enumerate() {
        for ev in out.sched_log.events() {
            let mut q = *ev;
            q.worker = q.worker.map(|w| WorkerId::in_shard(ShardId(s as u16), w.0));
            all.push((q.at.ticks(), s, q));
        }
    }
    // Stable by (time, shard): same-instant cross-shard events keep a
    // deterministic shard order, and `push` applies its usual
    // commuting-event tiebreak within the instant.
    all.sort_by_key(|(at, s, _)| (*at, *s));
    let mut merged = SchedLog::new();
    for (_, _, ev) in all {
        merged.push(ev);
    }
    merged
}

/// Run a federation scenario end to end: route, execute every shard on
/// its own single-master runtime, augment the home logs with the
/// hand-off records, and merge the union log.
///
/// `make_workflow` builds each shard's workflow (task logic is not
/// `Clone`, so every master needs its own instance — they must be
/// structurally identical or spilled jobs would change meaning across
/// shards).
///
/// # Panics
/// If the spec has no shards, a shard has no workers, an arrival
/// addresses a shard outside the spec, or (threaded runtime) the
/// allocator is neither bidding nor baseline.
pub fn run_federation(
    spec: &FederationSpec,
    arrivals: Vec<FedArrival>,
    allocator: &dyn Allocator,
    mut make_workflow: impl FnMut(ShardId) -> Workflow,
) -> FederationOutput {
    assert!(
        !spec.shards.is_empty(),
        "a federation needs at least one shard"
    );
    assert!(
        spec.spill_latency_secs > 0.0,
        "spill latency must be positive so SpillIn strictly follows SpillOut"
    );
    let plan = route(spec, arrivals);
    let seeds = SeedSequence::new(spec.seed);

    let mut shards: Vec<RunOutput> = Vec::with_capacity(spec.shards.len());
    for (s, shard) in spec.shards.iter().enumerate() {
        let mut run_spec: RunSpec = RunSpec::builder()
            .workers(shard.workers.iter().cloned())
            .engine(spec.engine.clone())
            .faults(shard.faults.clone())
            .trace(true)
            .seed(seeds.seed_for(s as u64))
            .time_scale(spec.time_scale)
            .contest_window_secs(spec.contest_window_secs)
            .names("federation", "federation")
            .build();
        run_spec.engine.shard = ShardId(s as u16);
        run_spec.chaos = spec.chaos.clone();
        let mut wf = make_workflow(ShardId(s as u16));
        let mut out = match spec.runtime {
            FedRuntimeKind::Sim => {
                let mut session = run_spec.sim();
                session.run_iteration(&mut wf, allocator, plan.arrivals[s].clone())
            }
            FedRuntimeKind::Threaded => {
                let mut session = run_spec.threaded();
                session.run_iteration(&mut wf, allocator, plan.arrivals[s].clone())
            }
        };
        out.sched_log = augment(&out.sched_log, &plan.synthesized[s]);
        shards.push(out);
    }

    let merged = merge_federation_log(&shards);
    let makespan_secs = merged
        .events()
        .iter()
        .filter(|e| matches!(e.kind, SchedEventKind::Completed))
        .map(|e| e.at.as_secs_f64())
        .fold(0.0, f64::max);
    let jobs_completed = shards.iter().map(|o| o.record.jobs_completed).sum();
    FederationOutput {
        shards,
        merged,
        spills: plan.spills,
        makespan_secs,
        jobs_completed,
    }
}

#[cfg(test)]
mod tests {
    use crossbid_storage::ObjectId;

    use super::*;
    use crate::baseline::BaselineAllocator;
    use crate::job::{Payload, ResourceRef, TaskId};

    fn workers(n: usize, tag: &str) -> Vec<WorkerSpec> {
        (0..n)
            .map(|i| {
                WorkerSpec::builder(format!("{tag}{i}"))
                    .net_mbps(10.0)
                    .rw_mbps(100.0)
                    .storage_gb(10.0)
                    .build()
            })
            .collect()
    }

    fn scan_spec(rid: u64, mb: u64) -> JobSpec {
        JobSpec::scanning(
            TaskId(0),
            ResourceRef {
                id: ObjectId(rid),
                bytes: mb * 1_000_000,
            },
            Payload::Index(rid),
        )
    }

    /// A burst of `n` scans all submitted to shard 0.
    fn burst(n: usize) -> Vec<FedArrival> {
        (0..n)
            .map(|i| FedArrival {
                at: SimTime::from_secs_f64(i as f64 * 0.5),
                home: ShardId(0),
                spec: scan_spec(i as u64 % 4, 100),
            })
            .collect()
    }

    fn two_shards() -> FederationSpec {
        let mut spec = FederationSpec::new(vec![
            ShardSpec::new(workers(2, "a")),
            ShardSpec::new(workers(2, "b")),
        ]);
        spec.spill_threshold_secs = 20.0;
        spec.engine = EngineConfig::ideal();
        spec
    }

    fn run(spec: &FederationSpec, n: usize) -> FederationOutput {
        run_federation(spec, burst(n), &BaselineAllocator, |_| {
            let mut wf = Workflow::new();
            wf.add_sink("scan");
            wf
        })
    }

    #[test]
    fn overloaded_shard_spills_and_everything_completes() {
        let spec = two_shards();
        let out = run(&spec, 24);
        assert!(!out.spills.is_empty(), "the burst must overflow shard 0");
        assert_eq!(out.jobs_completed, 24, "exactly-once across the federation");
        let spilled_out = out.merged.spills_out();
        let spilled_in = out.merged.spills_in();
        assert_eq!(spilled_out, out.spills.len());
        assert_eq!(
            spilled_in,
            out.spills.len(),
            "every hand-off delivered once"
        );
        // Every spilled job keeps its shard-0-qualified id and
        // completes on a shard-1 worker in the merged log.
        for s in &out.spills {
            assert_eq!(s.job.shard(), ShardId(0));
            let done = out
                .merged
                .events()
                .iter()
                .find(|e| e.job == Some(s.job) && matches!(e.kind, SchedEventKind::Completed))
                .expect("spilled job completes");
            assert_eq!(done.worker.unwrap().shard(), s.to);
        }
    }

    #[test]
    fn infinite_threshold_keeps_everything_home() {
        let mut spec = two_shards();
        spec.spill_threshold_secs = f64::INFINITY;
        let out = run(&spec, 24);
        assert!(out.spills.is_empty());
        assert_eq!(out.merged.spills_out(), 0);
        assert_eq!(out.shards[0].record.jobs_completed, 24);
        assert_eq!(out.shards[1].record.jobs_completed, 0);
    }

    /// CPU-bound burst: no data locality to lose by moving a job, so
    /// the win from splitting the backlog across shards is pure.
    fn cpu_burst(n: usize) -> Vec<FedArrival> {
        (0..n)
            .map(|i| FedArrival {
                at: SimTime::from_secs_f64(i as f64 * 0.5),
                home: ShardId(0),
                spec: JobSpec::compute(TaskId(0), 4.0, Payload::Index(i as u64)),
            })
            .collect()
    }

    #[test]
    fn spilling_beats_the_overloaded_single_shard() {
        let mut on = two_shards();
        on.spill_threshold_secs = 10.0;
        let mut off = two_shards();
        off.spill_threshold_secs = f64::INFINITY;
        let exec = |spec: &FederationSpec| {
            run_federation(spec, cpu_burst(32), &BaselineAllocator, |_| {
                let mut wf = Workflow::new();
                wf.add_sink("scan");
                wf
            })
        };
        let fed = exec(&on);
        let solo = exec(&off);
        assert!(!fed.spills.is_empty());
        assert_eq!(fed.jobs_completed, 32);
        assert_eq!(solo.jobs_completed, 32);
        assert!(
            fed.makespan_secs < solo.makespan_secs,
            "spillover {} should beat the hot shard {}",
            fed.makespan_secs,
            solo.makespan_secs
        );
    }

    #[test]
    fn lost_spill_leaves_an_unmatched_spill_out() {
        let mut spec = two_shards();
        spec.mutation = FederationMutation::LostSpill;
        let out = run(&spec, 24);
        assert!(!out.spills.is_empty());
        assert_eq!(out.merged.spills_out(), out.merged.spills_in() + 1);
        let victim = out.spills[0].job;
        assert!(
            !out.merged
                .events()
                .iter()
                .any(|e| e.job == Some(victim) && matches!(e.kind, SchedEventKind::Completed)),
            "the dropped hand-off must never complete"
        );
        assert_eq!(out.jobs_completed, 23);
    }

    #[test]
    fn double_spill_completes_twice() {
        let mut spec = two_shards();
        spec.mutation = FederationMutation::DoubleSpill;
        let out = run(&spec, 24);
        assert!(!out.spills.is_empty());
        let victim = out.spills[0].job;
        let dones = out
            .merged
            .events()
            .iter()
            .filter(|e| e.job == Some(victim) && matches!(e.kind, SchedEventKind::Completed))
            .count();
        assert_eq!(dones, 2, "forwarder kept the job it handed off");
        assert_eq!(out.jobs_completed, 25);
    }

    #[test]
    fn routing_is_deterministic_in_its_seeds() {
        let mut spec = two_shards();
        spec.gossip_loss = 0.4;
        spec.net_seed = 11;
        let a = run(&spec, 24);
        let b = run(&spec, 24);
        assert_eq!(a.spills, b.spills);
        assert_eq!(a.merged.events(), b.merged.events());
        spec.net_seed = 12;
        let c = run(&spec, 24);
        // A different gossip-loss pattern is allowed to change the
        // routing; determinism within one seed is what matters, but
        // the run must still conserve jobs.
        assert_eq!(c.jobs_completed, 24);
    }

    #[test]
    fn zero_active_home_shard_always_forwards() {
        use crate::faults::MembershipPlan;
        // Shard 0's only worker never joins until t=1000; every early
        // arrival must be forwarded to shard 1 despite the infinite
        // threshold.
        let mut spec = FederationSpec::new(vec![
            ShardSpec::new(workers(1, "a")).faults(Faults::new().membership(
                MembershipPlan::new().join_at(SimTime::from_secs(1000), crate::job::WorkerId(0)),
            )),
            ShardSpec::new(workers(2, "b")),
        ]);
        spec.spill_threshold_secs = f64::INFINITY;
        spec.engine = EngineConfig::ideal();
        let out = run_federation(
            &spec,
            (0..4)
                .map(|i| FedArrival {
                    at: SimTime::from_secs(i),
                    home: ShardId(0),
                    spec: scan_spec(1, 50),
                })
                .collect(),
            &BaselineAllocator,
            |_| {
                let mut wf = Workflow::new();
                wf.add_sink("scan");
                wf
            },
        );
        assert_eq!(out.spills.len(), 4);
        assert_eq!(out.shards[1].record.jobs_completed, 4);
        assert_eq!(out.shards[0].record.jobs_completed, 0);
    }
}
