//! # crossbid-crossflow
//!
//! A from-scratch implementation of the substrate the paper builds
//! on: **Crossflow**, "a distributed stream-processing engine ...
//! designed specifically to cope with resource-intensive workflows"
//! (§4). Like the original, this framework:
//!
//! * follows the **master/worker** paradigm — the master routes jobs,
//!   workers execute them;
//! * processes **streams of expensive jobs** (each job names a data
//!   resource it must have locally, e.g. a cloned Git repository);
//! * features **"opinionated" worker nodes** that participate in the
//!   allocation decision — either by accepting/rejecting offered jobs
//!   (the Baseline of §4) or by bidding on them (the paper's
//!   contribution, implemented in `crossbid-core`);
//! * lets applications define **workflows** of tasks connected by
//!   typed channels (Figure 1's MSR pipeline is built on this API in
//!   `crossbid-msr`).
//!
//! Two runtimes execute a workflow:
//!
//! * [`engine`] — a deterministic discrete-event simulation of the
//!   whole cluster (network, caches, queues), used for §6.3's
//!   controlled experiments;
//! * [`threaded`] — a real multithreaded runtime (one OS thread per
//!   worker, crossbeam channels as the messaging fabric, scaled
//!   virtual durations) used for §6.4's "non-simulated" experiments.
//!
//! Scheduling is pluggable through the [`Allocator`] trait pair:
//! a master-side [`MasterScheduler`] and a worker-side
//! [`WorkerPolicy`]. The Crossflow Baseline (pull + reject-once) ships
//! here because the paper treats it as part of Crossflow itself.

//! ```
//! use crossbid_crossflow::{
//!     run_workflow, Arrival, BaselineAllocator, Cluster, EngineConfig, JobSpec,
//!     Payload, ResourceRef, RunMeta, WorkerSpec, Workflow,
//! };
//! use crossbid_simcore::SimTime;
//! use crossbid_storage::ObjectId;
//!
//! // Two workers, one task, two jobs over the same 50 MB repository.
//! let specs: Vec<WorkerSpec> =
//!     (0..2).map(|i| WorkerSpec::builder(format!("w{i}")).build()).collect();
//! let mut workflow = Workflow::new();
//! let scan = workflow.add_sink("scan");
//! let repo = ResourceRef { id: ObjectId(1), bytes: 50_000_000 };
//! let arrivals = vec![
//!     Arrival { at: SimTime::ZERO, spec: JobSpec::scanning(scan, repo, Payload::Index(1)) },
//!     Arrival { at: SimTime::from_secs(30), spec: JobSpec::scanning(scan, repo, Payload::Index(1)) },
//! ];
//!
//! let cfg = EngineConfig::ideal();
//! let mut cluster = Cluster::new(&specs, &cfg);
//! let out = run_workflow(
//!     &mut cluster, &mut workflow, &BaselineAllocator, arrivals, &cfg,
//!     &RunMeta::default(),
//! );
//! assert_eq!(out.record.jobs_completed, 2);
//! assert_eq!(out.record.cache_misses, 1, "second job hits the clone");
//! ```

pub mod atomize;
pub mod baseline;
pub mod engine;
pub mod export;
pub mod faults;
pub mod federation;
pub mod idle;
pub mod job;
pub mod obs;
pub mod prelude;
pub mod replog;
pub mod runtime;
pub mod scheduler;
pub mod session;
pub mod spec;
pub mod task;
pub mod threaded;
pub mod trace;
pub mod worker;
pub mod workflow;

pub use atomize::{
    AtomizeConfig, DagError, DagState, DoneOutcome, Speculation, TaskDag, TaskNode, MAX_DAG_TASKS,
};
pub use baseline::BaselineAllocator;
pub use engine::{run_workflow, Cluster, EngineConfig, ReplicationConfig, RunMeta, RunOutput};
pub use export::{
    parse_run_stream, sched_kind_name, write_run_stream, RunStreamLine, RunStreamMeta,
    SCHEMA_VERSION,
};
pub use faults::{
    FaultEvent, FaultPlan, FaultPlanError, Faults, LinkFault, MasterFaultPlan, MembershipAction,
    MembershipEvent, MembershipPlan, NetFaultPlan, Partition, RetryPolicy,
};
pub use federation::{
    run_federation, FedArrival, FedRuntimeKind, FederationMutation, FederationOutput,
    FederationSpec, ShardSpec, SpillRecord,
};
pub use job::{
    Arrival, FedIdentity, Job, JobId, JobSpec, Payload, ResourceRef, ShardId, TaskId, WorkerId,
};
pub use obs::RuntimeMetrics;
pub use replog::{AppendOutcome, ReplicatedLog, SchedState};
pub use runtime::{Runtime, ThreadedSession};
pub use scheduler::{
    Allocator, JobView, MasterScheduler, ObedientPolicy, SchedAction, SchedCtx, SchedStats,
    WorkerPolicy, WorkerToMaster, WorkerView,
};
pub use session::Session;
pub use spec::{RunSpec, RunSpecBuilder, SpecError};
pub use task::{CollectedOutputs, SinkTask, TaskCtx, TaskLogic};
pub use threaded::{
    run_threaded_output, ChaosConfig, DeliveryEntry, DeliveryLog, DeliveryLogHandle,
    ProtocolMutation, ThreadedConfig, ThreadedScheduler,
};
pub use trace::{JobPhases, SchedEvent, SchedEventKind, SchedLog, Trace, TraceEvent, TraceKind};
pub use worker::{WorkerSpec, WorkerSpecBuilder};
pub use workflow::{Workflow, WorkflowError};
