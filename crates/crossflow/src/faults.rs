//! Fault injection — the failure modes the paper defers to future
//! work.
//!
//! §5: "in the initial concept of the Bidding Scheduler, we did not
//! address the issue of fault tolerance. As a result, there are
//! currently no specific policies in place to handle situations such
//! as a worker dying after winning a bid or redistributing the
//! remaining jobs if a worker becomes unavailable."
//!
//! This module supplies exactly those situations, plus the minimal
//! recovery machinery any deployment would have:
//!
//! * a [`FaultPlan`] schedules worker crashes and (optionally)
//!   recoveries at virtual instants;
//! * a crashed worker loses its queue, its in-flight job and its local
//!   store (the disk dies with the instance);
//! * jobs stranded on a dead worker are *redistributed*: a monitoring
//!   layer returns them to the master after a detection delay and they
//!   re-enter allocation;
//! * an assignment addressed to a dead worker bounces back the same
//!   way;
//! * a contest opened against the old roster simply resolves via the
//!   1-second window with the bids that still arrive — the paper's
//!   timeout mechanism doubles as failure masking;
//! * recovered workers rejoin with a cold cache and announce
//!   themselves idle.

//!
//! PR 5 extends the model below whole-worker granularity: a
//! [`NetFaultPlan`] makes the master↔worker *links* lossy — dropped,
//! delayed and duplicated messages plus timed partition windows — and
//! a [`RetryPolicy`] parameterises the at-least-once countermeasures
//! (acked assignments with exponential-backoff retries, per-assignment
//! leases) that keep runs terminating correctly anyway.
//!
//! PR 7 closes the last single point of failure: a [`MasterFaultPlan`]
//! crashes the *master* at chosen committed-append indices of the
//! replicated scheduler log (see [`crate::replog`]) and an elected
//! standby takes over by replay. All three axes are carried by one
//! [`Faults`] aggregate with a single `validate()`, wired through
//! [`RunSpec::builder().faults(..)`](crate::spec::RunSpecBuilder::faults).

use std::fmt;

use crossbid_simcore::rng::splitmix64;
use crossbid_simcore::{SimDuration, SimTime};

use crate::job::WorkerId;

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The worker crashes: queue, in-flight job and local store lost.
    Crash(WorkerId),
    /// The worker rejoins with a cold cache.
    Recover(WorkerId),
}

/// A deterministic schedule of worker faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
    /// How long the monitoring layer takes to notice a dead worker and
    /// return its stranded jobs to the master.
    pub detection_delay: SimDuration,
}

impl FaultPlan {
    /// No faults (the paper's evaluated configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Start building a plan with the default 2 s detection delay.
    pub fn new() -> Self {
        FaultPlan {
            events: Vec::new(),
            detection_delay: SimDuration::from_secs(2),
        }
    }

    /// Schedule a crash.
    pub fn crash_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push((at, FaultEvent::Crash(worker)));
        self
    }

    /// Schedule a recovery.
    pub fn recover_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push((at, FaultEvent::Recover(worker)));
        self
    }

    /// Override the detection delay.
    pub fn with_detection_delay(mut self, d: SimDuration) -> Self {
        self.detection_delay = d;
        self
    }

    /// All scheduled events.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// True iff no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the plan for internal contradictions.
    ///
    /// Scheduled instants are [`SimTime`]s and therefore already
    /// non-negative and finite by construction; what *can* go wrong is
    /// ordering: a recovery scheduled for a worker that is not crashed
    /// at that instant (recover-before-crash inversions included), or
    /// a second crash before the first recovery.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let mut sorted: Vec<&(SimTime, FaultEvent)> = self.events.iter().collect();
        sorted.sort_by_key(|(at, _)| *at);
        let mut crashed: Vec<WorkerId> = Vec::new();
        for (_, ev) in sorted {
            match *ev {
                FaultEvent::Crash(w) => {
                    if crashed.contains(&w) {
                        return Err(FaultPlanError::CrashWhileCrashed(w));
                    }
                    crashed.push(w);
                }
                FaultEvent::Recover(w) => {
                    if let Some(i) = crashed.iter().position(|&c| c == w) {
                        crashed.swap_remove(i);
                    } else {
                        return Err(FaultPlanError::RecoverWithoutCrash(w));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] or [`NetFaultPlan`] is rejected at
/// [`RunSpec::builder()`](crate::spec::RunSpec::builder) time instead
/// of misbehaving silently mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A recovery is scheduled while the worker is not crashed —
    /// including the crash-before-recovery inversion where the
    /// recovery instant precedes the crash instant.
    RecoverWithoutCrash(WorkerId),
    /// A second crash is scheduled before the worker's recovery.
    CrashWhileCrashed(WorkerId),
    /// A probability field is outside `[0, 1]` (or non-finite).
    ProbabilityOutOfRange { field: &'static str, value: f64 },
    /// A duration field is NaN or infinite.
    NonFiniteSeconds { field: &'static str, value: f64 },
    /// A duration field is negative.
    NegativeSeconds { field: &'static str, value: f64 },
    /// `delay_min_secs > delay_max_secs` on a link.
    DelayBoundsInverted { min_secs: f64, max_secs: f64 },
    /// A partition window with `until <= from` can never be active.
    EmptyPartitionWindow { index: usize },
    /// A [`RetryPolicy`] field is outside its valid range.
    RetryOutOfRange { field: &'static str, value: f64 },
    /// `MasterFaultPlan::crash_at` indices must be ≥ 1 and strictly
    /// increasing (they are 1-based committed-append indices).
    MasterCrashOrder { index: u64 },
    /// More master crashes are scheduled than the replica group can
    /// absorb while keeping an append quorum alive.
    MasterCrashBudget { crashes: usize, budget: u32 },
    /// Master crashes are armed but the replica group is too small to
    /// elect a successor (a quorum needs at least 3 replicas).
    InsufficientReplicas { replicas: u32 },
    /// A [`MembershipPlan`] event sequence is internally inconsistent
    /// for one worker (join-after-presence, drain-after-removal, …).
    MembershipOrder {
        /// The worker with the contradictory timeline.
        worker: WorkerId,
        /// What went wrong, in imperative-ordering terms.
        detail: &'static str,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::RecoverWithoutCrash(w) => {
                write!(f, "recovery scheduled for worker {} while it is not crashed (crash-before-recovery inversion?)", w.0)
            }
            FaultPlanError::CrashWhileCrashed(w) => {
                write!(
                    f,
                    "crash scheduled for worker {} while it is already crashed",
                    w.0
                )
            }
            FaultPlanError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} = {value} is not a probability in [0, 1]")
            }
            FaultPlanError::NonFiniteSeconds { field, value } => {
                write!(f, "{field} = {value} is not finite")
            }
            FaultPlanError::NegativeSeconds { field, value } => {
                write!(f, "{field} = {value} is negative")
            }
            FaultPlanError::DelayBoundsInverted { min_secs, max_secs } => {
                write!(f, "delay bounds inverted: min {min_secs} > max {max_secs}")
            }
            FaultPlanError::EmptyPartitionWindow { index } => {
                write!(
                    f,
                    "partition window #{index} has until <= from and can never be active"
                )
            }
            FaultPlanError::RetryOutOfRange { field, value } => {
                write!(f, "retry policy field {field} = {value} is out of range")
            }
            FaultPlanError::MasterCrashOrder { index } => {
                write!(
                    f,
                    "master crash index {index} is not ≥ 1 and strictly increasing"
                )
            }
            FaultPlanError::MasterCrashBudget { crashes, budget } => {
                write!(
                    f,
                    "{crashes} master crashes exceed the replica group's budget of {budget} (a quorum must survive)"
                )
            }
            FaultPlanError::InsufficientReplicas { replicas } => {
                write!(
                    f,
                    "{replicas} master replicas cannot elect a successor; need at least 3"
                )
            }
            FaultPlanError::MembershipOrder { worker, detail } => {
                write!(f, "membership plan for worker {}: {detail}", worker.0)
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Lossy behaviour of one message direction of a master↔worker link.
///
/// Every probability is sampled independently per physical send;
/// extra delay is uniform over `[delay_min_secs, delay_max_secs]`
/// virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkFault {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message arrives twice.
    pub dup_prob: f64,
    /// Lower bound of the extra per-message delay (virtual seconds).
    pub delay_min_secs: f64,
    /// Upper bound of the extra per-message delay (virtual seconds).
    pub delay_max_secs: f64,
}

impl LinkFault {
    /// A perfectly reliable direction (all zeros).
    pub fn none() -> Self {
        Self::default()
    }

    /// True iff this direction can drop, duplicate or delay anything.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_max_secs > 0.0
    }

    fn validate(&self, dir: &'static str) -> Result<(), FaultPlanError> {
        let probs = [
            (
                if dir == "to_worker" {
                    "to_worker.drop_prob"
                } else {
                    "to_master.drop_prob"
                },
                self.drop_prob,
            ),
            (
                if dir == "to_worker" {
                    "to_worker.dup_prob"
                } else {
                    "to_master.dup_prob"
                },
                self.dup_prob,
            ),
        ];
        for (field, value) in probs {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(FaultPlanError::ProbabilityOutOfRange { field, value });
            }
        }
        for (field, value) in [
            ("delay_min_secs", self.delay_min_secs),
            ("delay_max_secs", self.delay_max_secs),
        ] {
            if !value.is_finite() {
                return Err(FaultPlanError::NonFiniteSeconds { field, value });
            }
            if value < 0.0 {
                return Err(FaultPlanError::NegativeSeconds { field, value });
            }
        }
        if self.delay_min_secs > self.delay_max_secs {
            return Err(FaultPlanError::DelayBoundsInverted {
                min_secs: self.delay_min_secs,
                max_secs: self.delay_max_secs,
            });
        }
        Ok(())
    }
}

/// A timed master↔worker partition window: both directions of the
/// link drop every message sent while `from <= now < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// The partitioned worker, or `None` to cut off every worker.
    pub worker: Option<WorkerId>,
    /// Window start (inclusive), virtual time.
    pub from: SimTime,
    /// Window end (exclusive), virtual time.
    pub until: SimTime,
}

/// The at-least-once countermeasure parameters: seeded
/// exponential-backoff retries for unacked sends and per-assignment
/// leases that bounce a job back to the scheduler when neither an ack
/// nor a `Done` arrives in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First retransmission delay (virtual seconds).
    pub base_secs: f64,
    /// Ceiling on the exponential backoff (virtual seconds).
    pub cap_secs: f64,
    /// Jitter amplitude as a fraction of the capped delay: the delay
    /// is scaled by `1 + jitter_frac * (u - 0.5)` with `u` uniform in
    /// `[0, 1)`. Must stay in `[0, 0.5]` so delays remain positive.
    pub jitter_frac: f64,
    /// Retransmissions before giving up and letting the lease expire.
    pub max_attempts: u32,
    /// How long an unacked, un-`Done` assignment is honoured before
    /// the job is bounced back to the scheduler for re-offer.
    pub lease_secs: f64,
    /// Idle re-announcement period for workers (virtual seconds), so
    /// a dropped `Idle` only delays — never wedges — the pull loop.
    pub heartbeat_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_secs: 0.25,
            cap_secs: 2.0,
            jitter_frac: 0.2,
            max_attempts: 4,
            lease_secs: 3.0,
            heartbeat_secs: 1.0,
        }
    }
}

impl RetryPolicy {
    /// The retransmission delay before attempt `attempt` (0-based), or
    /// `None` once the budget is exhausted — the caller escalates to a
    /// lease bounce.
    ///
    /// Deterministic per `(seed, attempt)`: the jitter draw hashes
    /// both through splitmix64, so a replayed run retries at the exact
    /// same instants.
    pub fn delay_secs(&self, seed: u64, attempt: u32) -> Option<f64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let capped = (self.base_secs * 2f64.powi(attempt.min(62) as i32)).min(self.cap_secs);
        let mut s = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1);
        let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
        Some(capped * (1.0 + self.jitter_frac * (u - 0.5)))
    }

    fn validate(&self) -> Result<(), FaultPlanError> {
        for (field, value, min) in [
            ("base_secs", self.base_secs, f64::MIN_POSITIVE),
            ("cap_secs", self.cap_secs, f64::MIN_POSITIVE),
            ("lease_secs", self.lease_secs, f64::MIN_POSITIVE),
            ("heartbeat_secs", self.heartbeat_secs, f64::MIN_POSITIVE),
            ("jitter_frac", self.jitter_frac, 0.0),
        ] {
            if !value.is_finite() || value < min {
                return Err(FaultPlanError::RetryOutOfRange { field, value });
            }
        }
        if self.jitter_frac > 0.5 {
            return Err(FaultPlanError::RetryOutOfRange {
                field: "jitter_frac",
                value: self.jitter_frac,
            });
        }
        if self.max_attempts == 0 {
            return Err(FaultPlanError::RetryOutOfRange {
                field: "max_attempts",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// A deterministic plan of message-level link faults between the
/// master and its workers, plus the [`RetryPolicy`] that tolerates
/// them.
///
/// Both runtimes consume the same plan: the simulation engine samples
/// it at its virtual send instants, the threaded runtime through a
/// delivery shim around the crossbeam channels (against scaled
/// virtual time). When [`is_active`](NetFaultPlan::is_active) is
/// false the entire reliability layer stays out of the code path and
/// runs are byte-identical to a build without it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultPlan {
    /// Master → worker direction (`Assign`/`Offer`/`BidRequest`/acks).
    pub to_worker: LinkFault,
    /// Worker → master direction (bids, `Idle`, `Reject`, `Done`).
    pub to_master: LinkFault,
    /// Timed partition windows; both directions drop inside a window.
    pub partitions: Vec<Partition>,
    /// The "net seed": all drop/dup/delay draws derive from it, so a
    /// failing (run seed, chaos seed, net seed) triple replays.
    pub seed: u64,
    /// Countermeasure parameters.
    pub retry: RetryPolicy,
}

impl NetFaultPlan {
    /// A perfectly reliable network (the paper's TCP assumption).
    pub fn none() -> Self {
        Self::default()
    }

    /// A symmetric lossy preset: `drop` loss and `dup` duplication in
    /// both directions plus up to 50 virtual milliseconds of extra
    /// delay per message.
    pub fn lossy(seed: u64, drop: f64, dup: f64) -> Self {
        let link = LinkFault {
            drop_prob: drop,
            dup_prob: dup,
            delay_min_secs: 0.0,
            delay_max_secs: 0.05,
        };
        NetFaultPlan {
            to_worker: link,
            to_master: link,
            seed,
            ..Self::default()
        }
    }

    /// Add a partition window (`worker = None` cuts off everyone).
    pub fn with_partition(
        mut self,
        worker: Option<WorkerId>,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.partitions.push(Partition {
            worker,
            from,
            until,
        });
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// True iff the plan can affect any message. Gates the whole
    /// reliability layer: an inactive plan leaves both runtimes on
    /// their exact pre-existing code paths.
    pub fn is_active(&self) -> bool {
        self.to_worker.is_active() || self.to_master.is_active() || !self.partitions.is_empty()
    }

    /// Is `worker`'s link inside a partition window at `now`?
    /// Sampled at send time, in virtual time, for both directions.
    pub fn partitioned(&self, worker: WorkerId, now: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|p| p.worker.is_none_or(|w| w == worker) && now >= p.from && now < p.until)
    }

    /// Is the worker→worker link between `a` and `b` cut at `at`?
    ///
    /// Peer data transfers traverse both endpoints' links, so a
    /// partition window on either side severs the pair.  Sampled at
    /// send time like [`Self::partitioned`].
    pub fn link_blocked(&self, a: WorkerId, b: WorkerId, at: SimTime) -> bool {
        self.partitioned(a, at) || self.partitioned(b, at)
    }

    /// The instant the last partition window ends ([`SimTime::ZERO`]
    /// when there are none) — the stall detector's healing horizon.
    pub fn partitions_end(&self) -> SimTime {
        self.partitions
            .iter()
            .map(|p| p.until)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Check every probability, delay bound, partition window and
    /// retry parameter; returns the first problem found.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        self.to_worker.validate("to_worker")?;
        self.to_master.validate("to_master")?;
        for (index, p) in self.partitions.iter().enumerate() {
            if p.until <= p.from {
                return Err(FaultPlanError::EmptyPartitionWindow { index });
            }
        }
        self.retry.validate()
    }
}

/// A deterministic plan of *master* crashes, expressed in replicated-
/// log coordinates: the leader dies while performing its N-th append
/// to the [`crate::replog::ReplicatedLog`] (1-based, counting every
/// append attempt). Keying crashes to log indices instead of wall
/// instants makes a failover replayable bit-for-bit on both runtimes —
/// the log is the only clock the two share exactly.
///
/// The replica group is modeled, not simulated: `replicas` standby
/// followers ack every append (commit-before-act), so when the leader
/// dies the survivors hold every *committed* entry and one of them is
/// elected after `election_timeout_secs`. Validation enforces the
/// quorum arithmetic: with `r` replicas and quorum `r/2 + 1`, at most
/// `r - quorum` crashes can be scheduled (3 replicas → 1 crash,
/// 5 → 2).
#[derive(Debug, Clone, PartialEq)]
pub struct MasterFaultPlan {
    /// Size of the master replica group (leader + standbys).
    pub replicas: u32,
    /// 1-based committed-append indices at which the current leader
    /// crashes; must be strictly increasing.
    pub crash_at: Vec<u64>,
    /// Modeled election gap before the standby takes over (virtual
    /// seconds; must be finite and positive).
    pub election_timeout_secs: f64,
}

impl Default for MasterFaultPlan {
    fn default() -> Self {
        MasterFaultPlan {
            replicas: 3,
            crash_at: Vec::new(),
            election_timeout_secs: 0.5,
        }
    }
}

impl MasterFaultPlan {
    /// No master crashes (every prior PR's configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Start building a plan (3 replicas, 0.5 s election timeout).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a leader crash at the given 1-based append index.
    pub fn crash_at(mut self, append_index: u64) -> Self {
        self.crash_at.push(append_index);
        self
    }

    /// Override the replica group size.
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas;
        self
    }

    /// Override the election timeout.
    pub fn with_election_timeout(mut self, secs: f64) -> Self {
        self.election_timeout_secs = secs;
        self
    }

    /// True iff no master crash is scheduled.
    pub fn is_empty(&self) -> bool {
        self.crash_at.is_empty()
    }

    /// Followers needed (leader included) to commit an append.
    pub fn quorum(&self) -> u32 {
        self.replicas / 2 + 1
    }

    /// How many leader crashes the group can absorb while an append
    /// quorum survives.
    pub fn crash_budget(&self) -> u32 {
        self.replicas.saturating_sub(self.quorum())
    }

    /// Check quorum arithmetic, crash ordering and the election gap.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let secs = self.election_timeout_secs;
        if !secs.is_finite() {
            return Err(FaultPlanError::NonFiniteSeconds {
                field: "election_timeout_secs",
                value: secs,
            });
        }
        if secs <= 0.0 {
            return Err(FaultPlanError::NegativeSeconds {
                field: "election_timeout_secs",
                value: secs,
            });
        }
        let mut prev = 0u64;
        for &index in &self.crash_at {
            if index <= prev {
                return Err(FaultPlanError::MasterCrashOrder { index });
            }
            prev = index;
        }
        if self.is_empty() {
            return Ok(());
        }
        if self.replicas < 3 {
            return Err(FaultPlanError::InsufficientReplicas {
                replicas: self.replicas,
            });
        }
        let budget = self.crash_budget();
        if self.crash_at.len() > budget as usize {
            return Err(FaultPlanError::MasterCrashBudget {
                crashes: self.crash_at.len(),
                budget,
            });
        }
        Ok(())
    }
}

/// One elastic-membership action (autoscaling vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipAction {
    /// The worker joins the roster at the scheduled instant. A worker
    /// with a `Join` event is *deferred*: it exists in the run's
    /// worker list but is dormant — out of the roster, the idle pool
    /// and every contest — until its join fires.
    Join,
    /// The worker stops accepting new placements but finishes its
    /// queue; once empty it is removed from the roster.
    Drain,
    /// The worker is removed immediately (administrative scale-down):
    /// its queue and in-flight job are reclaimed by the master and
    /// redistributed without a detection delay — unlike a
    /// [`FaultEvent::Crash`], the control plane *knows*.
    Remove,
}

/// One scheduled membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Virtual instant the action fires.
    pub at: SimTime,
    /// The worker concerned (index into the run's worker list).
    pub worker: WorkerId,
    /// What happens.
    pub action: MembershipAction,
}

/// A deterministic schedule of elastic-membership changes — the
/// `AddWorker`/`DrainWorker`/`RemoveWorker` command vocabulary, so
/// scenarios can model autoscaling under diurnal load. Consumed by
/// both runtimes; an empty plan leaves them on their exact
/// pre-existing code paths.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MembershipPlan {
    events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// Static membership (every prior PR's configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Start building a plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `worker` to join the roster at `at`. The worker must
    /// be part of the run's worker list; it stays dormant until then.
    pub fn join_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push(MembershipEvent {
            at,
            worker,
            action: MembershipAction::Join,
        });
        self
    }

    /// Schedule `worker` to start draining at `at`.
    pub fn drain_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push(MembershipEvent {
            at,
            worker,
            action: MembershipAction::Drain,
        });
        self
    }

    /// Schedule `worker`'s immediate removal at `at`.
    pub fn remove_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push(MembershipEvent {
            at,
            worker,
            action: MembershipAction::Remove,
        });
        self
    }

    /// All scheduled events, in builder order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// True iff membership is static.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Is `worker` deferred (dormant until a scheduled `Join`)?
    pub fn is_deferred(&self, worker: WorkerId) -> bool {
        self.events
            .iter()
            .any(|e| e.worker == worker && e.action == MembershipAction::Join)
    }

    /// Check each worker's timeline for contradictions: a `Join` must
    /// come before any other event for a deferred worker and must be
    /// its first event; at most one `Drain`; nothing after a `Remove`.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        use std::collections::BTreeMap;
        let mut per_worker: BTreeMap<WorkerId, Vec<&MembershipEvent>> = BTreeMap::new();
        for e in &self.events {
            per_worker.entry(e.worker).or_default().push(e);
        }
        for (worker, mut evs) in per_worker {
            evs.sort_by_key(|e| e.at);
            let mut present = !self.is_deferred(worker);
            let mut draining = false;
            let mut removed = false;
            for e in evs {
                if removed {
                    return Err(FaultPlanError::MembershipOrder {
                        worker,
                        detail: "event scheduled after the worker's removal",
                    });
                }
                match e.action {
                    MembershipAction::Join => {
                        if present {
                            return Err(FaultPlanError::MembershipOrder {
                                worker,
                                detail: "join scheduled while the worker is already present",
                            });
                        }
                        present = true;
                    }
                    MembershipAction::Drain => {
                        if !present {
                            return Err(FaultPlanError::MembershipOrder {
                                worker,
                                detail: "drain scheduled before the worker joined",
                            });
                        }
                        if draining {
                            return Err(FaultPlanError::MembershipOrder {
                                worker,
                                detail: "drain scheduled while the worker is already draining",
                            });
                        }
                        draining = true;
                    }
                    MembershipAction::Remove => {
                        if !present {
                            return Err(FaultPlanError::MembershipOrder {
                                worker,
                                detail: "removal scheduled before the worker joined",
                            });
                        }
                        removed = true;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Every fault axis of one run — worker crashes, lossy links and
/// master crashes — behind a single builder and a single `validate()`.
///
/// [`RunSpec::builder().faults(..)`](crate::spec::RunSpecBuilder::faults)
/// takes `impl Into<Faults>`, so a lone [`FaultPlan`], [`NetFaultPlan`]
/// or [`MasterFaultPlan`] still reads naturally while combined plans
/// compose:
///
/// ```
/// use crossbid_crossflow::faults::{Faults, FaultPlan, MasterFaultPlan, NetFaultPlan};
///
/// let faults = Faults::new()
///     .net(NetFaultPlan::lossy(7, 0.1, 0.05))
///     .master(MasterFaultPlan::new().crash_at(40));
/// assert!(!faults.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Faults {
    /// Worker crash/recovery schedule.
    pub workers: FaultPlan,
    /// Link-level loss, duplication, delay and partitions.
    pub net: NetFaultPlan,
    /// Master crash schedule in replicated-log coordinates.
    pub master: MasterFaultPlan,
    /// Elastic-membership schedule (join/drain/remove).
    pub membership: MembershipPlan,
}

impl Faults {
    /// No faults on any axis.
    pub fn none() -> Self {
        Self::default()
    }

    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker crash/recovery plan.
    pub fn workers(mut self, plan: FaultPlan) -> Self {
        self.workers = plan;
        self
    }

    /// Set the link-fault plan.
    pub fn net(mut self, plan: NetFaultPlan) -> Self {
        self.net = plan;
        self
    }

    /// Set the master crash plan.
    pub fn master(mut self, plan: MasterFaultPlan) -> Self {
        self.master = plan;
        self
    }

    /// Set the elastic-membership plan.
    pub fn membership(mut self, plan: MembershipPlan) -> Self {
        self.membership = plan;
        self
    }

    /// True iff no axis can inject anything.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
            && !self.net.is_active()
            && self.master.is_empty()
            && self.membership.is_empty()
    }

    /// Validate all four axes, mapping each failure to its
    /// [`SpecError`](crate::spec::SpecError) variant.
    pub fn validate(&self) -> Result<(), crate::spec::SpecError> {
        use crate::spec::SpecError;
        self.workers.validate().map_err(SpecError::Faults)?;
        self.net.validate().map_err(SpecError::NetFaults)?;
        self.master.validate().map_err(SpecError::MasterFaults)?;
        self.membership.validate().map_err(SpecError::Membership)?;
        Ok(())
    }
}

impl From<FaultPlan> for Faults {
    fn from(plan: FaultPlan) -> Self {
        Faults::new().workers(plan)
    }
}

impl From<NetFaultPlan> for Faults {
    fn from(plan: NetFaultPlan) -> Self {
        Faults::new().net(plan)
    }
}

impl From<MasterFaultPlan> for Faults {
    fn from(plan: MasterFaultPlan) -> Self {
        Faults::new().master(plan)
    }
}

impl From<MembershipPlan> for Faults {
    fn from(plan: MembershipPlan) -> Self {
        Faults::new().membership(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(10), WorkerId(2))
            .recover_at(SimTime::from_secs(60), WorkerId(2))
            .with_detection_delay(SimDuration::from_secs(5));
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.detection_delay, SimDuration::from_secs(5));
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[0],
            (SimTime::from_secs(10), FaultEvent::Crash(WorkerId(2)))
        );
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn ordered_crash_recover_pairs_validate() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(10), WorkerId(2))
            .recover_at(SimTime::from_secs(60), WorkerId(2))
            .crash_at(SimTime::from_secs(70), WorkerId(2));
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(FaultPlan::none().validate(), Ok(()));
    }

    #[test]
    fn recovery_before_crash_is_an_inversion() {
        // Builder order is crash-then-recover but the instants are
        // inverted: at t=5 the worker is not crashed yet.
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(10), WorkerId(1))
            .recover_at(SimTime::from_secs(5), WorkerId(1));
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::RecoverWithoutCrash(WorkerId(1)))
        );
    }

    #[test]
    fn recovery_without_any_crash_is_rejected() {
        let plan = FaultPlan::new().recover_at(SimTime::from_secs(5), WorkerId(0));
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::RecoverWithoutCrash(WorkerId(0)))
        );
    }

    #[test]
    fn double_crash_is_rejected() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(1), WorkerId(3))
            .crash_at(SimTime::from_secs(2), WorkerId(3));
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::CrashWhileCrashed(WorkerId(3)))
        );
    }

    #[test]
    fn net_plan_rejects_out_of_range_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let plan = NetFaultPlan {
                to_worker: LinkFault {
                    drop_prob: bad,
                    ..LinkFault::none()
                },
                ..NetFaultPlan::none()
            };
            assert!(
                matches!(
                    plan.validate(),
                    Err(FaultPlanError::ProbabilityOutOfRange {
                        field: "to_worker.drop_prob",
                        ..
                    })
                ),
                "drop_prob = {bad} must be rejected"
            );
            let plan = NetFaultPlan {
                to_master: LinkFault {
                    dup_prob: bad,
                    ..LinkFault::none()
                },
                ..NetFaultPlan::none()
            };
            assert!(
                matches!(
                    plan.validate(),
                    Err(FaultPlanError::ProbabilityOutOfRange {
                        field: "to_master.dup_prob",
                        ..
                    })
                ),
                "dup_prob = {bad} must be rejected"
            );
        }
    }

    #[test]
    fn net_plan_rejects_bad_delays() {
        let nan = NetFaultPlan {
            to_worker: LinkFault {
                delay_max_secs: f64::NAN,
                ..LinkFault::none()
            },
            ..NetFaultPlan::none()
        };
        assert!(matches!(
            nan.validate(),
            Err(FaultPlanError::NonFiniteSeconds {
                field: "delay_max_secs",
                ..
            })
        ));
        let negative = NetFaultPlan {
            to_master: LinkFault {
                delay_min_secs: -0.5,
                delay_max_secs: 1.0,
                ..LinkFault::none()
            },
            ..NetFaultPlan::none()
        };
        assert!(matches!(
            negative.validate(),
            Err(FaultPlanError::NegativeSeconds {
                field: "delay_min_secs",
                ..
            })
        ));
        let inverted = NetFaultPlan {
            to_worker: LinkFault {
                delay_min_secs: 2.0,
                delay_max_secs: 1.0,
                ..LinkFault::none()
            },
            ..NetFaultPlan::none()
        };
        assert_eq!(
            inverted.validate(),
            Err(FaultPlanError::DelayBoundsInverted {
                min_secs: 2.0,
                max_secs: 1.0
            })
        );
    }

    #[test]
    fn net_plan_rejects_empty_partition_windows() {
        let plan =
            NetFaultPlan::none().with_partition(None, SimTime::from_secs(5), SimTime::from_secs(5));
        assert_eq!(
            plan.validate(),
            Err(FaultPlanError::EmptyPartitionWindow { index: 0 })
        );
    }

    #[test]
    fn net_plan_rejects_degenerate_retry_policies() {
        for (field, retry) in [
            (
                "base_secs",
                RetryPolicy {
                    base_secs: 0.0,
                    ..RetryPolicy::default()
                },
            ),
            (
                "lease_secs",
                RetryPolicy {
                    lease_secs: f64::NAN,
                    ..RetryPolicy::default()
                },
            ),
            (
                "jitter_frac",
                RetryPolicy {
                    jitter_frac: 0.75,
                    ..RetryPolicy::default()
                },
            ),
            (
                "max_attempts",
                RetryPolicy {
                    max_attempts: 0,
                    ..RetryPolicy::default()
                },
            ),
        ] {
            let plan = NetFaultPlan {
                retry,
                ..NetFaultPlan::none()
            };
            match plan.validate() {
                Err(FaultPlanError::RetryOutOfRange { field: got, .. }) => {
                    assert_eq!(got, field)
                }
                other => panic!("{field}: expected RetryOutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn lossy_preset_is_active_and_valid() {
        let plan = NetFaultPlan::lossy(42, 0.3, 0.1);
        assert!(plan.is_active());
        assert_eq!(plan.validate(), Ok(()));
        assert!(!NetFaultPlan::none().is_active());
    }

    #[test]
    fn master_plan_defaults_are_quorate_and_empty() {
        let plan = MasterFaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.replicas, 3);
        assert_eq!(plan.quorum(), 2);
        assert_eq!(plan.crash_budget(), 1);
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn master_plan_rejects_non_increasing_crash_indices() {
        for bad in [
            MasterFaultPlan::new().crash_at(0),
            MasterFaultPlan::new()
                .crash_at(5)
                .crash_at(5)
                .with_replicas(5),
            MasterFaultPlan::new()
                .crash_at(9)
                .crash_at(3)
                .with_replicas(5),
        ] {
            assert!(
                matches!(bad.validate(), Err(FaultPlanError::MasterCrashOrder { .. })),
                "{:?} must be rejected",
                bad.crash_at
            );
        }
    }

    #[test]
    fn master_plan_enforces_quorum_arithmetic() {
        // 3 replicas (quorum 2) absorb exactly one leader crash.
        assert_eq!(MasterFaultPlan::new().crash_at(10).validate(), Ok(()));
        assert_eq!(
            MasterFaultPlan::new().crash_at(10).crash_at(20).validate(),
            Err(FaultPlanError::MasterCrashBudget {
                crashes: 2,
                budget: 1
            })
        );
        // 5 replicas (quorum 3) absorb two.
        assert_eq!(
            MasterFaultPlan::new()
                .with_replicas(5)
                .crash_at(10)
                .crash_at(20)
                .validate(),
            Ok(())
        );
        assert_eq!(
            MasterFaultPlan::new()
                .with_replicas(2)
                .crash_at(1)
                .validate(),
            Err(FaultPlanError::InsufficientReplicas { replicas: 2 })
        );
    }

    #[test]
    fn master_plan_rejects_degenerate_election_timeouts() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let plan = MasterFaultPlan::new().with_election_timeout(bad);
            assert!(
                matches!(
                    plan.validate(),
                    Err(FaultPlanError::NonFiniteSeconds { .. }
                        | FaultPlanError::NegativeSeconds { .. })
                ),
                "election_timeout_secs = {bad} must be rejected"
            );
        }
    }

    #[test]
    fn faults_aggregate_composes_and_converts() {
        assert!(Faults::none().is_empty());
        assert!(!Faults::from(NetFaultPlan::lossy(1, 0.1, 0.0)).is_empty());
        assert!(!Faults::from(MasterFaultPlan::new().crash_at(3)).is_empty());
        let from_workers: Faults = FaultPlan::new()
            .crash_at(SimTime::from_secs(1), WorkerId(0))
            .into();
        assert!(!from_workers.is_empty());
        assert!(from_workers.net.partitions.is_empty());
        let combined = Faults::new()
            .workers(FaultPlan::new().crash_at(SimTime::from_secs(1), WorkerId(0)))
            .net(NetFaultPlan::lossy(1, 0.1, 0.0))
            .master(MasterFaultPlan::new().crash_at(3));
        assert!(combined.validate().is_ok());
    }

    #[test]
    fn faults_aggregate_maps_each_axis_to_its_spec_error() {
        use crate::spec::SpecError;
        let bad_workers =
            Faults::new().workers(FaultPlan::new().recover_at(SimTime::from_secs(1), WorkerId(0)));
        assert!(matches!(
            bad_workers.validate(),
            Err(SpecError::Faults(FaultPlanError::RecoverWithoutCrash(_)))
        ));
        let bad_net = Faults::new().net(NetFaultPlan::lossy(0, 2.0, 0.0));
        assert!(matches!(
            bad_net.validate(),
            Err(SpecError::NetFaults(
                FaultPlanError::ProbabilityOutOfRange { .. }
            ))
        ));
        let bad_master = Faults::new().master(MasterFaultPlan::new().crash_at(0));
        assert!(matches!(
            bad_master.validate(),
            Err(SpecError::MasterFaults(
                FaultPlanError::MasterCrashOrder { .. }
            ))
        ));
    }

    #[test]
    fn membership_plan_validates_ordered_timelines() {
        let plan = MembershipPlan::new()
            .join_at(SimTime::from_secs(5), WorkerId(3))
            .drain_at(SimTime::from_secs(20), WorkerId(3))
            .drain_at(SimTime::from_secs(10), WorkerId(0))
            .remove_at(SimTime::from_secs(15), WorkerId(1));
        assert_eq!(plan.validate(), Ok(()));
        assert!(plan.is_deferred(WorkerId(3)));
        assert!(!plan.is_deferred(WorkerId(0)));
        assert!(!plan.is_empty());
        assert!(MembershipPlan::none().is_empty());
        assert_eq!(MembershipPlan::none().validate(), Ok(()));
    }

    #[test]
    fn membership_plan_rejects_contradictory_timelines() {
        // Drain before the worker's join instant.
        let early_drain = MembershipPlan::new()
            .join_at(SimTime::from_secs(10), WorkerId(2))
            .drain_at(SimTime::from_secs(5), WorkerId(2));
        assert!(matches!(
            early_drain.validate(),
            Err(FaultPlanError::MembershipOrder {
                worker: WorkerId(2),
                ..
            })
        ));
        // Join for a worker that is already present (no prior removal).
        let double_join = MembershipPlan::new()
            .join_at(SimTime::from_secs(1), WorkerId(0))
            .join_at(SimTime::from_secs(2), WorkerId(0));
        assert!(double_join.validate().is_err());
        // Anything after a removal.
        let after_removal = MembershipPlan::new()
            .remove_at(SimTime::from_secs(1), WorkerId(4))
            .drain_at(SimTime::from_secs(2), WorkerId(4));
        assert!(after_removal.validate().is_err());
        // Double drain.
        let double_drain = MembershipPlan::new()
            .drain_at(SimTime::from_secs(1), WorkerId(5))
            .drain_at(SimTime::from_secs(2), WorkerId(5));
        assert!(double_drain.validate().is_err());
    }

    #[test]
    fn membership_rides_the_faults_aggregate() {
        use crate::spec::SpecError;
        let churn: Faults = MembershipPlan::new()
            .drain_at(SimTime::from_secs(3), WorkerId(0))
            .into();
        assert!(!churn.is_empty());
        assert!(churn.validate().is_ok());
        let bad = Faults::new().membership(
            MembershipPlan::new()
                .join_at(SimTime::from_secs(2), WorkerId(1))
                .remove_at(SimTime::from_secs(1), WorkerId(1)),
        );
        assert!(matches!(
            bad.validate(),
            Err(SpecError::Membership(
                FaultPlanError::MembershipOrder { .. }
            ))
        ));
    }

    #[test]
    fn partition_windows_match_worker_and_time() {
        let plan = NetFaultPlan::none()
            .with_partition(
                Some(WorkerId(1)),
                SimTime::from_secs(2),
                SimTime::from_secs(4),
            )
            .with_partition(None, SimTime::from_secs(10), SimTime::from_secs(11));
        assert!(plan.partitioned(WorkerId(1), SimTime::from_secs(2)));
        assert!(
            !plan.partitioned(WorkerId(1), SimTime::from_secs(4)),
            "until is exclusive"
        );
        assert!(!plan.partitioned(WorkerId(0), SimTime::from_secs(3)));
        assert!(
            plan.partitioned(WorkerId(0), SimTime::from_secs(10)),
            "None matches everyone"
        );
        assert_eq!(plan.partitions_end(), SimTime::from_secs(11));
    }
}

#[cfg(test)]
mod backoff_properties {
    use proptest::prelude::*;

    use super::*;

    // `PROPTEST_CASES` overrides the configured case count (see the
    // vendored `test_runner::resolve_cases`), like the rest of the
    // suite's property sweeps.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Jitter is a pure function of (seed, attempt): a replayed
        /// run retries at the exact same virtual instants.
        #[test]
        fn delay_is_deterministic_per_seed_and_attempt(
            seed in 0u64..=u64::MAX,
            attempt in 0u32..16,
        ) {
            let p = RetryPolicy { max_attempts: 16, ..RetryPolicy::default() };
            prop_assert_eq!(p.delay_secs(seed, attempt), p.delay_secs(seed, attempt));
        }

        /// Every delay stays positive and below the jittered cap.
        #[test]
        fn delays_are_positive_and_capped(
            seed in 0u64..=u64::MAX,
            attempt in 0u32..16,
            jitter in 0.0f64..0.5,
        ) {
            let p = RetryPolicy { max_attempts: 16, jitter_frac: jitter, ..RetryPolicy::default() };
            let d = p.delay_secs(seed, attempt).unwrap();
            prop_assert!(d > 0.0);
            prop_assert!(d <= p.cap_secs * (1.0 + jitter / 2.0));
        }

        /// Without jitter the schedule is monotone non-decreasing and
        /// clamps at the cap.
        #[test]
        fn jitterless_delays_are_monotone_capped(seed in 0u64..=u64::MAX) {
            let p = RetryPolicy { max_attempts: 16, jitter_frac: 0.0, ..RetryPolicy::default() };
            let mut prev = 0.0f64;
            for attempt in 0..p.max_attempts {
                let d = p.delay_secs(seed, attempt).unwrap();
                prop_assert!(d >= prev, "attempt {}: {} < {}", attempt, d, prev);
                prop_assert!(d <= p.cap_secs);
                prev = d;
            }
        }

        /// Exhaustion happens at exactly `max_attempts`, where the
        /// caller escalates to a lease bounce.
        #[test]
        fn retries_exhaust_at_exactly_max_attempts(
            seed in 0u64..=u64::MAX,
            max in 1u32..12,
        ) {
            let p = RetryPolicy { max_attempts: max, ..RetryPolicy::default() };
            for attempt in 0..max {
                prop_assert!(p.delay_secs(seed, attempt).is_some());
            }
            prop_assert!(p.delay_secs(seed, max).is_none());
            prop_assert!(p.delay_secs(seed, max + 1).is_none());
        }
    }
}
