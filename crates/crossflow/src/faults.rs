//! Fault injection — the failure modes the paper defers to future
//! work.
//!
//! §5: "in the initial concept of the Bidding Scheduler, we did not
//! address the issue of fault tolerance. As a result, there are
//! currently no specific policies in place to handle situations such
//! as a worker dying after winning a bid or redistributing the
//! remaining jobs if a worker becomes unavailable."
//!
//! This module supplies exactly those situations, plus the minimal
//! recovery machinery any deployment would have:
//!
//! * a [`FaultPlan`] schedules worker crashes and (optionally)
//!   recoveries at virtual instants;
//! * a crashed worker loses its queue, its in-flight job and its local
//!   store (the disk dies with the instance);
//! * jobs stranded on a dead worker are *redistributed*: a monitoring
//!   layer returns them to the master after a detection delay and they
//!   re-enter allocation;
//! * an assignment addressed to a dead worker bounces back the same
//!   way;
//! * a contest opened against the old roster simply resolves via the
//!   1-second window with the bids that still arrive — the paper's
//!   timeout mechanism doubles as failure masking;
//! * recovered workers rejoin with a cold cache and announce
//!   themselves idle.

use crossbid_simcore::{SimDuration, SimTime};

use crate::job::WorkerId;

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The worker crashes: queue, in-flight job and local store lost.
    Crash(WorkerId),
    /// The worker rejoins with a cold cache.
    Recover(WorkerId),
}

/// A deterministic schedule of worker faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
    /// How long the monitoring layer takes to notice a dead worker and
    /// return its stranded jobs to the master.
    pub detection_delay: SimDuration,
}

impl FaultPlan {
    /// No faults (the paper's evaluated configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Start building a plan with the default 2 s detection delay.
    pub fn new() -> Self {
        FaultPlan {
            events: Vec::new(),
            detection_delay: SimDuration::from_secs(2),
        }
    }

    /// Schedule a crash.
    pub fn crash_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push((at, FaultEvent::Crash(worker)));
        self
    }

    /// Schedule a recovery.
    pub fn recover_at(mut self, at: SimTime, worker: WorkerId) -> Self {
        self.events.push((at, FaultEvent::Recover(worker)));
        self
    }

    /// Override the detection delay.
    pub fn with_detection_delay(mut self, d: SimDuration) -> Self {
        self.detection_delay = d;
        self
    }

    /// All scheduled events.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// True iff no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(10), WorkerId(2))
            .recover_at(SimTime::from_secs(60), WorkerId(2))
            .with_detection_delay(SimDuration::from_secs(5));
        assert_eq!(plan.events().len(), 2);
        assert_eq!(plan.detection_delay, SimDuration::from_secs(5));
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[0],
            (SimTime::from_secs(10), FaultEvent::Crash(WorkerId(2)))
        );
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
    }
}
