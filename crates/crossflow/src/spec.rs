//! One specification for both runtimes.
//!
//! [`RunSpec`] replaces the old twin construction paths — the
//! positional arguments of `Session::new` and the hand-assembled
//! `ThreadedConfig` — with a single builder covering the engine
//! configuration, the cluster shape, the run names, the seed, the
//! fault plan and the trace/metrics sinks.  From one spec you get
//! either runtime:
//!
//! ```
//! use crossbid_crossflow::prelude::*;
//!
//! let spec = RunSpec::builder()
//!     .workers((0..3).map(|i| WorkerSpec::builder(format!("w{i}")).build()))
//!     .engine(EngineConfig::ideal())
//!     .seed(7)
//!     .build();
//! let sim = spec.sim();            // deterministic discrete-event engine
//! let threaded = spec.threaded();  // real threads, scaled time
//! assert_eq!(sim.iterations_run(), 0);
//! assert_eq!(threaded.iterations_run(), 0);
//! ```

use std::time::Duration;

use crossbid_metrics::Registry;
use crossbid_net::NoiseModel;

use crate::engine::EngineConfig;
use crate::faults::{FaultPlanError, Faults};
use crate::runtime::ThreadedSession;
use crate::session::Session;
use crate::threaded::{ChaosConfig, ProtocolMutation};
use crate::worker::WorkerSpec;
use crate::workflow::WorkflowError;

/// Everything needed to run a scenario on either runtime.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The cluster shape.
    pub workers: Vec<WorkerSpec>,
    /// Engine parameters (noise, latency, faults, trace/metrics
    /// sinks). The threaded runtime derives its configuration from
    /// the shared fields (noise, speed learning, faults, trace,
    /// metrics).
    pub engine: EngineConfig,
    /// Worker-configuration preset name for the records.
    pub worker_config: String,
    /// Job-configuration preset name for the records.
    pub job_config: String,
    /// Session root seed; per-iteration seeds derive from it.
    pub seed: u64,
    /// Threaded runtime: real seconds per virtual second.
    pub time_scale: f64,
    /// Threaded runtime: floor on the real duration of a bidding
    /// window (see [`crate::threaded::ThreadedConfig`]).
    pub min_real_window: Duration,
    /// Threaded runtime: contest window in virtual seconds (the
    /// paper's 1 s). The sim engine takes its window from the
    /// allocator instead.
    pub contest_window_secs: f64,
    /// Threaded runtime, test-only: seeded delivery-order perturbation
    /// at the master's intake. The sim engine ignores it (its event
    /// order is already fully determined by the seed).
    pub chaos: Option<ChaosConfig>,
    /// Threaded runtime, test-only: reintroduce one PR 1 protocol bug
    /// (requires the `protocol-mutation` cargo feature).
    pub mutation: ProtocolMutation,
}

impl RunSpec {
    /// Start building a spec.
    pub fn builder() -> RunSpecBuilder {
        RunSpecBuilder::default()
    }

    /// A simulation session over this spec (cold caches; they warm
    /// across iterations).
    pub fn sim(&self) -> Session {
        Session::from_spec(self.clone())
    }

    /// A threaded session over this spec (cold caches; they warm
    /// across iterations, like the sim cluster).
    pub fn threaded(&self) -> ThreadedSession {
        ThreadedSession::from_spec(self.clone())
    }
}

/// Builder for [`RunSpec`].
#[derive(Debug, Clone)]
pub struct RunSpecBuilder {
    workers: Vec<WorkerSpec>,
    engine: EngineConfig,
    worker_config: String,
    job_config: String,
    seed: u64,
    time_scale: f64,
    min_real_window: Duration,
    contest_window_secs: f64,
    chaos: Option<ChaosConfig>,
    mutation: ProtocolMutation,
}

impl Default for RunSpecBuilder {
    fn default() -> Self {
        RunSpecBuilder {
            workers: Vec::new(),
            engine: EngineConfig::default(),
            worker_config: "custom".into(),
            job_config: "custom".into(),
            seed: 0,
            time_scale: 1e-3,
            min_real_window: Duration::from_millis(2),
            contest_window_secs: 1.0,
            chaos: None,
            mutation: ProtocolMutation::None,
        }
    }
}

impl RunSpecBuilder {
    /// Set the cluster shape (replaces any workers set before).
    pub fn workers(mut self, specs: impl IntoIterator<Item = WorkerSpec>) -> Self {
        self.workers = specs.into_iter().collect();
        self
    }

    /// Append one worker.
    pub fn worker(mut self, spec: WorkerSpec) -> Self {
        self.workers.push(spec);
        self
    }

    /// Set the full engine configuration (the convenience setters
    /// below tweak individual fields of it afterwards).
    pub fn engine(mut self, cfg: EngineConfig) -> Self {
        self.engine = cfg;
        self
    }

    /// Noise scheme on actual speeds (both runtimes).
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.engine.noise = noise;
        self
    }

    /// §6.4 speed learning (both runtimes).
    pub fn speed_learning(mut self, on: bool) -> Self {
        self.engine.speed_learning = on;
        self
    }

    /// Set every fault axis at once (both runtimes). Takes the unified
    /// [`Faults`] aggregate — or, via `Into`, a lone
    /// [`FaultPlan`](crate::faults::FaultPlan),
    /// [`NetFaultPlan`](crate::faults::NetFaultPlan) or
    /// [`MasterFaultPlan`](crate::faults::MasterFaultPlan).
    ///
    /// **Replace semantics:** all four engine fault fields are
    /// overwritten, so `.faults(worker_plan)` alone resets any
    /// previously set net, master or membership plan. Compose axes
    /// through the aggregate:
    /// `.faults(Faults::new().workers(..).net(..))`.
    pub fn faults(mut self, faults: impl Into<Faults>) -> Self {
        let f = faults.into();
        self.engine.faults = f.workers;
        self.engine.netfaults = f.net;
        self.engine.master_faults = f.master;
        self.engine.membership = f.membership;
        self
    }

    /// Arm the replicated data plane (both runtimes): replica-aware
    /// stores, worker→worker peer fetch, and crash-triggered
    /// re-replication toward `cfg.factor` copies. See
    /// [`ReplicationConfig`](crate::engine::ReplicationConfig).
    pub fn replication(mut self, cfg: crate::engine::ReplicationConfig) -> Self {
        self.engine.replication = cfg;
        self
    }

    /// Record per-job lifecycle traces (both runtimes).
    pub fn trace(mut self, on: bool) -> Self {
        self.engine.trace = on;
        self
    }

    /// Share a metrics registry with the caller (both runtimes).
    pub fn metrics(mut self, sink: Registry) -> Self {
        self.engine.metrics = Some(sink);
        self
    }

    /// Worker- and job-configuration preset names for the records.
    pub fn names(
        mut self,
        worker_config: impl Into<String>,
        job_config: impl Into<String>,
    ) -> Self {
        self.worker_config = worker_config.into();
        self.job_config = job_config.into();
        self
    }

    /// Session root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Threaded runtime: real seconds per virtual second.
    pub fn time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Threaded runtime: floor on the real bidding-window duration.
    pub fn min_real_window(mut self, floor: Duration) -> Self {
        self.min_real_window = floor;
        self
    }

    /// Threaded runtime: contest window in virtual seconds.
    pub fn contest_window_secs(mut self, secs: f64) -> Self {
        self.contest_window_secs = secs;
        self
    }

    /// Threaded runtime, test-only: perturb message delivery order at
    /// the master's intake (see [`ChaosConfig`]).
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Threaded runtime, test-only: reintroduce one PR 1 protocol bug
    /// (requires the `protocol-mutation` cargo feature).
    pub fn mutation(mut self, mutation: ProtocolMutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Finish the spec, surfacing configuration mistakes as a typed
    /// error instead of silent misbehavior mid-run: an empty cluster,
    /// a non-positive `time_scale`, or any invalid axis of the
    /// [`Faults`] aggregate (crash/recovery inversions, out-of-range
    /// link probabilities, a master crash schedule exceeding the
    /// replica quorum budget, ...).
    pub fn try_build(self) -> Result<RunSpec, SpecError> {
        if self.workers.is_empty() {
            return Err(SpecError::NoWorkers);
        }
        if !(self.time_scale.is_finite() && self.time_scale > 0.0) {
            return Err(SpecError::BadTimeScale(self.time_scale));
        }
        Faults::new()
            .workers(self.engine.faults.clone())
            .net(self.engine.netfaults.clone())
            .master(self.engine.master_faults.clone())
            .membership(self.engine.membership.clone())
            .validate()?;
        // A deferred or drained/removed worker must exist in the
        // cluster; out-of-range indices would silently no-op mid-run.
        if let Some(e) = self
            .engine
            .membership
            .events()
            .iter()
            .find(|e| e.worker.0 as usize >= self.workers.len())
        {
            return Err(SpecError::Membership(FaultPlanError::MembershipOrder {
                worker: e.worker,
                detail: "membership event targets a worker outside the cluster",
            }));
        }
        if let Err((field, value)) = self.engine.replication.validate() {
            return Err(SpecError::Replication { field, value });
        }
        Ok(RunSpec {
            workers: self.workers,
            engine: self.engine,
            worker_config: self.worker_config,
            job_config: self.job_config,
            seed: self.seed,
            time_scale: self.time_scale,
            min_real_window: self.min_real_window,
            contest_window_secs: self.contest_window_secs,
            chaos: self.chaos,
            mutation: self.mutation,
        })
    }

    /// Finish the spec.
    ///
    /// # Panics
    /// On any [`try_build`](Self::try_build) error: no workers, a
    /// non-positive `time_scale`, or an invalid fault/net-fault plan.
    pub fn build(self) -> RunSpec {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Why [`RunSpecBuilder::try_build`] rejected a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The cluster is empty.
    NoWorkers,
    /// `time_scale` is zero, negative or NaN.
    BadTimeScale(f64),
    /// The crash/recovery schedule contradicts itself.
    Faults(FaultPlanError),
    /// The network-fault plan has out-of-range fields.
    NetFaults(FaultPlanError),
    /// The master crash plan breaks quorum arithmetic or ordering.
    MasterFaults(FaultPlanError),
    /// The elastic-membership plan contradicts itself or targets a
    /// worker outside the cluster.
    Membership(FaultPlanError),
    /// The workflow's channel graph is malformed (dangling endpoint,
    /// self-edge, duplicate channel, or a precedence cycle). Raised
    /// by the run-entry validation of both runtimes — the workflow
    /// itself arrives at [`run_iteration`](crate::Runtime), after the
    /// builder.
    Workflow(WorkflowError),
    /// The replication config has an out-of-range field (zero factor,
    /// non-positive timeout, probability outside `[0, 1]`, ...).
    Replication {
        /// Which [`ReplicationConfig`](crate::engine::ReplicationConfig)
        /// field was rejected.
        field: &'static str,
        /// The offending value, lossily cast to `f64`.
        value: f64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoWorkers => write!(f, "RunSpec needs at least one worker"),
            SpecError::BadTimeScale(v) => write!(f, "time_scale must be positive, got {v}"),
            SpecError::Faults(e) => write!(f, "invalid fault plan: {e}"),
            SpecError::NetFaults(e) => write!(f, "invalid net-fault plan: {e}"),
            SpecError::MasterFaults(e) => write!(f, "invalid master fault plan: {e}"),
            SpecError::Membership(e) => write!(f, "invalid membership plan: {e}"),
            SpecError::Workflow(e) => write!(f, "invalid workflow: {e}"),
            SpecError::Replication { field, value } => {
                write!(f, "invalid replication config: {field} = {value}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Faults(e)
            | SpecError::NetFaults(e)
            | SpecError::MasterFaults(e)
            | SpecError::Membership(e) => Some(e),
            SpecError::Workflow(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::NetFaultPlan;

    #[test]
    fn builder_defaults_are_sane() {
        let spec = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .build();
        assert_eq!(spec.workers.len(), 1);
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.contest_window_secs, 1.0);
        assert_eq!(spec.worker_config, "custom");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_cluster_is_rejected() {
        let _ = RunSpec::builder().build();
    }

    #[test]
    fn try_build_surfaces_typed_errors() {
        use crossbid_simcore::SimTime;

        use crate::faults::{FaultPlan, FaultPlanError, LinkFault, NetFaultPlan};
        use crate::job::WorkerId;

        assert_eq!(
            RunSpec::builder().try_build().unwrap_err(),
            SpecError::NoWorkers
        );
        assert_eq!(
            RunSpec::builder()
                .worker(WorkerSpec::builder("w0").build())
                .time_scale(0.0)
                .try_build()
                .unwrap_err(),
            SpecError::BadTimeScale(0.0)
        );
        let inverted = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(
                FaultPlan::new()
                    .crash_at(SimTime::from_secs(10), WorkerId(0))
                    .recover_at(SimTime::from_secs(5), WorkerId(0)),
            )
            .try_build()
            .unwrap_err();
        assert_eq!(
            inverted,
            SpecError::Faults(FaultPlanError::RecoverWithoutCrash(WorkerId(0)))
        );
        let lossy = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(NetFaultPlan {
                to_worker: LinkFault {
                    drop_prob: 1.5,
                    ..LinkFault::none()
                },
                ..NetFaultPlan::none()
            })
            .try_build()
            .unwrap_err();
        assert!(matches!(lossy, SpecError::NetFaults(_)), "{lossy:?}");
        let master = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(
                crate::faults::MasterFaultPlan::new()
                    .crash_at(3)
                    .crash_at(3),
            )
            .try_build()
            .unwrap_err();
        assert!(matches!(master, SpecError::MasterFaults(_)), "{master:?}");
        assert!(RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(NetFaultPlan::lossy(7, 0.3, 0.1))
            .try_build()
            .is_ok());
    }

    #[test]
    fn membership_axis_is_validated_and_bounded() {
        use crossbid_simcore::SimTime;

        use crate::faults::MembershipPlan;
        use crate::job::WorkerId;

        let ok = RunSpec::builder()
            .workers((0..3).map(|i| WorkerSpec::builder(format!("w{i}")).build()))
            .faults(
                MembershipPlan::new()
                    .join_at(SimTime::from_secs(5), WorkerId(2))
                    .drain_at(SimTime::from_secs(9), WorkerId(0)),
            )
            .try_build();
        assert!(ok.is_ok());
        assert!(!ok.unwrap().engine.membership.is_empty());

        // Contradictory timeline → Membership error.
        let bad = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(
                MembershipPlan::new()
                    .drain_at(SimTime::from_secs(1), WorkerId(0))
                    .drain_at(SimTime::from_secs(2), WorkerId(0)),
            )
            .try_build()
            .unwrap_err();
        assert!(matches!(bad, SpecError::Membership(_)), "{bad:?}");

        // Out-of-cluster worker index → Membership error.
        let oob = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(MembershipPlan::new().drain_at(SimTime::from_secs(1), WorkerId(7)))
            .try_build()
            .unwrap_err();
        assert!(matches!(oob, SpecError::Membership(_)), "{oob:?}");
    }

    #[test]
    fn faults_aggregate_replaces_every_axis() {
        use crossbid_simcore::SimTime;

        use crate::faults::{FaultPlan, MasterFaultPlan};
        use crate::job::WorkerId;

        let combined = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(
                Faults::new()
                    .workers(FaultPlan::new().crash_at(SimTime::from_secs(5), WorkerId(0)))
                    .net(NetFaultPlan::lossy(7, 0.1, 0.0))
                    .master(MasterFaultPlan::new().crash_at(12)),
            )
            .build();
        assert!(!combined.engine.faults.is_empty());
        assert!(combined.engine.netfaults.is_active());
        assert_eq!(combined.engine.master_faults.crash_at, vec![12]);

        // Replace semantics: a later lone-axis call resets the others.
        let reset = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .faults(
                Faults::new()
                    .net(NetFaultPlan::lossy(7, 0.1, 0.0))
                    .master(MasterFaultPlan::new().crash_at(12)),
            )
            .faults(FaultPlan::new().crash_at(SimTime::from_secs(5), WorkerId(0)))
            .build();
        assert!(!reset.engine.faults.is_empty());
        assert!(!reset.engine.netfaults.is_active());
        assert!(reset.engine.master_faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid workflow")]
    fn run_entry_rejects_a_cyclic_workflow() {
        use crate::workflow::Workflow;

        let spec = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .build();
        let mut wf = Workflow::new();
        let a = wf.add_sink("a");
        let b = wf.add_sink("b");
        wf.connect(a, b);
        wf.connect(b, a);
        let _ = spec
            .sim()
            .run_iteration(&mut wf, &crate::BaselineAllocator, Vec::new());
    }

    #[test]
    fn convenience_setters_reach_the_engine_config() {
        let reg = Registry::new();
        let spec = RunSpec::builder()
            .worker(WorkerSpec::builder("w0").build())
            .noise(NoiseModel::None)
            .speed_learning(true)
            .trace(true)
            .metrics(reg)
            .names("all-equal", "80pct_large")
            .seed(42)
            .build();
        assert!(spec.engine.trace);
        assert!(spec.engine.speed_learning);
        assert!(spec.engine.metrics.is_some());
        assert_eq!(spec.worker_config, "all-equal");
        assert_eq!(spec.seed, 42);
    }
}
