//! Execution tracing — per-job lifecycle records.
//!
//! When [`EngineConfig::trace`](crate::EngineConfig) is enabled the
//! engine records every job's placement and phase transitions. The
//! trace supports the kind of analysis the paper's discussion relies
//! on ("slower workers having to download and process larger
//! repositories", queue-time vs transfer-time breakdowns) and renders
//! a text Gantt chart for eyeballing a schedule.

use crossbid_simcore::{SimTime, Welford};
use serde::{Deserialize, Serialize};

use crate::job::{JobId, ShardId, WorkerId};

/// A job lifecycle phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Placed in a worker's queue.
    Queued,
    /// Physical work began (fetch or scan).
    Started,
    /// Resource transfer finished (only for jobs that fetched).
    Fetched,
    /// Processing finished at the worker.
    Finished,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The job.
    pub job: JobId,
    /// The worker involved.
    pub worker: WorkerId,
    /// Phase transition.
    pub kind: TraceKind,
    /// Virtual instant.
    pub at: SimTime,
}

/// The collected trace of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Per-job phase durations extracted from a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobPhases {
    /// The job.
    pub job: JobId,
    /// The executing worker.
    pub worker: WorkerId,
    /// Queue wait: queued → started, seconds.
    pub wait_secs: f64,
    /// Transfer: started → fetched, seconds (0 when the job hit the
    /// cache or needed no resource).
    pub fetch_secs: f64,
    /// Processing: (fetched|started) → finished, seconds.
    pub proc_secs: f64,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event (engine-internal).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-job phase breakdown for jobs that ran to completion. Jobs
    /// that were re-placed after a crash report their *final*
    /// placement.
    pub fn job_phases(&self) -> Vec<JobPhases> {
        use std::collections::HashMap;
        #[derive(Default, Clone, Copy)]
        struct Acc {
            queued: Option<SimTime>,
            started: Option<SimTime>,
            fetched: Option<SimTime>,
            finished: Option<SimTime>,
            worker: Option<WorkerId>,
        }
        let mut acc: HashMap<JobId, Acc> = HashMap::new();
        for ev in &self.events {
            let a = acc.entry(ev.job).or_default();
            match ev.kind {
                TraceKind::Queued => {
                    // Re-placements overwrite: final placement wins.
                    *a = Acc {
                        queued: Some(ev.at),
                        worker: Some(ev.worker),
                        ..Acc::default()
                    };
                }
                TraceKind::Started => a.started = Some(ev.at),
                TraceKind::Fetched => a.fetched = Some(ev.at),
                TraceKind::Finished => {
                    a.finished = Some(ev.at);
                    a.worker = Some(ev.worker);
                }
            }
        }
        let mut out: Vec<JobPhases> = acc
            .into_iter()
            .filter_map(|(job, a)| {
                let queued = a.queued?;
                let started = a.started?;
                let finished = a.finished?;
                let worker = a.worker?;
                let fetch_end = a.fetched.unwrap_or(started);
                Some(JobPhases {
                    job,
                    worker,
                    wait_secs: started.saturating_since(queued).as_secs_f64(),
                    fetch_secs: fetch_end.saturating_since(started).as_secs_f64(),
                    proc_secs: finished.saturating_since(fetch_end).as_secs_f64(),
                })
            })
            .collect();
        out.sort_by_key(|p| p.job);
        out
    }

    /// Aggregate statistics over the phase breakdown:
    /// `(wait, fetch, proc)` Welford accumulators in seconds.
    pub fn phase_stats(&self) -> (Welford, Welford, Welford) {
        let mut wait = Welford::new();
        let mut fetch = Welford::new();
        let mut proc = Welford::new();
        for p in self.job_phases() {
            wait.push(p.wait_secs);
            fetch.push(p.fetch_secs);
            proc.push(p.proc_secs);
        }
        (wait, fetch, proc)
    }

    /// Reconstruct a worker's queue depth over time from
    /// Queued/Started transitions: returns `(time, depth)` change
    /// points, depth counting jobs queued but not yet started.
    pub fn queue_depth_series(&self, worker: WorkerId) -> Vec<(SimTime, i64)> {
        let mut deltas: Vec<(SimTime, i64)> = Vec::new();
        for ev in &self.events {
            if ev.worker != worker {
                continue;
            }
            match ev.kind {
                TraceKind::Queued => deltas.push((ev.at, 1)),
                TraceKind::Started => deltas.push((ev.at, -1)),
                _ => {}
            }
        }
        deltas.sort_by_key(|(t, _)| *t);
        let mut out = Vec::with_capacity(deltas.len());
        let mut depth = 0i64;
        for (t, d) in deltas {
            depth += d;
            match out.last_mut() {
                Some((lt, ld)) if *lt == t => *ld = depth,
                _ => out.push((t, depth)),
            }
        }
        out
    }

    /// Peak queue depth at `worker` over the run.
    pub fn peak_queue_depth(&self, worker: WorkerId) -> i64 {
        self.queue_depth_series(worker)
            .into_iter()
            .map(|(_, d)| d)
            .max()
            .unwrap_or(0)
    }

    /// A text Gantt chart: one row per worker, `#` = processing,
    /// `▒` (rendered as `~`) = fetching, `.` = idle, with `cols`
    /// character columns spanning the makespan.
    pub fn gantt(&self, n_workers: usize, cols: usize) -> String {
        let end = self
            .events
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let span = end.as_secs_f64().max(1e-9);
        let cols = cols.max(10);
        let mut rows = vec![vec!['.'; cols]; n_workers];
        for p in self.job_phases() {
            let w = p.worker.0 as usize;
            if w >= n_workers {
                continue;
            }
            // Reconstruct absolute phase windows from the breakdown:
            // find the job's Started event for the anchor.
            let started = self
                .events
                .iter()
                .find(|e| e.job == p.job && e.kind == TraceKind::Started)
                .map(|e| e.at.as_secs_f64())
                .unwrap_or(0.0);
            let mark = |rows: &mut Vec<Vec<char>>, from: f64, to: f64, ch: char| {
                let a = ((from / span) * cols as f64) as usize;
                let b = (((to / span) * cols as f64).ceil() as usize).min(cols);
                for c in &mut rows[w][a.min(cols.saturating_sub(1))..b] {
                    // Processing never overwrites processing, but wins
                    // over idle and fetch markers from other jobs.
                    if ch == '#' || *c == '.' {
                        *c = ch;
                    }
                }
            };
            mark(&mut rows, started, started + p.fetch_secs, '~');
            mark(
                &mut rows,
                started + p.fetch_secs,
                started + p.fetch_secs + p.proc_secs,
                '#',
            );
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!("w{i:<2} |"));
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "     0s {:->width$} {:.1}s\n",
            ">",
            end.as_secs_f64(),
            width = cols.saturating_sub(8)
        ));
        out
    }
}

/// A scheduler-level protocol event. Where [`TraceKind`] records the
/// *data plane* (a job's physical lifecycle on a worker), this records
/// the *control plane*: contest arbitration, failures, and the
/// redistribution machinery. Both runtimes emit the same shape so
/// parity and fault-tolerance tests can assert identical invariants on
/// the simulated and the threaded scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedEventKind {
    /// A job entered allocation for the first time (external arrival
    /// or downstream spawn). Redistribution re-entries are *not*
    /// re-submitted — they keep their original submission.
    Submitted,
    /// A bidding contest was opened (bid requests broadcast).
    ContestOpened,
    /// A (finite) bid was received and recorded.
    BidReceived {
        /// The worker's completion-time estimate.
        estimate_secs: f64,
    },
    /// The job was assigned to a worker.
    Assigned,
    /// The contest was decided.
    ContestClosed {
        /// Closed by window expiry rather than a complete bid set.
        timed_out: bool,
        /// No usable bids: an arbitrary live worker was drafted.
        fallback: bool,
    },
    /// Baseline: the job was offered to a worker (pull protocol).
    Offered,
    /// Baseline: the worker declined the offered job (reject-once).
    Rejected,
    /// The master accepted a completion report for the job — its
    /// terminal event. A duplicate completion racing a redistribution
    /// is de-duplicated *before* this is logged, so a correct run
    /// logs exactly one `Completed` per submitted job.
    Completed,
    /// The worker failed (fault injection).
    Crash,
    /// The worker came back with an empty store and queue.
    Recover,
    /// A job stranded on a failed worker was taken back by the master
    /// for re-placement.
    Redistributed,
    /// The worker acknowledged holding the assignment (or accepted
    /// offer) — the at-least-once layer stops retransmitting and the
    /// lease no longer bounces the job.
    AssignAcked,
    /// An assignment's lease ran out with neither an ack nor a
    /// completion: the master took the job back for re-offer. Unlike
    /// [`Redistributed`](Self::Redistributed) the worker may be alive —
    /// the *link* is the suspect.
    LeaseExpired,
    /// A reliability-layer retransmission (of an unacked
    /// Assign/Offer, or of an unacked `Done`).
    Resent {
        /// 0-based retransmission attempt.
        attempt: u32,
    },
    /// A standby master won the election after the leader crashed and
    /// now owns the replicated log (see [`crate::replog`]).
    LeaderElected {
        /// The new leadership term (the first leader is term 1).
        term: u32,
    },
    /// The elected master finished rebuilding scheduler state by
    /// replaying the committed log.
    FailoverReplayed {
        /// Committed entries replayed into the state machine.
        entries: u64,
    },
    /// Federation: the home master handed the job off to a less-loaded
    /// peer shard. A *decision* event (committed before the hand-off
    /// is sent); the job's terminal event in the home shard's log —
    /// exactly one `SpillIn` in the target shard must follow in the
    /// federation-wide union.
    SpillOut {
        /// The shard the job was forwarded to.
        to_shard: ShardId,
    },
    /// Federation: the job arrived from a peer shard and entered local
    /// allocation. Takes the place of `Submitted` in the receiving
    /// shard's log; the job keeps its home-qualified federation id.
    SpillIn {
        /// The home shard that spilled the job here.
        from_shard: ShardId,
    },
    /// Elastic membership: the worker joined the shard at runtime
    /// (autoscale-up) and is now eligible for contests and placements.
    WorkerJoined,
    /// Elastic membership: the worker was told to drain — it accepts
    /// no new placements but finishes its queue.
    WorkerDraining,
    /// Elastic membership: the worker left the roster for good (drain
    /// completed, or an administrative removal reclaimed its queue).
    WorkerRemoved,
    /// Atomization: the task completed *effectively* — the first
    /// completion wins; a speculative loser is cancelled and never
    /// logs a second `TaskDone`. Exactly one per task in a clean run.
    ///
    /// Declared (and ranked) before [`TaskOffer`](Self::TaskOffer):
    /// a completion releases successor tasks *at the same instant*,
    /// and the two events concern different jobs, so the same-instant
    /// tiebreak in [`SchedLog::push`] orders them by rank — the
    /// predecessor's `TaskDone` must sort before the successor's
    /// `TaskOffer` for the gate invariant to read causally.
    TaskDone {
        /// Root id of the DAG.
        root: JobId,
        /// Task index within the DAG.
        task: u32,
    },
    /// Atomization: a DAG task was released into allocation — every
    /// predecessor named in `preds` has a committed
    /// [`TaskDone`](Self::TaskDone). A *decision* event (committed
    /// before the task's job is submitted). `job` is the task's job
    /// id; `root` the parent DAG's root id.
    TaskOffer {
        /// Root id of the DAG this task belongs to.
        root: JobId,
        /// Task index within the DAG (0-based).
        task: u32,
        /// Bitmask of predecessor task indices (DAGs are capped at 64
        /// tasks so the mask is self-describing in the log).
        preds: u64,
        /// Total tasks in the DAG — lets a log consumer detect
        /// orphaned stages without out-of-band knowledge.
        total: u32,
    },
    /// Atomization: a worker bid on a task's job. Logged alongside the
    /// generic [`BidReceived`](Self::BidReceived) so task-level
    /// contests are identifiable without a job→task join.
    TaskBid {
        /// Root id of the DAG.
        root: JobId,
        /// Task index within the DAG.
        task: u32,
        /// The worker's completion-time estimate.
        estimate_secs: f64,
    },
    /// Atomization: a task's job was placed on a worker. A *decision*
    /// event committed right after the placement it annotates.
    TaskAssign {
        /// Root id of the DAG.
        root: JobId,
        /// Task index within the DAG.
        task: u32,
        /// True iff this placement is a speculative replica.
        speculative: bool,
    },
    /// Atomization: the straggler detector launched a speculative
    /// replica of an in-flight task. A *decision* event (committed
    /// before the replica's job is submitted). `job` is the replica's
    /// fresh job id.
    SpecLaunch {
        /// Root id of the DAG.
        root: JobId,
        /// Task index within the DAG.
        task: u32,
    },
    /// Atomization: the losing attempt of a speculated task was
    /// cancelled after the winner's [`TaskDone`](Self::TaskDone)
    /// committed. A *decision* event; `job` is the cancelled attempt's
    /// job id — its terminal accounting event (a later completion
    /// report from the loser is swallowed, never logged).
    SpecCancel {
        /// Root id of the DAG.
        root: JobId,
        /// Task index within the DAG.
        task: u32,
    },
    /// Data plane: the worker (`worker`) started fetching an artifact
    /// from a peer replica instead of the master. `job` is the driving
    /// job, or `None` for a repair copy.
    FetchReq {
        /// The artifact being fetched.
        object: u64,
        /// The peer replica holder serving the transfer.
        from: WorkerId,
    },
    /// Data plane: the peer transfer completed and the artifact is now
    /// resident on `worker`.
    FetchOk {
        /// The artifact fetched.
        object: u64,
        /// The peer that served it.
        from: WorkerId,
    },
    /// Data plane: a peer fetch attempt timed out or was lost by the
    /// network; the requester retries (next replica, seeded backoff)
    /// or falls back to a degraded master fetch.
    FetchFail {
        /// The artifact whose transfer failed.
        object: u64,
        /// The peer that failed to serve it.
        from: WorkerId,
        /// 0-based attempt number that failed.
        attempt: u32,
    },
    /// Data plane: `worker` now holds a live copy of the artifact
    /// (master fetch, peer fetch, DAG output, or completed repair).
    ReplicaAdd {
        /// The artifact admitted.
        object: u64,
    },
    /// Data plane: `worker` no longer holds a copy — evicted under
    /// cache pressure (`evicted: true`) or destroyed by a crash /
    /// removal (`evicted: false`). The distinction matters to the
    /// oracle: an eviction that destroys the last live copy means the
    /// pin protocol failed ([`EvictedLastCopy`]); a crash doing the
    /// same is data loss the repair path exists to prevent.
    ///
    /// [`EvictedLastCopy`]: SchedEventKind::ReplicaDrop
    ReplicaDrop {
        /// The artifact dropped.
        object: u64,
        /// True iff dropped by eviction rather than crash/removal.
        evicted: bool,
    },
    /// Data plane repair: the master committed its intent to restore
    /// the artifact's replication factor by copying from `from` to
    /// `worker`. A *decision* event (commit-before-copy): after a
    /// failover the elected master resumes every `RepairStart` without
    /// a matching [`RepairDone`](Self::RepairDone) instead of
    /// re-committing it.
    RepairStart {
        /// The under-replicated artifact.
        object: u64,
        /// The surviving replica serving as copy source.
        from: WorkerId,
    },
    /// Data plane repair: the copy landed and the artifact is back at
    /// (or closer to) its target replication factor. `worker` is the
    /// destination that now holds the new replica — it may differ from
    /// the `RepairStart` destination if the original target died
    /// mid-copy and the repair was re-routed.
    RepairDone {
        /// The repaired artifact.
        object: u64,
    },
}

impl SchedEventKind {
    /// Stable rank for the same-instant ordering tiebreak
    /// ([`SchedLog::push`]): declaration order of the variants.
    fn rank(&self) -> u8 {
        match self {
            SchedEventKind::Submitted => 0,
            SchedEventKind::ContestOpened => 1,
            SchedEventKind::BidReceived { .. } => 2,
            SchedEventKind::Assigned => 3,
            SchedEventKind::ContestClosed { .. } => 4,
            SchedEventKind::Offered => 5,
            SchedEventKind::Rejected => 6,
            SchedEventKind::Completed => 7,
            SchedEventKind::Crash => 8,
            SchedEventKind::Recover => 9,
            SchedEventKind::Redistributed => 10,
            SchedEventKind::AssignAcked => 11,
            SchedEventKind::LeaseExpired => 12,
            SchedEventKind::Resent { .. } => 13,
            SchedEventKind::LeaderElected { .. } => 14,
            SchedEventKind::FailoverReplayed { .. } => 15,
            SchedEventKind::SpillOut { .. } => 16,
            SchedEventKind::SpillIn { .. } => 17,
            SchedEventKind::WorkerJoined => 18,
            SchedEventKind::WorkerDraining => 19,
            SchedEventKind::WorkerRemoved => 20,
            SchedEventKind::TaskDone { .. } => 21,
            SchedEventKind::TaskOffer { .. } => 22,
            SchedEventKind::TaskBid { .. } => 23,
            SchedEventKind::TaskAssign { .. } => 24,
            SchedEventKind::SpecLaunch { .. } => 25,
            SchedEventKind::SpecCancel { .. } => 26,
            SchedEventKind::FetchReq { .. } => 27,
            SchedEventKind::FetchOk { .. } => 28,
            SchedEventKind::FetchFail { .. } => 29,
            SchedEventKind::ReplicaAdd { .. } => 30,
            SchedEventKind::ReplicaDrop { .. } => 31,
            SchedEventKind::RepairStart { .. } => 32,
            SchedEventKind::RepairDone { .. } => 33,
        }
    }
}

/// One scheduler event. `worker`/`job` are filled where meaningful:
/// crash/recover events carry no job, contest-opened events carry no
/// worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedEvent {
    /// Virtual instant.
    pub at: SimTime,
    /// The worker involved, if any.
    pub worker: Option<WorkerId>,
    /// The job involved, if any.
    pub job: Option<JobId>,
    /// What happened.
    pub kind: SchedEventKind,
}

/// The collected scheduler event log of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchedLog {
    events: Vec<SchedEvent>,
}

impl SchedLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event (runtime-internal).
    ///
    /// Same-instant events are kept in a deterministic order across
    /// the sim and threaded runtimes: within one timestamp, events that
    /// *commute* (they concern different jobs, or the same job at the
    /// same kind) are stored sorted by `(kind, job, worker)`. Events
    /// about one job with different kinds are causally ordered by the
    /// protocol (e.g. `Offered` → `Rejected` → `Offered` at one
    /// instant under an instant control plane) and keep their emission
    /// order, as do job-less events (crashes, elections), which act as
    /// barriers. This keeps failover replay and oracle parity
    /// independent of channel arrival order without ever reordering a
    /// causal chain.
    pub fn push(&mut self, ev: SchedEvent) {
        fn key(e: &SchedEvent) -> (u8, Option<u64>, Option<u32>) {
            (e.kind.rank(), e.job.map(|j| j.0), e.worker.map(|w| w.0))
        }
        let mut i = self.events.len();
        if ev.job.is_some() {
            while i > 0 {
                let p = &self.events[i - 1];
                if p.at != ev.at || p.job.is_none() {
                    break;
                }
                let commutes = p.job != ev.job || p.kind.rank() == ev.kind.rank();
                if commutes && key(p) > key(&ev) {
                    i -= 1;
                } else {
                    break;
                }
            }
        }
        self.events.insert(i, ev);
    }

    /// All events in emission order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn count(&self, f: impl Fn(&SchedEventKind) -> bool) -> usize {
        self.events.iter().filter(|e| f(&e.kind)).count()
    }

    /// Number of crash events.
    pub fn crashes(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Crash))
    }

    /// Number of recovery events.
    pub fn recoveries(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Recover))
    }

    /// Number of jobs pulled back from failed workers.
    pub fn redistributions(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Redistributed))
    }

    /// Number of jobs submitted into allocation.
    pub fn submissions(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Submitted))
    }

    /// Number of completions accepted by the master.
    pub fn completions(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Completed))
    }

    /// Number of Baseline offers issued.
    pub fn offers(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Offered))
    }

    /// Number of Baseline rejections received.
    pub fn rejections(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Rejected))
    }

    /// Number of contests opened.
    pub fn contests_opened(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::ContestOpened))
    }

    /// Number of assignments issued.
    pub fn assignments(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Assigned))
    }

    /// Number of assignment/offer acks received by the master.
    pub fn assign_acks(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::AssignAcked))
    }

    /// Number of lease expiries (jobs bounced back for re-offer).
    pub fn lease_expiries(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::LeaseExpired))
    }

    /// Number of reliability-layer retransmissions.
    pub fn resends(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::Resent { .. }))
    }

    /// Number of contests closed by window expiry.
    pub fn timeouts(&self) -> usize {
        self.count(|k| {
            matches!(
                k,
                SchedEventKind::ContestClosed {
                    timed_out: true,
                    ..
                }
            )
        })
    }

    /// Number of contests decided by drafting an arbitrary worker.
    pub fn fallbacks(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::ContestClosed { fallback: true, .. }))
    }

    /// Number of leader elections after the initial one (failovers).
    pub fn failovers(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::LeaderElected { .. }))
    }

    /// Number of jobs spilled out to peer shards.
    pub fn spills_out(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::SpillOut { .. }))
    }

    /// Number of jobs accepted from peer shards.
    pub fn spills_in(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::SpillIn { .. }))
    }

    /// Number of workers that joined at runtime.
    pub fn worker_joins(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::WorkerJoined))
    }

    /// Number of workers put into draining.
    pub fn worker_drains(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::WorkerDraining))
    }

    /// Number of workers removed from the roster.
    pub fn worker_removals(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::WorkerRemoved))
    }

    /// Number of DAG tasks released into allocation.
    pub fn task_offers(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::TaskOffer { .. }))
    }

    /// Number of task-level bids received.
    pub fn task_bids(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::TaskBid { .. }))
    }

    /// Number of task placements (including speculative replicas).
    pub fn task_assigns(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::TaskAssign { .. }))
    }

    /// Number of effective task completions.
    pub fn task_dones(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::TaskDone { .. }))
    }

    /// Number of speculative replicas launched by the straggler
    /// detector.
    pub fn spec_launches(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::SpecLaunch { .. }))
    }

    /// Number of speculative losers cancelled.
    pub fn spec_cancels(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::SpecCancel { .. }))
    }

    /// Number of peer-to-peer fetches started.
    pub fn fetch_reqs(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::FetchReq { .. }))
    }

    /// Number of peer-to-peer fetches completed.
    pub fn fetch_oks(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::FetchOk { .. }))
    }

    /// Number of peer fetch attempts that failed (and were retried or
    /// degraded to a master fetch).
    pub fn fetch_fails(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::FetchFail { .. }))
    }

    /// Number of replicas admitted into worker stores.
    pub fn replica_adds(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::ReplicaAdd { .. }))
    }

    /// Number of replicas dropped (eviction or crash).
    pub fn replica_drops(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::ReplicaDrop { .. }))
    }

    /// Number of re-replication repairs committed.
    pub fn repair_starts(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::RepairStart { .. }))
    }

    /// Number of re-replication repairs completed.
    pub fn repair_dones(&self) -> usize {
        self.count(|k| matches!(k, SchedEventKind::RepairDone { .. }))
    }

    /// Total committed entries replayed across all failovers.
    pub fn replayed_entries(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                SchedEventKind::FailoverReplayed { entries } => entries,
                _ => 0,
            })
            .sum()
    }

    /// Jobs assigned to `worker`, in order.
    pub fn assignments_to(&self, worker: WorkerId) -> Vec<JobId> {
        self.events
            .iter()
            .filter(|e| e.worker == Some(worker) && matches!(e.kind, SchedEventKind::Assigned))
            .filter_map(|e| e.job)
            .collect()
    }

    /// True iff no [`SchedEventKind::Assigned`] event for `worker`
    /// falls inside a window where the log shows it crashed and not
    /// yet recovered, once the detection delay has elapsed. Used by
    /// parity tests: after detection, a dead worker must never be
    /// handed work.
    pub fn no_assignments_to_detected_dead(&self, detection_delay_secs: f64) -> bool {
        use std::collections::HashMap;
        let mut down_since: HashMap<WorkerId, SimTime> = HashMap::new();
        for ev in &self.events {
            match ev.kind {
                SchedEventKind::Crash => {
                    if let Some(w) = ev.worker {
                        down_since.insert(w, ev.at);
                    }
                }
                SchedEventKind::Recover => {
                    if let Some(w) = ev.worker {
                        down_since.remove(&w);
                    }
                }
                SchedEventKind::Assigned => {
                    if let Some(w) = ev.worker {
                        if let Some(&since) = down_since.get(&w) {
                            let down_for = ev.at.saturating_since(since).as_secs_f64();
                            if down_for > detection_delay_secs {
                                return false;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ev(job: u64, worker: u32, kind: TraceKind, at: u64) -> TraceEvent {
        TraceEvent {
            job: JobId(job),
            worker: WorkerId(worker),
            kind,
            at: t(at),
        }
    }

    #[test]
    fn phases_are_computed() {
        let mut tr = Trace::new();
        tr.push(ev(1, 0, TraceKind::Queued, 0));
        tr.push(ev(1, 0, TraceKind::Started, 2));
        tr.push(ev(1, 0, TraceKind::Fetched, 12));
        tr.push(ev(1, 0, TraceKind::Finished, 15));
        let phases = tr.job_phases();
        assert_eq!(phases.len(), 1);
        let p = phases[0];
        assert_eq!(p.worker, WorkerId(0));
        assert_eq!(p.wait_secs, 2.0);
        assert_eq!(p.fetch_secs, 10.0);
        assert_eq!(p.proc_secs, 3.0);
    }

    #[test]
    fn cache_hit_jobs_have_zero_fetch() {
        let mut tr = Trace::new();
        tr.push(ev(2, 1, TraceKind::Queued, 0));
        tr.push(ev(2, 1, TraceKind::Started, 1));
        tr.push(ev(2, 1, TraceKind::Finished, 4));
        let p = tr.job_phases()[0];
        assert_eq!(p.fetch_secs, 0.0);
        assert_eq!(p.proc_secs, 3.0);
    }

    #[test]
    fn replacement_after_crash_keeps_final_attempt() {
        let mut tr = Trace::new();
        tr.push(ev(3, 0, TraceKind::Queued, 0));
        tr.push(ev(3, 0, TraceKind::Started, 1));
        // crash: re-placed on worker 1
        tr.push(ev(3, 1, TraceKind::Queued, 10));
        tr.push(ev(3, 1, TraceKind::Started, 11));
        tr.push(ev(3, 1, TraceKind::Finished, 14));
        let phases = tr.job_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].worker, WorkerId(1));
        assert_eq!(phases[0].wait_secs, 1.0);
    }

    #[test]
    fn incomplete_jobs_are_skipped() {
        let mut tr = Trace::new();
        tr.push(ev(4, 0, TraceKind::Queued, 0));
        tr.push(ev(4, 0, TraceKind::Started, 1));
        assert!(tr.job_phases().is_empty());
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());
    }

    #[test]
    fn phase_stats_aggregate() {
        let mut tr = Trace::new();
        for (j, d) in [(1u64, 2u64), (2, 4)] {
            tr.push(ev(j, 0, TraceKind::Queued, 0));
            tr.push(ev(j, 0, TraceKind::Started, 1));
            tr.push(ev(j, 0, TraceKind::Finished, 1 + d));
        }
        let (wait, fetch, proc) = tr.phase_stats();
        assert_eq!(wait.count(), 2);
        assert_eq!(wait.mean(), 1.0);
        assert_eq!(fetch.mean(), 0.0);
        assert_eq!(proc.mean(), 3.0);
    }

    #[test]
    fn queue_depth_reconstruction() {
        let mut tr = Trace::new();
        tr.push(ev(1, 0, TraceKind::Queued, 0));
        tr.push(ev(2, 0, TraceKind::Queued, 1));
        tr.push(ev(1, 0, TraceKind::Started, 2));
        tr.push(ev(3, 0, TraceKind::Queued, 3));
        tr.push(ev(2, 0, TraceKind::Started, 4));
        tr.push(ev(3, 0, TraceKind::Started, 5));
        let series = tr.queue_depth_series(WorkerId(0));
        assert_eq!(
            series,
            vec![
                (t(0), 1),
                (t(1), 2),
                (t(2), 1),
                (t(3), 2),
                (t(4), 1),
                (t(5), 0)
            ]
        );
        assert_eq!(tr.peak_queue_depth(WorkerId(0)), 2);
        assert_eq!(tr.peak_queue_depth(WorkerId(9)), 0);
    }

    #[test]
    fn queue_depth_coalesces_same_instant() {
        let mut tr = Trace::new();
        tr.push(ev(1, 0, TraceKind::Queued, 0));
        tr.push(ev(1, 0, TraceKind::Started, 0));
        let series = tr.queue_depth_series(WorkerId(0));
        assert_eq!(series, vec![(t(0), 0)]);
    }

    #[test]
    fn gantt_renders_rows_and_marks() {
        let mut tr = Trace::new();
        tr.push(ev(1, 0, TraceKind::Queued, 0));
        tr.push(ev(1, 0, TraceKind::Started, 0));
        tr.push(ev(1, 0, TraceKind::Fetched, 50));
        tr.push(ev(1, 0, TraceKind::Finished, 100));
        let g = tr.gantt(2, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "{g}");
        assert!(lines[0].contains('~'), "fetch marked: {g}");
        assert!(lines[0].contains('#'), "processing marked: {g}");
        assert!(lines[1].contains('.'), "idle worker: {g}");
    }

    #[test]
    fn empty_trace_gantt_is_safe() {
        let g = Trace::new().gantt(1, 20);
        assert!(g.contains("w0"));
    }

    fn sev(at: u64, worker: Option<u32>, job: Option<u64>, kind: SchedEventKind) -> SchedEvent {
        SchedEvent {
            at: t(at),
            worker: worker.map(WorkerId),
            job: job.map(JobId),
            kind,
        }
    }

    #[test]
    fn sched_log_counts() {
        let mut log = SchedLog::new();
        log.push(sev(0, None, Some(1), SchedEventKind::ContestOpened));
        log.push(sev(
            0,
            Some(0),
            Some(1),
            SchedEventKind::BidReceived { estimate_secs: 3.0 },
        ));
        log.push(sev(
            1,
            None,
            Some(1),
            SchedEventKind::ContestClosed {
                timed_out: true,
                fallback: false,
            },
        ));
        log.push(sev(1, Some(0), Some(1), SchedEventKind::Assigned));
        log.push(sev(2, Some(0), None, SchedEventKind::Crash));
        log.push(sev(4, Some(0), Some(1), SchedEventKind::Redistributed));
        log.push(sev(5, Some(0), None, SchedEventKind::Recover));
        assert_eq!(log.contests_opened(), 1);
        assert_eq!(log.timeouts(), 1);
        assert_eq!(log.fallbacks(), 0);
        assert_eq!(log.crashes(), 1);
        assert_eq!(log.recoveries(), 1);
        assert_eq!(log.redistributions(), 1);
        assert_eq!(log.assignments(), 1);
        assert_eq!(log.assignments_to(WorkerId(0)), vec![JobId(1)]);
        assert_eq!(log.len(), 7);
        assert!(!log.is_empty());
    }

    #[test]
    fn same_instant_events_for_different_jobs_order_deterministically() {
        // The two runtimes may emit same-instant events for unrelated
        // jobs in either channel order; the stored order must agree.
        let a = sev(3, Some(1), Some(2), SchedEventKind::Offered);
        let b = sev(3, Some(0), Some(1), SchedEventKind::Submitted);
        let mut fwd = SchedLog::new();
        fwd.push(a);
        fwd.push(b);
        let mut rev = SchedLog::new();
        rev.push(b);
        rev.push(a);
        assert_eq!(fwd.events(), rev.events());
        assert!(matches!(fwd.events()[0].kind, SchedEventKind::Submitted));
    }

    #[test]
    fn same_instant_causal_chain_keeps_emission_order() {
        // Offered -> Rejected -> Offered for one job at one instant
        // (instant control plane) is a causal chain: sorting it by
        // kind would fabricate a double placement.
        let mut log = SchedLog::new();
        log.push(sev(2, Some(0), Some(7), SchedEventKind::Offered));
        log.push(sev(2, Some(0), Some(7), SchedEventKind::Rejected));
        log.push(sev(2, Some(1), Some(7), SchedEventKind::Offered));
        let kinds: Vec<u8> = log.events().iter().map(|e| e.kind.rank()).collect();
        assert_eq!(
            kinds,
            vec![5, 6, 5],
            "causal same-job chain reordered: {:?}",
            log.events()
        );
    }

    #[test]
    fn jobless_events_are_ordering_barriers() {
        let mut log = SchedLog::new();
        log.push(sev(1, Some(0), None, SchedEventKind::Crash));
        // Submitted sorts before Crash by kind, but must not cross it.
        log.push(sev(1, None, Some(1), SchedEventKind::Submitted));
        assert!(matches!(log.events()[0].kind, SchedEventKind::Crash));
    }

    #[test]
    fn same_job_same_kind_ties_break_on_worker() {
        let a = sev(
            4,
            Some(2),
            Some(9),
            SchedEventKind::BidReceived { estimate_secs: 1.0 },
        );
        let b = sev(
            4,
            Some(1),
            Some(9),
            SchedEventKind::BidReceived { estimate_secs: 2.0 },
        );
        let mut fwd = SchedLog::new();
        fwd.push(a);
        fwd.push(b);
        let mut rev = SchedLog::new();
        rev.push(b);
        rev.push(a);
        assert_eq!(fwd.events(), rev.events());
        assert_eq!(fwd.events()[0].worker, Some(WorkerId(1)));
    }

    #[test]
    fn failover_counters() {
        let mut log = SchedLog::new();
        log.push(sev(0, None, Some(1), SchedEventKind::Submitted));
        log.push(sev(
            1,
            None,
            None,
            SchedEventKind::LeaderElected { term: 2 },
        ));
        log.push(sev(
            1,
            None,
            None,
            SchedEventKind::FailoverReplayed { entries: 1 },
        ));
        log.push(sev(
            2,
            None,
            None,
            SchedEventKind::LeaderElected { term: 3 },
        ));
        log.push(sev(
            2,
            None,
            None,
            SchedEventKind::FailoverReplayed { entries: 3 },
        ));
        assert_eq!(log.failovers(), 2);
        assert_eq!(log.replayed_entries(), 4);
    }

    #[test]
    fn federation_and_membership_counters() {
        let mut log = SchedLog::new();
        log.push(sev(0, None, Some(1), SchedEventKind::Submitted));
        log.push(sev(
            1,
            None,
            Some(1),
            SchedEventKind::SpillOut {
                to_shard: ShardId(2),
            },
        ));
        log.push(sev(
            2,
            None,
            Some(1),
            SchedEventKind::SpillIn {
                from_shard: ShardId(0),
            },
        ));
        log.push(sev(3, Some(4), None, SchedEventKind::WorkerJoined));
        log.push(sev(4, Some(4), None, SchedEventKind::WorkerDraining));
        log.push(sev(5, Some(4), None, SchedEventKind::WorkerRemoved));
        assert_eq!(log.spills_out(), 1);
        assert_eq!(log.spills_in(), 1);
        assert_eq!(log.worker_joins(), 1);
        assert_eq!(log.worker_drains(), 1);
        assert_eq!(log.worker_removals(), 1);
    }

    #[test]
    fn dead_worker_assignment_invariant() {
        let mut ok = SchedLog::new();
        ok.push(sev(0, Some(0), None, SchedEventKind::Crash));
        // Within the detection window: allowed (masking not yet done).
        ok.push(sev(1, Some(0), Some(1), SchedEventKind::Assigned));
        ok.push(sev(5, Some(0), None, SchedEventKind::Recover));
        ok.push(sev(9, Some(0), Some(2), SchedEventKind::Assigned));
        assert!(ok.no_assignments_to_detected_dead(2.0));

        let mut bad = SchedLog::new();
        bad.push(sev(0, Some(0), None, SchedEventKind::Crash));
        bad.push(sev(8, Some(0), Some(1), SchedEventKind::Assigned));
        assert!(!bad.no_assignments_to_detected_dead(2.0));
    }
}
