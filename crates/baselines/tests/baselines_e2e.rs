//! End-to-end behaviour of the comparator schedulers on the engine.

use crossbid_baselines::{
    DelayAllocator, MatchmakingAllocator, RandomAllocator, SparkLocalityAllocator,
    SparkStaticAllocator,
};
use crossbid_crossflow::{
    run_workflow, Arrival, Cluster, EngineConfig, JobSpec, Payload, ResourceRef, RunMeta, WorkerId,
    WorkerSpec, Workflow,
};
use crossbid_simcore::SimTime;
use crossbid_storage::ObjectId;

fn res(id: u64, mb: u64) -> ResourceRef {
    ResourceRef {
        id: ObjectId(id),
        bytes: mb * 1_000_000,
    }
}

fn specs(n: usize) -> Vec<WorkerSpec> {
    (0..n)
        .map(|i| {
            WorkerSpec::builder(format!("w{i}"))
                .net_mbps(10.0)
                .rw_mbps(100.0)
                .storage_gb(10.0)
                .build()
        })
        .collect()
}

fn arrivals(jobs: &[(u64, u64)], spacing_ms: u64) -> Vec<Arrival> {
    jobs.iter()
        .enumerate()
        .map(|(i, (rid, mb))| Arrival {
            at: SimTime::from_millis(i as u64 * spacing_ms),
            spec: JobSpec::scanning(
                crossbid_crossflow::TaskId(0),
                res(*rid, *mb),
                Payload::Index(*rid),
            ),
        })
        .collect()
}

#[test]
fn spark_static_round_robin_spreads_evenly() {
    let cfg = EngineConfig::ideal();
    let mut cluster = Cluster::new(&specs(3), &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    let jobs: Vec<(u64, u64)> = (0..12).map(|i| (i, 50)).collect();
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &SparkStaticAllocator::default(),
        arrivals(&jobs, 10),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 12);
    // Exactly 4 placements per worker.
    for w in 0..3u32 {
        let count = out
            .assignments
            .iter()
            .filter(|(_, ww)| *ww == WorkerId(w))
            .count();
        assert_eq!(count, 4, "worker {w}");
    }
}

#[test]
fn stage_barrier_gates_waves_on_stragglers() {
    // Two workers, four jobs: one huge straggler in the first wave.
    // With the barrier, wave 2 cannot start until the straggler
    // finishes, so the makespan is at least the straggler's duration
    // plus wave 2's work; without it, the fast worker pipelines ahead.
    let cfg = EngineConfig::ideal();
    // Round-robin on two workers alternates the two large jobs onto
    // different workers; the barrier forces the second large job to
    // wait for the first wave's straggler.
    let jobs: Vec<(u64, u64)> = vec![(0, 1000), (1, 10), (2, 10), (3, 1000)];
    let run = |barrier: bool| {
        let mut cluster = Cluster::new(&specs(2), &cfg);
        let mut wf = Workflow::new();
        wf.add_sink("scan");
        let alloc = SparkStaticAllocator {
            stage_barrier: barrier,
        };
        run_workflow(
            &mut cluster,
            &mut wf,
            &alloc,
            arrivals(&jobs, 1),
            &cfg,
            &RunMeta::default(),
        )
        .record
        .makespan_secs
    };
    let with_barrier = run(true);
    let without = run(false);
    assert!(
        with_barrier > without + 50.0,
        "barrier must cost wall-clock: {with_barrier:.1} vs {without:.1}"
    );
}

#[test]
fn spark_locality_master_view_can_go_stale() {
    // Tiny stores force eviction; the master's believed locality map
    // does not know. The scheduler still works (the worker just
    // re-fetches), but the run records real misses where the master
    // expected hits — the documented stale-block-map behaviour.
    let cfg = EngineConfig::ideal();
    let mut specs = specs(2);
    for s in &mut specs {
        s.storage_bytes = 120_000_000; // holds one 100 MB repo
    }
    let mut cluster = Cluster::new(&specs, &cfg);
    let mut wf = Workflow::new();
    wf.add_sink("scan");
    // Repo 1 is cached, then evicted by repo 2, then requested again.
    let jobs: Vec<(u64, u64)> = vec![(1, 100), (2, 100), (1, 100)];
    let out = run_workflow(
        &mut cluster,
        &mut wf,
        &SparkLocalityAllocator::default(),
        arrivals(&jobs, 60_000),
        &cfg,
        &RunMeta::default(),
    );
    assert_eq!(out.record.jobs_completed, 3);
    assert!(
        out.record.cache_misses >= 3,
        "the third job re-fetches despite the master's stale map ({} misses)",
        out.record.cache_misses
    );
}

#[test]
fn matchmaking_and_delay_complete_under_pressure() {
    let cfg = EngineConfig::default();
    for alloc in [
        &MatchmakingAllocator::default() as &dyn crossbid_crossflow::Allocator,
        &DelayAllocator::default(),
    ] {
        let mut cluster = Cluster::new(&specs(3), &cfg);
        let mut wf = Workflow::new();
        wf.add_sink("scan");
        let jobs: Vec<(u64, u64)> = (0..25).map(|i| (i % 5, 80)).collect();
        let meta = RunMeta {
            seed: 5,
            ..RunMeta::default()
        };
        let out = run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            arrivals(&jobs, 200),
            &cfg,
            &meta,
        );
        assert_eq!(out.record.jobs_completed, 25, "{}", alloc.kind());
        // Locality-aware: with only 5 distinct repos, far fewer than
        // 25 misses.
        assert!(
            out.record.cache_misses < 20,
            "{}: {} misses",
            alloc.kind(),
            out.record.cache_misses
        );
    }
}

#[test]
fn locality_aware_baselines_beat_random_on_data_load() {
    let cfg = EngineConfig::default();
    let jobs: Vec<(u64, u64)> = (0..30).map(|i| (i % 4, 100)).collect();
    let run = |alloc: &dyn crossbid_crossflow::Allocator| {
        let mut cluster = Cluster::new(&specs(3), &cfg);
        let mut wf = Workflow::new();
        wf.add_sink("scan");
        let meta = RunMeta {
            seed: 8,
            ..RunMeta::default()
        };
        run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            arrivals(&jobs, 2000),
            &cfg,
            &meta,
        )
        .record
        .data_load_mb
    };
    let random = run(&RandomAllocator);
    let matchmaking = run(&MatchmakingAllocator::default());
    let delay = run(&DelayAllocator::default());
    assert!(
        matchmaking < random,
        "matchmaking {matchmaking:.0} vs random {random:.0}"
    );
    assert!(delay < random, "delay {delay:.0} vs random {random:.0}");
}

#[test]
fn fairness_versus_locality_tradeoff() {
    // §3: data awareness "is achieved through compromising the
    // fairness of task allocation". Spark's round-robin on equal
    // workers is maximally fair; the locality-driven matchmaking
    // concentrates repeated repos on their owners.
    let cfg = EngineConfig::default();
    // Four repos on three workers: round-robin cannot accidentally
    // align with the repo cycle.
    let jobs: Vec<(u64, u64)> = (0..30).map(|i| (i % 4, 150)).collect();
    let run = |alloc: &dyn crossbid_crossflow::Allocator| {
        let mut cluster = Cluster::new(&specs(3), &cfg);
        let mut wf = Workflow::new();
        wf.add_sink("scan");
        let meta = RunMeta {
            seed: 4,
            ..RunMeta::default()
        };
        run_workflow(
            &mut cluster,
            &mut wf,
            alloc,
            arrivals(&jobs, 3000),
            &cfg,
            &meta,
        )
        .record
    };
    let spark = run(&SparkStaticAllocator::default());
    let mm = run(&MatchmakingAllocator::default());
    assert!(
        spark.jains_fairness() > 0.9,
        "round-robin is fair: {}",
        spark.jains_fairness()
    );
    assert!(
        mm.data_load_mb < spark.data_load_mb,
        "locality buys data: {} vs {}",
        mm.data_load_mb,
        spark.data_load_mb
    );
}
