//! Matchmaking (He, Lu, Swanson — CloudCom 2011), as summarized in
//! the paper's §3: "Only when a node becomes available will it try to
//! pull a task for which it has data locally. The node will remain
//! idle for a single heartbeat if no such task is present. On the
//! second attempt, it is bound to accept a task even if it does not
//! have data locally."

use std::collections::{BTreeSet, HashMap, VecDeque};

use crossbid_crossflow::{
    Allocator, Job, MasterScheduler, ObedientPolicy, SchedCtx, WorkerId, WorkerPolicy,
    WorkerToMaster,
};
use crossbid_metrics::SchedulerKind;
use crossbid_simcore::SimDuration;

use crate::locality_map::LocalityMap;

/// The matchmaking master.
pub struct MatchmakingMaster {
    heartbeat: SimDuration,
    queue: VecDeque<Job>,
    map: LocalityMap,
    /// Consecutive empty-handed pulls per worker (reset on any
    /// assignment).
    strikes: HashMap<WorkerId, u32>,
    /// Pending heartbeat timers → worker.
    timers: HashMap<u64, WorkerId>,
    /// Workers that pulled while the queue was empty; poked when a job
    /// arrives (a real node would keep heartbeating — this avoids the
    /// useless empty-queue heartbeats).
    parked: BTreeSet<WorkerId>,
}

impl MatchmakingMaster {
    /// Create with the given heartbeat interval.
    pub fn new(heartbeat: SimDuration) -> Self {
        MatchmakingMaster {
            heartbeat,
            queue: VecDeque::new(),
            map: LocalityMap::new(),
            strikes: HashMap::new(),
            timers: HashMap::new(),
            parked: BTreeSet::new(),
        }
    }

    /// Serve a pulling worker. Returns true if a job was assigned.
    fn serve(&mut self, w: WorkerId, ctx: &mut SchedCtx) -> bool {
        if self.queue.is_empty() {
            // Nothing to do; park the worker until a job arrives.
            self.strikes.insert(w, 0);
            self.parked.insert(w);
            return false;
        }
        self.parked.remove(&w);
        let strike = self.strikes.get(&w).copied().unwrap_or(0);
        // First attempt: only a job with believed-local data.
        if let Some(pos) = self.queue.iter().position(|j| self.map.is_local(w, j)) {
            let job = self.queue.remove(pos).expect("position valid");
            self.strikes.insert(w, 0);
            self.map.note_assignment(w, &job);
            ctx.assign(w, job);
            return true;
        }
        if strike >= 1 {
            // Second attempt: bound to accept the head job.
            let job = self.queue.pop_front().expect("non-empty");
            self.strikes.insert(w, 0);
            self.map.note_assignment(w, &job);
            ctx.assign(w, job);
            return true;
        }
        // Remain idle for a single heartbeat.
        self.strikes.insert(w, strike + 1);
        let token = ctx.set_timer(self.heartbeat);
        self.timers.insert(token, w);
        false
    }
}

impl MasterScheduler for MatchmakingMaster {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Matchmaking
    }

    fn on_job(&mut self, job: Job, ctx: &mut SchedCtx) {
        // Jobs wait for pulls (the matchmaking model is strictly
        // pull-based); parked workers re-pull immediately.
        self.queue.push_back(job);
        let parked: Vec<WorkerId> = self.parked.iter().copied().collect();
        for w in parked {
            if self.queue.is_empty() {
                break;
            }
            self.parked.remove(&w);
            self.serve(w, ctx);
        }
    }

    fn on_worker_message(&mut self, from: WorkerId, msg: WorkerToMaster, ctx: &mut SchedCtx) {
        if let WorkerToMaster::Idle = msg {
            self.serve(from, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut SchedCtx) {
        if let Some(w) = self.timers.remove(&token) {
            self.serve(w, ctx);
        }
    }

    fn on_job_done(&mut self, worker: WorkerId, job: &Job, _ctx: &mut SchedCtx) {
        self.map.note_completion(worker, job);
    }
}

/// Bundled matchmaking allocator.
#[derive(Debug, Clone, Copy)]
pub struct MatchmakingAllocator {
    /// Heartbeat interval (Hadoop's classic 1 s by default).
    pub heartbeat: SimDuration,
}

impl Default for MatchmakingAllocator {
    fn default() -> Self {
        MatchmakingAllocator {
            heartbeat: SimDuration::from_secs(1),
        }
    }
}

impl Allocator for MatchmakingAllocator {
    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Matchmaking
    }

    fn master(&self) -> Box<dyn MasterScheduler> {
        Box::new(MatchmakingMaster::new(self.heartbeat))
    }

    fn worker_policy(&self) -> Box<dyn WorkerPolicy> {
        // Assignments are unconditional; locality was already decided
        // master-side.
        Box::new(ObedientPolicy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::scheduler::WorkerHandle;
    use crossbid_crossflow::{JobId, Payload, ResourceRef, SchedAction, TaskId};
    use crossbid_simcore::{RngStream, SimTime};
    use crossbid_storage::ObjectId;

    fn mk_job(id: u64, r: u64) -> Job {
        Job {
            id: JobId(id),
            task: TaskId(0),
            resource: Some(ResourceRef {
                id: ObjectId(r),
                bytes: 100,
            }),
            work_bytes: 100,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    fn drive<F: FnOnce(&mut MatchmakingMaster, &mut SchedCtx)>(
        m: &mut MatchmakingMaster,
        f: F,
    ) -> Vec<SchedAction> {
        let workers: Vec<WorkerHandle> = (0..2)
            .map(|i| WorkerHandle {
                id: WorkerId(i),
                name: format!("w{i}"),
            })
            .collect();
        let mut rng = RngStream::from_seed(0);
        let mut token = 0;
        let mut ctx = SchedCtx::new(SimTime::ZERO, &workers, &mut rng, &mut token);
        f(m, &mut ctx);
        ctx.take_actions()
    }

    #[test]
    fn first_pull_without_local_data_waits_one_heartbeat() {
        let mut m = MatchmakingMaster::new(SimDuration::from_secs(1));
        drive(&mut m, |m, ctx| m.on_job(mk_job(1, 7), ctx));
        // Worker 0 pulls; no locality info yet → heartbeat timer, no
        // assignment.
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        assert_eq!(a.len(), 1);
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            ref other => panic!("{other:?}"),
        };
        // Heartbeat fires: second attempt is bound to accept.
        let a = drive(&mut m, |m, ctx| m.on_timer(token, ctx));
        assert!(matches!(
            a[0],
            SchedAction::Assign {
                worker: WorkerId(0),
                ..
            }
        ));
    }

    #[test]
    fn local_job_is_pulled_immediately() {
        let mut m = MatchmakingMaster::new(SimDuration::from_secs(1));
        // Teach the map that worker 1 holds resource 7.
        drive(&mut m, |m, ctx| {
            m.on_job_done(WorkerId(1), &mk_job(0, 7), ctx)
        });
        drive(&mut m, |m, ctx| m.on_job(mk_job(1, 7), ctx));
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(1), WorkerToMaster::Idle, ctx)
        });
        assert!(matches!(
            a[0],
            SchedAction::Assign {
                worker: WorkerId(1),
                ..
            }
        ));
    }

    #[test]
    fn local_job_deeper_in_queue_is_found() {
        let mut m = MatchmakingMaster::new(SimDuration::from_secs(1));
        drive(&mut m, |m, ctx| {
            m.on_job_done(WorkerId(0), &mk_job(0, 9), ctx)
        });
        drive(&mut m, |m, ctx| {
            m.on_job(mk_job(1, 7), ctx);
            m.on_job(mk_job(2, 9), ctx);
        });
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        match &a[0] {
            SchedAction::Assign { job, .. } => assert_eq!(job.id, JobId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strikes_reset_after_assignment() {
        let mut m = MatchmakingMaster::new(SimDuration::from_secs(1));
        drive(&mut m, |m, ctx| m.on_job(mk_job(1, 7), ctx));
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        let token = match a[0] {
            SchedAction::Timer { token, .. } => token,
            ref o => panic!("{o:?}"),
        };
        drive(&mut m, |m, ctx| m.on_timer(token, ctx)); // assigned
                                                        // A new unknown-resource job: the worker idles one heartbeat
                                                        // again (strike state was reset).
        drive(&mut m, |m, ctx| m.on_job(mk_job(2, 8), ctx));
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        assert!(matches!(a[0], SchedAction::Timer { .. }));
    }

    #[test]
    fn empty_queue_pull_is_a_noop() {
        let mut m = MatchmakingMaster::new(SimDuration::from_secs(1));
        let a = drive(&mut m, |m, ctx| {
            m.on_worker_message(WorkerId(0), WorkerToMaster::Idle, ctx)
        });
        assert!(a.is_empty());
    }
}
