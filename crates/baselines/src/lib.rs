//! # crossbid-baselines
//!
//! The comparator schedulers the paper positions itself against:
//!
//! * [`SparkStaticAllocator`] — the paper's characterization of Apache
//!   Spark's behaviour on the MSR workload: "all task allocation
//!   occurs in advance and without considering the resources that
//!   become local during execution ... the master produces all
//!   assignments and considers all workers equal" (§4). Implemented as
//!   immediate round-robin assignment. This is the Figure 2
//!   comparator.
//! * [`SparkLocalityAllocator`] — Spark's locality-wait mechanism
//!   (§3): prefer a worker believed to hold the data; if every such
//!   worker is saturated, wait up to a threshold before degrading to
//!   any worker.
//! * [`MatchmakingAllocator`] — He et al. (§3): a free node asks for a
//!   job with local data; if none exists it idles for one heartbeat,
//!   and on its second attempt "it is bound to accept a task even if
//!   it does not have data locally".
//! * [`DelayAllocator`] — Zaharia et al. (§3): postpone a job's
//!   non-local assignment a bounded number of times.
//! * [`BarAllocator`] — BAR (Jin et al., §3): batch planning in two
//!   phases, all-local assignment first, then iterative trades of
//!   locality for completion time.
//! * [`RandomAllocator`] — uniformly random immediate assignment; the
//!   sanity floor for every comparison.
//!
//! The centralized schedulers track locality through a *believed*
//! resource→workers map built from the assignments they made — they
//! never see worker caches directly, so their view can go stale when
//! workers evict, exactly as a real master's would.

//! ```
//! use crossbid_baselines::{MatchmakingAllocator, SparkStaticAllocator};
//! use crossbid_crossflow::Allocator;
//!
//! // Every comparator is a drop-in Allocator for the same engine.
//! let allocs: Vec<Box<dyn Allocator>> = vec![
//!     Box::new(SparkStaticAllocator::with_stage_barrier()),
//!     Box::new(MatchmakingAllocator::default()),
//! ];
//! assert_eq!(allocs[0].kind().name(), "spark-static");
//! assert_eq!(allocs[1].kind().name(), "matchmaking");
//! ```

pub mod bar;
pub mod delay;
pub mod locality_map;
pub mod matchmaking;
pub mod random;
pub mod spark;

pub use bar::{BarAllocator, BarPlanner, BarWorkerSpeeds};
pub use delay::DelayAllocator;
pub use locality_map::LocalityMap;
pub use matchmaking::MatchmakingAllocator;
pub use random::RandomAllocator;
pub use spark::{SparkLocalityAllocator, SparkStaticAllocator};
