//! The master's *believed* locality map.
//!
//! Centralized locality-aware schedulers (Spark-locality,
//! Matchmaking, Delay) decide where data lives from their own
//! assignment history — Spark reads preferred locations from partition
//! metadata, Hadoop-era schedulers from the block map. Our equivalent:
//! when the master sees worker `w` complete a job that required
//! resource `r`, it records `r → w`. The map is *capacity-blind*: it
//! does not know about evictions, so it can overestimate locality,
//! exactly like a stale block map.

use std::collections::{BTreeSet, HashMap};

use crossbid_crossflow::{Job, WorkerId};
use crossbid_storage::ObjectId;

/// Believed resource→workers mapping.
#[derive(Debug, Default, Clone)]
pub struct LocalityMap {
    holders: HashMap<ObjectId, BTreeSet<WorkerId>>,
}

impl LocalityMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `worker` completed `job` (and therefore fetched its
    /// resource, if any).
    pub fn note_completion(&mut self, worker: WorkerId, job: &Job) {
        if let Some(r) = job.resource {
            self.holders.entry(r.id).or_default().insert(worker);
        }
    }

    /// Record an assignment optimistically (the worker *will* hold the
    /// resource once it runs the job).
    pub fn note_assignment(&mut self, worker: WorkerId, job: &Job) {
        self.note_completion(worker, job);
    }

    /// Workers believed to hold `r`, in id order (deterministic).
    pub fn holders(&self, r: ObjectId) -> impl Iterator<Item = WorkerId> + '_ {
        self.holders.get(&r).into_iter().flatten().copied()
    }

    /// Is `worker` believed to hold `job`'s resource (trivially true
    /// for resource-free jobs)?
    pub fn is_local(&self, worker: WorkerId, job: &Job) -> bool {
        match job.resource {
            None => true,
            Some(r) => self.holders.get(&r.id).is_some_and(|s| s.contains(&worker)),
        }
    }

    /// Any worker believed local to `job`, preferring the one with the
    /// smallest value of `load(w)` (ties by id).
    pub fn best_local_worker<F: Fn(WorkerId) -> usize>(
        &self,
        job: &Job,
        load: F,
    ) -> Option<WorkerId> {
        let r = job.resource?;
        self.holders
            .get(&r.id)?
            .iter()
            .copied()
            .min_by_key(|w| (load(*w), *w))
    }

    /// Number of resources tracked.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// True iff nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbid_crossflow::{JobId, Payload, ResourceRef, TaskId};

    fn job_with(r: u64) -> Job {
        Job {
            id: JobId(1),
            task: TaskId(0),
            resource: Some(ResourceRef {
                id: ObjectId(r),
                bytes: 100,
            }),
            work_bytes: 100,
            cpu_secs: 0.0,
            payload: Payload::None,
        }
    }

    #[test]
    fn completion_updates_holders() {
        let mut m = LocalityMap::new();
        assert!(m.is_empty());
        m.note_completion(WorkerId(2), &job_with(5));
        assert!(m.is_local(WorkerId(2), &job_with(5)));
        assert!(!m.is_local(WorkerId(1), &job_with(5)));
        assert!(!m.is_local(WorkerId(2), &job_with(6)));
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.holders(ObjectId(5)).collect::<Vec<_>>(),
            vec![WorkerId(2)]
        );
    }

    #[test]
    fn resource_free_jobs_are_local_everywhere() {
        let m = LocalityMap::new();
        let j = Job {
            resource: None,
            ..job_with(1)
        };
        assert!(m.is_local(WorkerId(0), &j));
    }

    #[test]
    fn best_local_worker_prefers_least_loaded() {
        let mut m = LocalityMap::new();
        m.note_completion(WorkerId(0), &job_with(5));
        m.note_completion(WorkerId(1), &job_with(5));
        let loads = [3usize, 1usize];
        let best = m.best_local_worker(&job_with(5), |w| loads[w.0 as usize]);
        assert_eq!(best, Some(WorkerId(1)));
        // Tie: lowest id.
        let best = m.best_local_worker(&job_with(5), |_| 0);
        assert_eq!(best, Some(WorkerId(0)));
        // Unknown resource: none.
        assert_eq!(m.best_local_worker(&job_with(9), |_| 0), None);
    }
}
